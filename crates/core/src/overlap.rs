//! Lemmas 9–13: the phase-overlap algebra behind Theorem 3.
//!
//! With asymmetric clocks, robot `R'` traverses Algorithm 7's schedule at
//! `τ` times the reference rate, so its phase boundaries sit at
//! `τ·I(n)`, `τ·A(n)`. The proof of Theorem 3 shows that for every
//! `τ < 1` the active phases of `R` eventually overlap the inactive
//! phases of `R'` by more than `S(n)` — long enough for `R` to run the
//! complete sweep `Search(1..n)` (forward case, Figure 3a / Lemma 9) or
//! `Search(n..1)` (reverse case, Figure 3b / Lemma 10) while `R'` sits
//! still at its start point.
//!
//! This module reproduces that argument **analytically**: the lemmas'
//! claimed overlap amounts are checked against direct interval
//! intersections of the Lemma 8 closed forms, the round bound of
//! Lemma 13 (via Lambert W, Lemma 12) is computed exactly, and
//! [`first_sufficient_overlap_round`] independently finds the first round
//! whose overlap really suffices — the analytic counterpart of a
//! simulation measurement.

use crate::phases::{PhaseSchedule, MAX_PHASE_ROUND};
use rvz_numerics::dyadic::floor_log2;

/// Length of the intersection of two half-open intervals.
fn interval_overlap(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.1.min(b.1) - a.0.max(b.0)).max(0.0)
}

fn scale(interval: (f64, f64), tau: f64) -> (f64, f64) {
    (interval.0 * tau, interval.1 * tau)
}

/// The comparison of a lemma's claimed overlap against the directly
/// computed interval intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapReport {
    /// The amount the lemma claims (`τ·A(k+1+a) − A(k)` for Lemma 9,
    /// `I(k) − τ·I(k+a)` for Lemma 10).
    pub claimed: f64,
    /// The true intersection length of the two phase intervals.
    pub computed: f64,
    /// Whether `(τ, k, a)` satisfies the lemma's hypothesis.
    pub hypothesis_holds: bool,
    /// The reference robot's phase interval used.
    pub reference_interval: (f64, f64),
    /// The `τ`-scaled partner phase interval used.
    pub partner_interval: (f64, f64),
}

/// The hypothesis range of Lemma 9 for `(k, a)`:
/// `τ ∈ [k/((k+1+a)·2^{a+1}), (3/2)·k/((k+1+a)·2^{a+1})]`.
pub fn lemma9_tau_range(k: u32, a: u32) -> (f64, f64) {
    let lo = (k as f64 / (k + 1 + a) as f64) * (-(a as f64) - 1.0).exp2();
    (lo, 1.5 * lo)
}

/// Lemma 9 (Figure 3a): `R`'s `k`-th active phase vs. `R'`'s
/// `(k+1+a)`-th inactive phase.
///
/// Under the hypothesis, `R`'s active phase *begins* inside the partner's
/// inactive window, and the claimed amount `τ·A(k+1+a) − A(k)` equals the
/// true overlap capped at the full active length `2S(k)` (the cap binds
/// near the top of the `τ` range; the lemma's downstream use only needs
/// the overlap to exceed `S(n)`, which the cap preserves).
///
/// # Panics
///
/// Panics when `τ ∉ (0, 1)` or `k + 1 + a > MAX_PHASE_ROUND`.
pub fn overlap_lemma9(tau: f64, k: u32, a: u32) -> OverlapReport {
    assert!(
        tau > 0.0 && tau < 1.0,
        "Lemma 9 requires τ ∈ (0,1), got {tau}"
    );
    let m = k + 1 + a;
    assert!(m <= MAX_PHASE_ROUND, "k+1+a = {m} exceeds supported rounds");
    let reference = PhaseSchedule::active_interval(k);
    let partner = scale(PhaseSchedule::inactive_interval(m), tau);
    let (lo, hi) = lemma9_tau_range(k, a);
    OverlapReport {
        claimed: tau * PhaseSchedule::active_start(m) - PhaseSchedule::active_start(k),
        computed: interval_overlap(reference, partner),
        hypothesis_holds: k >= 2 * (a + 1) && (lo..=hi).contains(&tau),
        reference_interval: reference,
        partner_interval: partner,
    }
}

/// The hypothesis range of Lemma 10 for `(k, a)`:
/// `τ ∈ [(2/3)·k/((k+a)·2^a), k/((k+1+a)·2^a)]`.
pub fn lemma10_tau_range(k: u32, a: u32) -> (f64, f64) {
    let p = (-(a as f64)).exp2();
    (
        (2.0 / 3.0) * (k as f64 / (k + a) as f64) * p,
        (k as f64 / (k + 1 + a) as f64) * p,
    )
}

/// Lemma 10 (Figure 3b): `R`'s `(k−1)`-st active phase vs. `R'`'s
/// `(k+a)`-th inactive phase.
///
/// Under the hypothesis the partner's inactive window covers the *end* of
/// `R`'s active phase, and the claimed amount `I(k) − τ·I(k+a)` equals
/// the true overlap capped at `2S(k−1)`.
///
/// # Panics
///
/// Panics when `τ ∉ (0, 1)`, `k < 2`, or `k + a > MAX_PHASE_ROUND`.
pub fn overlap_lemma10(tau: f64, k: u32, a: u32) -> OverlapReport {
    assert!(
        tau > 0.0 && tau < 1.0,
        "Lemma 10 requires τ ∈ (0,1), got {tau}"
    );
    assert!(
        k >= 2,
        "Lemma 10 concerns the (k−1)-st active phase; k must be ≥ 2"
    );
    let m = k + a;
    assert!(m <= MAX_PHASE_ROUND, "k+a = {m} exceeds supported rounds");
    let reference = PhaseSchedule::active_interval(k - 1);
    let partner = scale(PhaseSchedule::inactive_interval(m), tau);
    let (lo, hi) = lemma10_tau_range(k, a);
    OverlapReport {
        claimed: PhaseSchedule::inactive_start(k) - tau * PhaseSchedule::inactive_start(m),
        computed: interval_overlap(reference, partner),
        hypothesis_holds: k >= 2 * (a + 1) && (lo..=hi).contains(&tau),
        reference_interval: reference,
        partner_interval: partner,
    }
}

/// Lemma 13's canonical decomposition `τ = t·2^{−a}` with `a ≥ 0` integer
/// and `t ∈ [1/2, 1)` (`t = 1/2` exactly when `τ` is a power of two).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauDecomposition {
    /// The dyadic exponent `a`.
    pub a: u32,
    /// The mantissa `t ∈ [1/2, 1)`.
    pub t: f64,
}

/// Decomposes `τ ∈ (0, 1)` as `t·2^{−a}` (see [`TauDecomposition`]).
///
/// # Panics
///
/// Panics unless `0 < τ < 1`.
///
/// # Example
///
/// ```
/// use rvz_core::tau_decomposition;
///
/// let d = tau_decomposition(0.3);
/// assert_eq!(d.a, 1);
/// assert!((d.t - 0.6).abs() < 1e-12);
/// let p = tau_decomposition(0.25); // power of two ⇒ t = 1/2
/// assert_eq!((p.a, p.t), (1, 0.5));
/// ```
pub fn tau_decomposition(tau: f64) -> TauDecomposition {
    assert!(
        tau > 0.0 && tau < 1.0,
        "decomposition requires τ ∈ (0,1), got {tau}"
    );
    // τ ∈ [2^e, 2^{e+1}) with e = ⌊log₂ τ⌋ < 0; then a = −e − 1 puts
    // t = τ·2^a in [1/2, 1).
    let e = floor_log2(tau);
    let a = (-e - 1) as u32;
    let t = tau * (a as f64).exp2();
    TauDecomposition { a, t }
}

/// Ceiling with a relative tolerance, so that values a few ulps above an
/// integer (e.g. `0.9/(1−0.9) = 9.000000000000002`) round to that integer
/// instead of the next one.
fn ceil_tol(x: f64) -> f64 {
    (x - 1e-9 * (1.0 + x.abs())).ceil()
}

fn ceil_log2_pos(x: f64) -> i64 {
    // ⌈log₂ x⌉ for x > 0, as the paper's ⌈log(·)⌉ (may be ≤ 0).
    ceil_tol(x.log2()) as i64
}

/// Lemma 11's rendezvous round: `n + ⌈log(n/(a+1))⌉` (valid once
/// `k ≥ k₀ = 8(a+1)` in the `t ∈ [1/2, 2/3]` regime).
pub fn lemma11_round_bound(n: u32, a: u32) -> u32 {
    let extra = ceil_log2_pos(n as f64 / (a + 1) as f64);
    add_round_offset(n, extra)
}

/// Lemma 12's rendezvous round: `n + ⌈log n + log(1 + k₀/(a+1))⌉`.
pub fn lemma12_round_bound(n: u32, a: u32, k0: u32) -> u32 {
    let extra = ceil_log2_pos(n as f64 * (1.0 + k0 as f64 / (a + 1) as f64));
    add_round_offset(n, extra)
}

fn add_round_offset(n: u32, extra: i64) -> u32 {
    let v = n as i64 + extra.max(0);
    v as u32
}

/// Lemma 13: an explicit upper bound `k*` on the Algorithm 7 round by
/// which two robots with clock ratio `τ = t·2^{−a}` rendezvous, assuming
/// a stationary partner would be found on round `n`.
///
/// * `t ∈ [1/2, 2/3]`: `k* = max{8(a+1), n + ⌈log(n/(a+1))⌉}`;
/// * `t ∈ (2/3, 1)`:  `k* = max{⌈(a+1)·t/(1−t)⌉, n + ⌈log(n/(1−t))⌉}`.
///
/// # Panics
///
/// Panics unless `0 < τ < 1` and `n ≥ 1`.
///
/// # Example
///
/// ```
/// use rvz_core::lemma13_round_bound;
///
/// // τ = 0.5 (a = 0, t = 1/2), stationary find on round 3:
/// // k* = max(8, 3 + ⌈log 3⌉) = 8.
/// assert_eq!(lemma13_round_bound(0.5, 3), 8);
/// ```
pub fn lemma13_round_bound(tau: f64, n: u32) -> u32 {
    assert!(n >= 1, "stationary-find round n must be ≥ 1");
    let TauDecomposition { a, t } = tau_decomposition(tau);
    if t <= 2.0 / 3.0 {
        let k0 = 8 * (a + 1);
        k0.max(lemma11_round_bound(n, a))
    } else {
        let k0 = ceil_tol((a + 1) as f64 * t / (1.0 - t)) as u32;
        let extra = ceil_log2_pos(n as f64 / (1.0 - t));
        k0.max(add_round_offset(n, extra))
    }
}

/// The paper's Lemma 14 time expression for completing `k*` rounds,
/// `24(π+1)[(2k*−4)·2^{k*} + 4]` — literally `I(k*)`.
///
/// Note: `I(k*)` is the *start* of round `k*`; the conservative
/// completion time is [`completion_time`] (`= I(k*+1)`). Both are
/// reported by the benches; see `EXPERIMENTS.md` (E9) for the discussion
/// of this off-by-one in the paper's prose.
pub fn lemma14_time_expression(k_star: u32) -> f64 {
    PhaseSchedule::inactive_start(k_star)
}

/// Time by which round `k*` is fully complete: `I(k* + 1)`.
pub fn completion_time(k_star: u32) -> f64 {
    PhaseSchedule::round_end(k_star)
}

/// The first Algorithm 7 round `k` whose active phase overlaps one of the
/// partner's (`τ`-scaled) inactive phases for long enough to run a
/// complete `Search(1..=n)` — forward at the start of the active phase,
/// or reverse at its end.
///
/// This is the *analytic measurement* that Lemma 13's `k*` upper-bounds:
/// `first_sufficient_overlap_round(τ, n) ≤ lemma13_round_bound(τ, n)`
/// whenever both are defined (property-tested and reproduced in the E9
/// bench).
///
/// Returns `None` if no round up to `MAX_PHASE_ROUND` suffices.
///
/// # Panics
///
/// Panics unless `0 < τ < 1` and `1 ≤ n ≤ MAX_PHASE_ROUND`.
pub fn first_sufficient_overlap_round(tau: f64, n: u32) -> Option<u32> {
    assert!(tau > 0.0 && tau < 1.0, "requires τ ∈ (0,1), got {tau}");
    assert!(
        (1..=MAX_PHASE_ROUND).contains(&n),
        "n must be in 1..={MAX_PHASE_ROUND}, got {n}"
    );
    let f_n = PhaseSchedule::search_all_duration(n);
    for k in n..=MAX_PHASE_ROUND {
        let (a_k, end_k) = PhaseSchedule::active_interval(k);
        // Forward window: the first n blocks of SearchAll(k).
        if window_inside_scaled_inactive((a_k, a_k + f_n), tau) {
            return Some(k);
        }
        // Reverse window: the last n blocks of SearchAllRev(k).
        if window_inside_scaled_inactive((end_k - f_n, end_k), tau) {
            return Some(k);
        }
    }
    None
}

/// Does `[w0, w1]` lie entirely inside some `τ`-scaled inactive phase?
fn window_inside_scaled_inactive(window: (f64, f64), tau: f64) -> bool {
    // The candidate partner round is the one whose (scaled) round
    // interval contains w0. Check it and its successor.
    let local = window.0 / tau;
    if local >= PhaseSchedule::inactive_start(MAX_PHASE_ROUND + 1) {
        return false;
    }
    let m0 = PhaseSchedule::round_at(local);
    for m in [m0, m0 + 1] {
        if m > MAX_PHASE_ROUND {
            continue;
        }
        let (s, e) = scale(PhaseSchedule::inactive_interval(m), tau);
        if s <= window.0 && window.1 <= e {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lemma 9 across its hypothesis region: the active phase starts
    /// inside the partner window and the claimed amount matches the true
    /// overlap up to the 2S(k) cap.
    #[test]
    fn lemma9_claim_matches_interval_intersection() {
        for a in 0..3u32 {
            for k in (2 * (a + 1)).max(2)..=20 {
                if k + 1 + a > MAX_PHASE_ROUND {
                    continue;
                }
                let (lo, hi) = lemma9_tau_range(k, a);
                for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
                    let tau = lo + frac * (hi - lo);
                    let rep = overlap_lemma9(tau, k, a);
                    assert!(rep.hypothesis_holds, "k={k} a={a} τ={tau}");
                    // Alignment: A(k) inside the partner inactive window.
                    let (ps, pe) = rep.partner_interval;
                    let (as_, _) = rep.reference_interval;
                    assert!(
                        ps <= as_ + 1e-6 && as_ <= pe + 1e-6,
                        "k={k} a={a} τ={tau}: A(k) not inside partner window"
                    );
                    // Claim vs. computed (capped at the full active phase).
                    let active_len = rep.reference_interval.1 - rep.reference_interval.0;
                    let expected = rep.claimed.min(active_len);
                    assert!(
                        (rep.computed - expected).abs() <= 1e-6 * (1.0 + expected.abs()),
                        "k={k} a={a} τ={tau}: computed {} vs expected {}",
                        rep.computed,
                        expected
                    );
                    assert!(rep.computed > 0.0);
                }
            }
        }
    }

    /// Lemma 10 across its hypothesis region (mirror of the above).
    #[test]
    fn lemma10_claim_matches_interval_intersection() {
        for a in 0..3u32 {
            for k in (2 * (a + 1)).max(2)..=20 {
                if k + a > MAX_PHASE_ROUND {
                    continue;
                }
                let (lo, hi) = lemma10_tau_range(k, a);
                for frac in [0.0, 0.5, 1.0] {
                    let tau = lo + frac * (hi - lo);
                    let rep = overlap_lemma10(tau, k, a);
                    assert!(rep.hypothesis_holds, "k={k} a={a} τ={tau}");
                    // Alignment: I(k) (the end of the active phase) inside
                    // the partner window.
                    let (ps, pe) = rep.partner_interval;
                    let end = rep.reference_interval.1;
                    assert!(
                        ps <= end + 1e-6 && end <= pe + 1e-6,
                        "k={k} a={a} τ={tau}: I(k) not inside partner window"
                    );
                    let active_len = rep.reference_interval.1 - rep.reference_interval.0;
                    let expected = rep.claimed.min(active_len);
                    assert!(
                        (rep.computed - expected).abs() <= 1e-6 * (1.0 + expected.abs()),
                        "k={k} a={a} τ={tau}: computed {} vs expected {}",
                        rep.computed,
                        expected
                    );
                }
            }
        }
    }

    /// Outside the hypothesis the report says so.
    #[test]
    fn hypothesis_flag_is_accurate() {
        // τ far above the Lemma 9 range.
        let rep = overlap_lemma9(0.9, 8, 0);
        assert!(!rep.hypothesis_holds);
        // k below 2(a+1).
        let (lo, _) = lemma9_tau_range(3, 1);
        let rep = overlap_lemma9(lo, 3, 1);
        assert!(!rep.hypothesis_holds);
    }

    #[test]
    fn tau_decomposition_roundtrips() {
        for tau in [0.9, 0.7, 0.51, 0.5, 0.3, 0.25, 0.13, 0.0625, 0.011] {
            let d = tau_decomposition(tau);
            assert!((0.5..1.0).contains(&d.t), "τ={tau}: t={} out of range", d.t);
            let back = d.t * (-(d.a as f64)).exp2();
            assert!((back - tau).abs() < 1e-15, "τ={tau} reconstructed {back}");
        }
    }

    #[test]
    #[should_panic(expected = "requires τ ∈ (0,1)")]
    fn tau_one_rejected() {
        let _ = tau_decomposition(1.0);
    }

    #[test]
    fn lemma13_known_values() {
        // τ = 0.5: a = 0, t = 1/2 ⇒ max(8, n + ⌈log n⌉).
        assert_eq!(lemma13_round_bound(0.5, 3), 8);
        assert_eq!(lemma13_round_bound(0.5, 10), 14);
        // τ = 0.25: a = 1 ⇒ k₀ = 16 dominates for small n.
        assert_eq!(lemma13_round_bound(0.25, 3), 16);
        // τ = 0.9: t = 0.9 > 2/3 ⇒ max(⌈0.9/0.1⌉, n + ⌈log(10n)⌉).
        assert_eq!(lemma13_round_bound(0.9, 3), 9); // max(⌈0.9/0.1⌉, 3+⌈log 30⌉) = max(9, 8)
    }

    #[test]
    fn lemma13_explodes_as_t_approaches_one() {
        let k_mid = lemma13_round_bound(0.75, 2);
        let k_close = lemma13_round_bound(0.99, 2);
        assert!(k_close > 3 * k_mid, "{k_close} vs {k_mid}");
    }

    /// The analytic measurement is never later than Lemma 13's bound
    /// (when the bound is within the supported horizon).
    #[test]
    fn sufficient_round_within_lemma13_bound() {
        for tau in [0.5, 0.55, 0.6, 0.3, 0.25, 0.7, 0.8, 0.52, 0.9] {
            for n in 1..=4u32 {
                let k_star = lemma13_round_bound(tau, n);
                if k_star > MAX_PHASE_ROUND {
                    continue;
                }
                let measured = first_sufficient_overlap_round(tau, n)
                    .unwrap_or_else(|| panic!("no sufficient round for τ={tau}, n={n}"));
                assert!(
                    measured <= k_star,
                    "τ={tau} n={n}: measured {measured} > bound {k_star}"
                );
            }
        }
    }

    /// Lemma 11's inequality chain: at k = k*, the claimed overlap
    /// exceeds S(n) when τ sits in the eq-(2) window.
    #[test]
    fn lemma11_overlap_exceeds_s_n() {
        for a in 0..2u32 {
            let k0 = 8 * (a + 1);
            // eq (2): τ ∈ [2^{−a−1}, (3/4)·k0/(k0+1+a)·2^{−a}].
            let lo = (-(a as f64) - 1.0).exp2();
            let hi = 0.75 * (k0 as f64 / (k0 + 1 + a) as f64) * (-(a as f64)).exp2();
            let tau = 0.5 * (lo + hi);
            for n in 1..=3u32 {
                let k_star = lemma13_round_bound(tau, n).max(k0);
                if k_star + 1 + a > MAX_PHASE_ROUND {
                    continue;
                }
                let rep = overlap_lemma9(tau, k_star, a);
                let s_n = PhaseSchedule::search_all_duration(n);
                assert!(
                    rep.computed >= s_n,
                    "a={a} τ={tau} n={n}: overlap {} < S(n) {s_n}",
                    rep.computed
                );
            }
        }
    }

    #[test]
    fn lemma12_round_bound_monotone_in_k0() {
        assert!(lemma12_round_bound(4, 0, 16) >= lemma12_round_bound(4, 0, 8));
        assert!(lemma12_round_bound(4, 1, 8) >= lemma11_round_bound(4, 1));
    }

    #[test]
    fn completion_time_brackets_lemma14_expression() {
        for k in 2..=10u32 {
            assert!(lemma14_time_expression(k) < completion_time(k));
            assert_eq!(completion_time(k), PhaseSchedule::inactive_start(k + 1));
        }
    }
}
