//! Lemmas 4 and 5: the equivalent search trajectory.
//!
//! With symmetric clocks (`τ = 1`), if both robots run the common
//! trajectory `S(t)`, the reference robot follows `S(t)` and the other
//! follows `d⃗ + M·S(t)` with `M = v·Rot(φ)·Refl(χ)` (Lemma 4). Their
//! *relative* motion is therefore
//!
//! ```text
//! S(t) − S'(t) = (I − M)·S(t) = T∘·S(t)
//! ```
//!
//! so the pair rendezvous exactly when the single "virtual" robot
//! `T∘·S(t)` finds a stationary target at `d⃗` — a search problem.
//! Lemma 5 QR-factors `T∘ = Φ·T∘'` with `Φ` a rotation (irrelevant to
//! distances) and `T∘'` upper triangular; the top-left entry of `T∘'` is
//! the symmetry-breaking scale `µ = √(v² − 2v·cos φ + 1)`.

use rvz_geometry::{Mat2, QrFactors, Vec2};
use rvz_model::{Chirality, RobotAttributes};

/// The equivalent-search reduction for a robot-attribute pair with
/// symmetric clocks.
///
/// # Example
///
/// ```
/// use rvz_core::EquivalentSearch;
/// use rvz_model::RobotAttributes;
///
/// let attrs = RobotAttributes::reference().with_speed(0.5);
/// let eq = EquivalentSearch::new(&attrs);
/// // v = 0.5, φ = 0: T∘ = 0.5·I and µ = 0.5.
/// assert!((eq.mu() - 0.5).abs() < 1e-12);
/// assert!(!eq.is_degenerate());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquivalentSearch {
    attrs: RobotAttributes,
    t_circ: Mat2,
}

impl EquivalentSearch {
    /// Builds the reduction for `attrs`.
    ///
    /// # Panics
    ///
    /// Panics when `attrs.time_unit() != 1` — the reduction is only exact
    /// for symmetric clocks; asymmetric clocks are handled by Algorithm 7
    /// (see [`crate::algorithm7`]).
    pub fn new(attrs: &RobotAttributes) -> Self {
        assert!(
            attrs.time_unit() == 1.0,
            "the equivalent-search reduction requires τ = 1, got τ = {}",
            attrs.time_unit()
        );
        let t_circ = Mat2::IDENTITY - attrs.lemma4_matrix();
        EquivalentSearch {
            attrs: *attrs,
            t_circ,
        }
    }

    /// The matrix `T∘ = I − v·Rot(φ)·Refl(χ)` of Lemma 4 / Definition 1.
    pub fn matrix(&self) -> Mat2 {
        self.t_circ
    }

    /// The QR factorization `T∘ = Φ·T∘'` of Lemma 5 (computed
    /// numerically; see [`EquivalentSearch::upper_triangular_closed_form`]
    /// for the paper's closed form, which it matches to rounding).
    pub fn qr(&self) -> QrFactors {
        self.t_circ.qr()
    }

    /// Lemma 5's closed form for the upper-triangular factor:
    ///
    /// ```text
    /// T∘' = [ µ   −(1−χ)·v·sinφ/µ            ]
    ///       [ 0   (χv² − (1+χ)v·cosφ + 1)/µ ]
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `µ = 0` (identical twins: `v = 1, φ = 0`), where the
    /// paper's expression divides by zero. Callers should check
    /// [`EquivalentSearch::is_degenerate`] first.
    pub fn upper_triangular_closed_form(&self) -> Mat2 {
        let mu = self.mu();
        assert!(mu > 0.0, "closed form undefined at µ = 0 (identical twins)");
        let v = self.attrs.speed();
        let phi = self.attrs.orientation();
        let chi = self.attrs.chirality().sign();
        Mat2::new(
            mu,
            -(1.0 - chi) * v * phi.sin() / mu,
            0.0,
            (chi * v * v - (1.0 + chi) * v * phi.cos() + 1.0) / mu,
        )
    }

    /// The symmetry-breaking scale `µ = √(v² − 2v·cosφ + 1)`.
    pub fn mu(&self) -> f64 {
        self.attrs.mu()
    }

    /// `det T∘` — zero exactly on the infeasible set of Theorem 4
    /// restricted to `τ = 1`.
    pub fn determinant(&self) -> f64 {
        self.t_circ.det()
    }

    /// `true` when the reduction cannot certify rendezvous:
    ///
    /// * equal chirality: degenerate iff `µ = 0` (`v = 1 ∧ φ = 0`);
    /// * opposite chirality: degenerate iff `v = 1` (then
    ///   `T∘` has rank ≤ 1 and misses targets off its range line).
    pub fn is_degenerate(&self) -> bool {
        match self.attrs.chirality() {
            Chirality::Consistent => self.mu() == 0.0,
            Chirality::Mirrored => self.attrs.speed() == 1.0,
        }
    }

    /// The factor `|T∘ᵀ·d̂|` by which the effective search instance is
    /// rescaled for a target in direction `direction` (Lemma 7's change of
    /// variables): the equivalent search must solve distance
    /// `d/|T∘ᵀd̂|` with visibility `r/|T∘ᵀd̂|`.
    ///
    /// # Panics
    ///
    /// Panics if `direction` is (numerically) zero.
    pub fn projection_factor(&self, direction: Vec2) -> f64 {
        let unit = direction
            .normalized()
            .expect("direction must be a non-zero vector");
        (self.t_circ.transpose() * unit).norm()
    }

    /// The worst-case (minimum) projection factor over all target
    /// directions — the smallest singular value of `T∘`.
    ///
    /// * `χ = +1`: `T∘` is `µ` times a rotation, so the factor is `µ` in
    ///   every direction.
    /// * `χ = −1`: `det T∘ = 1 − v²` and the largest singular value is at
    ///   most `1 + v`, so the minimum is `|1 − v²| / σ₁ ≥ 1 − v` — the
    ///   `1 − v` lower bound is exactly what Theorem 2's mirrored-case
    ///   time bound uses (see [`crate::bounds`]).
    pub fn worst_case_projection_factor(&self) -> f64 {
        match self.attrs.chirality() {
            Chirality::Consistent => self.mu(),
            Chirality::Mirrored => {
                let sigma1 = self.t_circ.operator_norm();
                if sigma1 == 0.0 {
                    0.0
                } else {
                    self.t_circ.det().abs() / sigma1
                }
            }
        }
    }

    /// The attributes this reduction was built from.
    pub fn attributes(&self) -> &RobotAttributes {
        &self.attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn attrs(v: f64, phi: f64, chi: Chirality) -> RobotAttributes {
        RobotAttributes::new(v, 1.0, phi, chi)
    }

    #[test]
    fn matrix_matches_definition_1() {
        // Definition 1 / Lemma 4: T∘ = [1−v cosφ, vχ sinφ; −v sinφ, 1−vχ cosφ].
        for (v, phi, chi, chi_s) in [
            (0.6, 1.1, Chirality::Consistent, 1.0),
            (0.6, 1.1, Chirality::Mirrored, -1.0),
            (1.0, 2.7, Chirality::Consistent, 1.0),
        ] {
            let eq = EquivalentSearch::new(&attrs(v, phi, chi));
            let expected = Mat2::new(
                1.0 - v * phi.cos(),
                v * chi_s * phi.sin(),
                -v * phi.sin(),
                1.0 - v * chi_s * phi.cos(),
            );
            assert!(
                (eq.matrix() - expected).frobenius_norm() < 1e-14,
                "v={v} φ={phi} χ={chi_s}"
            );
        }
    }

    #[test]
    fn consistent_chirality_gives_mu_times_identity() {
        // Lemma 6: for χ = +1, T∘' = µ·I.
        for (v, phi) in [(0.5, 0.0), (0.8, 1.2), (1.0, PI), (0.3, FRAC_PI_2)] {
            let eq = EquivalentSearch::new(&attrs(v, phi, Chirality::Consistent));
            let r = eq.qr().r;
            let mu = eq.mu();
            assert!(
                (r - Mat2::scaling(mu)).frobenius_norm() < 1e-12,
                "v={v} φ={phi}"
            );
            // Closed form agrees.
            let cf = eq.upper_triangular_closed_form();
            assert!((cf - Mat2::scaling(mu)).frobenius_norm() < 1e-12);
        }
    }

    #[test]
    fn mirrored_chirality_closed_form_matches_qr() {
        // Lemma 7's specialized matrix: [µ, −2v sinφ/µ; 0, (1−v²)/µ].
        for (v, phi) in [(0.5, 0.7), (0.9, 2.0), (0.2, 5.5)] {
            let eq = EquivalentSearch::new(&attrs(v, phi, Chirality::Mirrored));
            let qr_r = eq.qr().r;
            let cf = eq.upper_triangular_closed_form();
            assert!((qr_r - cf).frobenius_norm() < 1e-10, "v={v} φ={phi}");
            let mu = eq.mu();
            let expected = Mat2::new(mu, -2.0 * v * phi.sin() / mu, 0.0, (1.0 - v * v) / mu);
            assert!((cf - expected).frobenius_norm() < 1e-12, "v={v} φ={phi}");
        }
    }

    #[test]
    fn qr_reconstructs_t_circ() {
        for chi in [Chirality::Consistent, Chirality::Mirrored] {
            let eq = EquivalentSearch::new(&attrs(0.7, 2.3, chi));
            let f = eq.qr();
            assert!(f.q.is_orthogonal(1e-12));
            assert!(((f.q * f.r) - eq.matrix()).frobenius_norm() < 1e-12);
        }
    }

    #[test]
    fn degeneracy_matches_theorem4() {
        // Identical twins.
        assert!(EquivalentSearch::new(&attrs(1.0, 0.0, Chirality::Consistent)).is_degenerate());
        // Orientation breaks symmetry with equal chirality.
        assert!(!EquivalentSearch::new(&attrs(1.0, 0.1, Chirality::Consistent)).is_degenerate());
        // Mirror twins: degenerate for every φ when v = 1.
        for phi in [0.0, 1.0, PI] {
            assert!(EquivalentSearch::new(&attrs(1.0, phi, Chirality::Mirrored)).is_degenerate());
        }
        // Speed rescues the mirrored case.
        assert!(!EquivalentSearch::new(&attrs(0.5, 1.0, Chirality::Mirrored)).is_degenerate());
    }

    #[test]
    fn determinant_zero_iff_mirror_or_twin() {
        assert_approx_eq!(
            EquivalentSearch::new(&attrs(1.0, 1.3, Chirality::Mirrored)).determinant(),
            0.0
        );
        assert_approx_eq!(
            EquivalentSearch::new(&attrs(1.0, 0.0, Chirality::Consistent)).determinant(),
            0.0
        );
        assert!(
            EquivalentSearch::new(&attrs(0.5, 0.0, Chirality::Consistent))
                .determinant()
                .abs()
                > 0.1
        );
    }

    #[test]
    fn projection_factor_consistent_is_direction_independent() {
        let eq = EquivalentSearch::new(&attrs(0.6, 1.0, Chirality::Consistent));
        let f1 = eq.projection_factor(Vec2::UNIT_X);
        let f2 = eq.projection_factor(Vec2::new(1.0, 3.0));
        assert_approx_eq!(f1, eq.mu(), 1e-12);
        assert_approx_eq!(f2, eq.mu(), 1e-12);
        assert_approx_eq!(eq.worst_case_projection_factor(), eq.mu());
    }

    #[test]
    fn projection_factor_mirrored_worst_case() {
        // The minimum of |T∘ᵀ·d̂| over directions is the smaller singular
        // value; Theorem 2 lower-bounds it by 1 − v.
        let v = 0.6;
        for phi in [0.3, 1.0, 2.5] {
            let eq = EquivalentSearch::new(&attrs(v, phi, Chirality::Mirrored));
            let worst = eq.worst_case_projection_factor();
            // Scan directions for the numeric minimum.
            let mut min_seen = f64::INFINITY;
            let mut a = 0.0;
            while a < PI {
                min_seen = min_seen.min(eq.projection_factor(Vec2::from_polar(1.0, a)));
                a += 1e-3;
            }
            assert!(
                (min_seen - worst).abs() < 1e-4,
                "φ={phi}: scan {min_seen} vs closed form {worst}"
            );
            // Theorem 2's 1 − v lower bound holds ...
            assert!(worst >= 1.0 - v - 1e-12, "φ={phi}");
            // ... and the paper's specific direction d̂ = ŷ (rotated) gives
            // (1−v²)/µ, an upper bound on the minimum.
            let mu = eq.mu();
            assert!(worst <= (1.0 - v * v) / mu + 1e-12, "φ={phi}");
        }
    }

    #[test]
    #[should_panic(expected = "requires τ = 1")]
    fn rejects_asymmetric_clocks() {
        let a = RobotAttributes::reference().with_time_unit(0.5);
        let _ = EquivalentSearch::new(&a);
    }

    #[test]
    #[should_panic(expected = "undefined at µ = 0")]
    fn closed_form_rejects_twins() {
        let eq = EquivalentSearch::new(&attrs(1.0, 0.0, Chirality::Consistent));
        let _ = eq.upper_triangular_closed_form();
    }
}
