//! Lemma 8: the phase schedule of Algorithm 7.
//!
//! Each round `n` of Algorithm 7 consists of an **inactive** phase (wait
//! at the start point for `2S(n)`) followed by an **active** phase
//! (`SearchAll(n)` then `SearchAllRev(n)`, also `2S(n)`), where
//! `S(n) = 12(π+1)·n·2ⁿ` is the duration of `SearchAll(n)`. Lemma 8
//! gives the closed forms
//!
//! ```text
//! I(n) = 24(π+1)[(2n−4)·2ⁿ + 4]   (inactive phase begins)
//! A(n) = 24(π+1)[(3n−4)·2ⁿ + 4]   (active phase begins)
//! ```
//!
//! These are **global-time** boundaries for the reference robot; a robot
//! with clock `τ` hits them at `τ·I(n)` and `τ·A(n)` — the mismatch that
//! Section 4's overlap argument exploits.

use rvz_search::times;

/// Closed-form accessors for Algorithm 7's phase boundaries.
///
/// A zero-sized value; the schedule has no parameters.
///
/// # Example
///
/// ```
/// use rvz_core::PhaseSchedule;
///
/// // Round 1 is the very start: I(1) = 0.
/// assert_eq!(PhaseSchedule::inactive_start(1), 0.0);
/// // Each round lasts 4·S(n).
/// let len = PhaseSchedule::inactive_start(2) - PhaseSchedule::inactive_start(1);
/// assert!((len - 4.0 * PhaseSchedule::search_all_duration(1)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PhaseSchedule;

/// Largest supported Algorithm 7 round, bounded by the underlying search
/// schedule's [`times::MAX_ROUND`].
pub const MAX_PHASE_ROUND: u32 = times::MAX_ROUND;

fn check_phase_round(n: u32) {
    assert!(
        (1..=MAX_PHASE_ROUND).contains(&n),
        "phase round must be in 1..={MAX_PHASE_ROUND}, got {n}"
    );
}

impl PhaseSchedule {
    /// `S(n) = 12(π+1)·n·2ⁿ`: the duration of `SearchAll(n)` (equation (1)
    /// of the paper) — identical to the first `n` rounds of Algorithm 4.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n ≤ MAX_PHASE_ROUND`.
    pub fn search_all_duration(n: u32) -> f64 {
        check_phase_round(n);
        times::rounds_total(n)
    }

    /// `I(n) = 24(π+1)[(2n−4)·2ⁿ + 4]`: global start of round `n`'s
    /// inactive phase (Lemma 8). `n = MAX_PHASE_ROUND + 1` is allowed as a
    /// horizon sentinel (the end of the last supported round).
    pub fn inactive_start(n: u32) -> f64 {
        assert!(
            (1..=MAX_PHASE_ROUND + 1).contains(&n),
            "phase round must be in 1..={} for I(n), got {n}",
            MAX_PHASE_ROUND + 1
        );
        let nf = n as f64;
        24.0 * times::PI_PLUS_1 * ((2.0 * nf - 4.0) * nf.exp2() + 4.0)
    }

    /// `A(n) = 24(π+1)[(3n−4)·2ⁿ + 4]`: global start of round `n`'s active
    /// phase (Lemma 8). Equals `I(n) + 2S(n)`.
    pub fn active_start(n: u32) -> f64 {
        check_phase_round(n);
        let nf = n as f64;
        24.0 * times::PI_PLUS_1 * ((3.0 * nf - 4.0) * nf.exp2() + 4.0)
    }

    /// The end of round `n` (= `I(n+1)`).
    pub fn round_end(n: u32) -> f64 {
        check_phase_round(n);
        Self::inactive_start(n + 1)
    }

    /// Total duration of round `n`: `4·S(n)`.
    pub fn round_duration(n: u32) -> f64 {
        4.0 * Self::search_all_duration(n)
    }

    /// The round active at global time `t ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics for negative/NaN `t` or beyond the supported horizon.
    pub fn round_at(t: f64) -> u32 {
        assert!(t >= 0.0 && !t.is_nan(), "time must be >= 0, got {t}");
        for n in 1..=MAX_PHASE_ROUND {
            if t < Self::inactive_start(n + 1) {
                return n;
            }
        }
        panic!(
            "time {t} beyond the supported horizon {}",
            Self::inactive_start(MAX_PHASE_ROUND + 1)
        );
    }

    /// The interval `[I(n), A(n))` in which the robot is inactive, as a
    /// `(start, end)` pair.
    pub fn inactive_interval(n: u32) -> (f64, f64) {
        (Self::inactive_start(n), Self::active_start(n))
    }

    /// The interval `[A(n), I(n+1))` in which the robot is active.
    pub fn active_interval(n: u32) -> (f64, f64) {
        (Self::active_start(n), Self::round_end(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;

    #[test]
    fn round1_boundaries() {
        assert_eq!(PhaseSchedule::inactive_start(1), 0.0);
        // A(1) = 2S(1) = 24(π+1)·2.
        assert_approx_eq!(
            PhaseSchedule::active_start(1),
            2.0 * PhaseSchedule::search_all_duration(1),
            1e-12
        );
    }

    /// Lemma 8's derivation: I(n) = 4·Σ_{k<n} S(k).
    #[test]
    fn inactive_start_telescopes_over_rounds() {
        let mut acc = 0.0;
        for n in 1..=12 {
            assert_approx_eq!(PhaseSchedule::inactive_start(n), acc, 1e-9);
            acc += 4.0 * PhaseSchedule::search_all_duration(n);
        }
    }

    /// A(n) = I(n) + 2S(n) and I(n+1) = A(n) + 2S(n).
    #[test]
    fn phase_lengths_are_2s() {
        for n in 1..=12 {
            let s = PhaseSchedule::search_all_duration(n);
            assert_approx_eq!(
                PhaseSchedule::active_start(n),
                PhaseSchedule::inactive_start(n) + 2.0 * s,
                1e-9
            );
            assert_approx_eq!(
                PhaseSchedule::inactive_start(n + 1),
                PhaseSchedule::active_start(n) + 2.0 * s,
                1e-9
            );
        }
    }

    #[test]
    fn round_lookup() {
        assert_eq!(PhaseSchedule::round_at(0.0), 1);
        for n in 1..=8 {
            let mid = 0.5 * (PhaseSchedule::inactive_start(n) + PhaseSchedule::round_end(n));
            assert_eq!(PhaseSchedule::round_at(mid), n);
            // Exactly at the boundary the next round begins.
            assert_eq!(PhaseSchedule::round_at(PhaseSchedule::round_end(n)), n + 1);
        }
    }

    #[test]
    fn intervals_partition_rounds() {
        for n in 1..=10 {
            let (i0, i1) = PhaseSchedule::inactive_interval(n);
            let (a0, a1) = PhaseSchedule::active_interval(n);
            assert_eq!(i1, a0);
            assert_approx_eq!(a1 - i0, PhaseSchedule::round_duration(n), 1e-9);
            // Inactive and active halves are equal length.
            assert_approx_eq!(i1 - i0, a1 - a0, 1e-9);
        }
    }

    #[test]
    fn s_n_matches_paper_equation_1() {
        for n in 1..=10 {
            let expected = 12.0 * times::PI_PLUS_1 * n as f64 * (n as f64).exp2();
            assert_approx_eq!(PhaseSchedule::search_all_duration(n), expected, 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "phase round must be in")]
    fn round_zero_rejected() {
        let _ = PhaseSchedule::active_start(0);
    }

    #[test]
    #[should_panic(expected = "beyond the supported horizon")]
    fn horizon_is_enforced() {
        let _ = PhaseSchedule::round_at(f64::MAX);
    }
}
