//! Property-based tests for the paper's core analysis machinery:
//! equivalent-search algebra, phase schedule, and overlap lemmas.

use proptest::prelude::*;
use rvz_core::{
    completion_time, first_sufficient_overlap_round, lemma13_round_bound,
    overlap::{lemma10_tau_range, lemma9_tau_range},
    overlap_lemma10, overlap_lemma9, tau_decomposition, EquivalentSearch, PhaseSchedule,
    WaitAndSearch,
};
use rvz_geometry::{Mat2, Vec2};
use rvz_model::{Chirality, RobotAttributes};
use rvz_trajectory::Trajectory;

fn chirality() -> impl Strategy<Value = Chirality> {
    prop_oneof![Just(Chirality::Consistent), Just(Chirality::Mirrored)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Lemma 5 closed form equals the numeric QR for every non-degenerate
    /// attribute combination.
    #[test]
    fn lemma5_closed_form_matches_qr(
        v in 0.05..0.999f64,
        phi in 0.0..std::f64::consts::TAU,
        chi in chirality(),
    ) {
        let attrs = RobotAttributes::new(v, 1.0, phi, chi);
        let eq = EquivalentSearch::new(&attrs);
        prop_assume!(eq.mu() > 1e-6);
        let qr = eq.qr().r;
        let cf = eq.upper_triangular_closed_form();
        prop_assert!(
            (qr - cf).frobenius_norm() <= 1e-8 * (1.0 + cf.frobenius_norm()),
            "v={v} φ={phi} χ={chi:?}: {qr} vs {cf}"
        );
    }

    /// |T∘·x| is invariant under the rotation factor: |T∘'·x| = |T∘·x|.
    #[test]
    fn rotation_factor_preserves_distances(
        v in 0.05..0.999f64,
        phi in 0.0..std::f64::consts::TAU,
        chi in chirality(),
        x in -5.0..5.0f64,
        y in -5.0..5.0f64,
    ) {
        let attrs = RobotAttributes::new(v, 1.0, phi, chi);
        let eq = EquivalentSearch::new(&attrs);
        let p = Vec2::new(x, y);
        let full = (eq.matrix() * p).norm();
        let tri = (eq.qr().r * p).norm();
        prop_assert!((full - tri).abs() <= 1e-8 * (1.0 + full));
    }

    /// det(T∘) = (1 − v·e^{iφ} style) determinant identities:
    /// χ=+1 ⇒ det = µ²; χ=−1 ⇒ det = 1 − v².
    #[test]
    fn determinant_closed_forms(
        v in 0.05..2.0f64,
        phi in 0.0..std::f64::consts::TAU,
    ) {
        let cons = EquivalentSearch::new(&RobotAttributes::new(v, 1.0, phi, Chirality::Consistent));
        let mu2 = cons.mu() * cons.mu();
        prop_assert!((cons.determinant() - mu2).abs() <= 1e-9 * (1.0 + mu2));
        let mirr = EquivalentSearch::new(&RobotAttributes::new(v, 1.0, phi, Chirality::Mirrored));
        prop_assert!((mirr.determinant() - (1.0 - v * v)).abs() <= 1e-9 * (1.0 + v * v));
    }

    /// Lemma 4's frame map: the relative position of the two robots
    /// equals T∘·S(t) − d⃗ at random times (τ = 1).
    #[test]
    fn lemma4_relative_motion_identity(
        v in 0.1..0.999f64,
        phi in 0.0..std::f64::consts::TAU,
        chi in chirality(),
        t in 0.0..5e4f64,
        dx in -3.0..3.0f64,
        dy in -3.0..3.0f64,
    ) {
        let attrs = RobotAttributes::new(v, 1.0, phi, chi);
        let d = Vec2::new(dx, dy);
        let algo = rvz_search::UniversalSearch;
        let partner = attrs.frame_warp(algo, d);
        let eq = EquivalentSearch::new(&attrs);
        let relative = algo.position(t) - partner.position(t);
        let predicted = eq.matrix() * algo.position(t) - d;
        prop_assert!(relative.distance(predicted) <= 1e-7 * (1.0 + relative.norm()));
    }

    /// τ decomposition: τ = t·2^{−a} with t ∈ [1/2, 1).
    #[test]
    fn tau_decomposition_contract(tau in 1e-6..0.999_999f64) {
        let d = tau_decomposition(tau);
        prop_assert!((0.5..1.0).contains(&d.t));
        let back = d.t * (-(d.a as f64)).exp2();
        prop_assert!((back - tau).abs() <= 1e-12 * tau);
    }

    /// Lemma 13's k* is monotone in n (more rounds needed to find a
    /// farther/blinder partner ⇒ later guaranteed rendezvous).
    #[test]
    fn lemma13_monotone_in_n(tau in 0.01..0.99f64, n in 1u32..=12) {
        prop_assert!(lemma13_round_bound(tau, n) <= lemma13_round_bound(tau, n + 1));
    }

    /// In Lemma 9's hypothesis region the computed overlap equals the
    /// claim capped at the full active length.
    #[test]
    fn lemma9_cap_identity(a in 0u32..=2, k_off in 0u32..=12, frac in 0.0..1.0f64) {
        let k = 2 * (a + 1) + k_off;
        prop_assume!(k + 1 + a <= 31);
        let (lo, hi) = lemma9_tau_range(k, a);
        let tau = lo + frac * (hi - lo);
        let rep = overlap_lemma9(tau, k, a);
        prop_assume!(rep.hypothesis_holds);
        let active = rep.reference_interval.1 - rep.reference_interval.0;
        let expected = rep.claimed.min(active);
        prop_assert!((rep.computed - expected).abs() <= 1e-6 * (1.0 + expected));
    }

    /// Same for Lemma 10.
    #[test]
    fn lemma10_cap_identity(a in 0u32..=2, k_off in 0u32..=12, frac in 0.0..1.0f64) {
        let k = (2 * (a + 1) + k_off).max(2);
        prop_assume!(k + a <= 31);
        let (lo, hi) = lemma10_tau_range(k, a);
        let tau = lo + frac * (hi - lo);
        let rep = overlap_lemma10(tau, k, a);
        prop_assume!(rep.hypothesis_holds);
        let active = rep.reference_interval.1 - rep.reference_interval.0;
        let expected = rep.claimed.min(active);
        prop_assert!((rep.computed - expected).abs() <= 1e-6 * (1.0 + expected));
    }

    /// The analytic sufficient-overlap round respects Lemma 13 for random
    /// τ and n (whenever within the supported horizon).
    #[test]
    fn sufficient_round_bounded_by_lemma13(tau in 0.05..0.95f64, n in 1u32..=4) {
        let k_star = lemma13_round_bound(tau, n);
        prop_assume!(k_star <= 28);
        let measured = first_sufficient_overlap_round(tau, n);
        prop_assert!(measured.is_some(), "no sufficient round for τ={tau}, n={n}");
        prop_assert!(measured.unwrap() <= k_star);
    }

    /// Algorithm 7 is always at the origin during inactive phases, at
    /// random rounds and offsets.
    #[test]
    fn inactive_means_origin(n in 1u32..=12, frac in 0.0..0.999f64) {
        let (i0, i1) = PhaseSchedule::inactive_interval(n);
        let t = i0 + frac * (i1 - i0);
        prop_assert_eq!(WaitAndSearch.position(t), Vec2::ZERO);
    }

    /// completion_time is strictly increasing.
    #[test]
    fn completion_time_increasing(k in 1u32..=30) {
        prop_assert!(completion_time(k) < completion_time(k + 1));
    }

    /// The equivalent-search matrix is the identity minus the Lemma 4
    /// matrix — explicitly, entrywise.
    #[test]
    fn t_circ_entrywise(
        v in 0.05..2.0f64,
        phi in 0.0..std::f64::consts::TAU,
        chi in chirality(),
    ) {
        let attrs = RobotAttributes::new(v, 1.0, phi, chi);
        let eq = EquivalentSearch::new(&attrs);
        let chi_s = chi.sign();
        let expected = Mat2::new(
            1.0 - v * phi.cos(),
            v * chi_s * phi.sin(),
            -v * phi.sin(),
            1.0 - v * chi_s * phi.cos(),
        );
        prop_assert!((eq.matrix() - expected).frobenius_norm() <= 1e-12);
    }
}
