//! The first-contact engine: analytic advancement over monotone cursors
//! plus hierarchical swept-envelope pruning, with the original
//! conservative-advancement loop kept as a generic fallback.
//!
//! ## Two engines, one contract
//!
//! * [`first_contact`] — the fast path. Both trajectories provide
//!   [`MonotoneTrajectory`] cursors; the engine probes them at
//!   non-decreasing times (amortized O(1) per probe) and advances with
//!   the strongest certificate available at each step (see below).
//! * [`first_contact_generic`] — the original engine, byte-for-byte: a
//!   pure conservative-advancement loop over random-access
//!   [`Trajectory::position`] queries. It exists for exotic downstream
//!   `Trajectory` impls without cursors and as the reference
//!   implementation the fast path is equivalence-tested against
//!   (alongside the dense-sampling [`crate::verify::first_contact_brute`]
//!   oracle).
//!
//! Both report the same [`SimOutcome`] classification on the same
//! scenario; the fast path may declare a contact the generic engine
//! misses only inside the tolerance band `(radius, radius + tolerance]`,
//! where the conservative step can legitimately jump a sub-tolerance dip
//! (and may complete a disproof the generic loop truncates at its step
//! budget).
//!
//! ## The certificate ladder
//!
//! Each iteration advances by the longest of the applicable
//! contact-free certificates, every one of which is sound on its own:
//!
//! 1. **Affine quadratic** — on two affine pieces the squared distance
//!    is an exact quadratic; jump to its smallest root (the contact) or
//!    past the piece.
//! 2. **Cosine law** — a phase-locked circle pair (equal angular
//!    velocities; exact twins above all) or a circle against a
//!    stationary point obeys `d²(s) = P + Q·cos(ψ + ωs)`; jump to the
//!    first crossing or past the piece overlap. This is what crosses
//!    the dyadic schedules' arc sweeps in one step per piece.
//! 3. **Circular lower bounds** — the remaining circle combinations get
//!    a set-distance bound (circle-to-circle, moving-segment-to-circle)
//!    certifying the whole piece overlap when it clears the threshold.
//! 4. **Conservative step** — with relative speed at most `s`, a gap
//!    `D − radius` cannot close within `(D − radius)/s`; always taken
//!    when it is the longest (so the cursor engine never steps more
//!    often than the generic loop).
//! 5. **Swept-envelope pruning** (when [`ContactOptions::prune`] is on)
//!    — starting from the certified advance, test
//!    `envelope_a.gap(envelope_b) > radius + tolerance` over a galloping
//!    look-ahead window: success skips the window wholesale (entire
//!    sub-rounds of `Search(k)` at the top of the hierarchy) and doubles
//!    it, failure halves it — coarse-to-fine descent that hands off to
//!    certificates 1–4 at leaf scale. Complete misses back off
//!    exponentially so unprunable stretches pay almost nothing.
//!
//! The progress floor (a few ulps of `t`) guarantees termination exactly
//! as before; the horizon endpoint is always sampled.

use rvz_geometry::Vec2;
use rvz_trajectory::monotone::{Cursor, MonotoneDyn, MonotoneTrajectory, Motion, Probe};
use rvz_trajectory::Trajectory;
use std::fmt;
use std::time::{Duration, Instant};

/// A cooperative wall-clock budget for one first-contact query (or one
/// batch of queries sharing the same deadline).
///
/// The engines check the clock every [`Budget::check_every`] advancement
/// steps; when the budget's `limit` has elapsed since construction they
/// return [`SimOutcome::Deadline`] instead of continuing. The check can
/// only cause an early return — it never perturbs the stepping
/// arithmetic — so a budget that never fires (e.g. `Duration::MAX`)
/// yields bit-identical outcomes to running with no budget at all.
///
/// The deadline is absolute: cloning the `Budget` into per-pair or
/// per-worker option structs shares the original deadline, which is what
/// a per-request server deadline wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    started: Instant,
    limit: Duration,
    check_every: u64,
}

impl Budget {
    /// Steps between wall-clock checks when not overridden: cheap enough
    /// to bound deadline overrun tightly, rare enough to keep
    /// `Instant::now` off the per-step hot path.
    pub const DEFAULT_CHECK_EVERY: u64 = 1024;

    /// A budget expiring `limit` after *now*.
    ///
    /// `Duration::MAX` is a valid, never-expiring budget (exactly
    /// equivalent to no budget).
    pub fn new(limit: Duration) -> Budget {
        Budget {
            started: Instant::now(),
            limit,
            check_every: Budget::DEFAULT_CHECK_EVERY,
        }
    }

    /// Sets the number of advancement steps between wall-clock checks.
    ///
    /// # Panics
    ///
    /// Panics immediately when `steps` is zero (eager validation, as for
    /// [`ContactOptions::tolerance`]).
    pub fn check_every(mut self, steps: u64) -> Budget {
        assert!(steps > 0, "budget check interval must be positive");
        self.check_every = steps;
        self
    }

    /// The configured check interval in steps.
    pub fn check_interval(&self) -> u64 {
        self.check_every
    }

    /// `true` once the wall-clock limit has elapsed.
    pub fn exhausted(&self) -> bool {
        self.started.elapsed() >= self.limit
    }

    /// Wall-clock time left before the deadline (zero once exhausted).
    pub fn remaining(&self) -> Duration {
        self.limit.saturating_sub(self.started.elapsed())
    }

    /// `(steps, budget)` gate shared by every engine loop: `true` when
    /// this step lands on a check boundary and the deadline has passed.
    #[inline]
    pub(crate) fn fires_at(&self, steps: u64) -> bool {
        steps.is_multiple_of(self.check_every) && self.exhausted()
    }
}

/// Tuning for [`first_contact`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactOptions {
    /// Contact is declared when the distance falls to `radius + tolerance`.
    ///
    /// The reported time precedes the exact `D = radius` crossing by at
    /// most `tolerance / relative_speed`. Defaults to `1e-9`.
    pub tolerance: f64,
    /// Simulated-time horizon; beyond it the engine reports
    /// [`SimOutcome::Horizon`]. Defaults to `1e9`.
    pub horizon: f64,
    /// Hard cap on advancement steps (a safety net against pathological
    /// grazing configurations). Defaults to `50_000_000`.
    pub max_steps: u64,
    /// Enables the swept-envelope pruning layer (cursor engine only).
    ///
    /// On by default; an escape hatch for A/B measurements
    /// (`rvz bench-engine --no-prune`, `rvz sweep --no-prune`) and for
    /// exotic cursors whose envelope fallback is slower than stepping.
    /// Pruning never changes which contacts exist — envelopes are sound
    /// over-approximations — but `Horizon` outcomes may observe their
    /// `min_distance` at a different (sparser) set of sample times.
    pub prune: bool,
    /// Optional wall-clock budget; when it expires the engines surface
    /// [`SimOutcome::Deadline`] instead of running to the horizon or
    /// step budget. `None` (the default) never checks the clock.
    pub budget: Option<Budget>,
}

impl Default for ContactOptions {
    fn default() -> Self {
        ContactOptions {
            tolerance: 1e-9,
            horizon: 1e9,
            max_steps: 50_000_000,
            prune: true,
            budget: None,
        }
    }
}

impl ContactOptions {
    /// Options with a custom horizon and defaults elsewhere.
    ///
    /// # Panics
    ///
    /// Panics immediately when `horizon` is not positive and finite —
    /// construction-time validation, so a bad horizon fails at the call
    /// site that introduced it rather than at the first simulation.
    pub fn with_horizon(horizon: f64) -> Self {
        let opts = ContactOptions {
            horizon,
            ..ContactOptions::default()
        };
        opts.validate();
        opts
    }

    /// Sets the declaration tolerance.
    ///
    /// # Panics
    ///
    /// Panics immediately when `tolerance` is not positive and finite
    /// (including NaN) — every builder setter validates eagerly, so a
    /// bad value fails at the call site that introduced it rather than
    /// at the first simulation that happens to use it.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance > 0.0 && tolerance.is_finite(),
            "tolerance must be positive and finite, got {tolerance}"
        );
        self.tolerance = tolerance;
        self
    }

    /// Sets the advancement-step budget.
    ///
    /// # Panics
    ///
    /// Panics immediately when `max_steps` is zero (eager validation,
    /// as for [`ContactOptions::tolerance`]).
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        assert!(max_steps > 0, "max_steps must be positive");
        self.max_steps = max_steps;
        self
    }

    /// Enables or disables the swept-envelope pruning layer.
    pub fn prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Attaches a wall-clock [`Budget`]; the engines surface
    /// [`SimOutcome::Deadline`] once it expires.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.tolerance > 0.0 && self.tolerance.is_finite(),
            "tolerance must be positive and finite, got {}",
            self.tolerance
        );
        assert!(
            self.horizon > 0.0 && self.horizon.is_finite(),
            "horizon must be positive and finite, got {}",
            self.horizon
        );
        assert!(self.max_steps > 0, "max_steps must be positive");
    }
}

/// The result of a first-contact query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimOutcome {
    /// The trajectories came within `radius + tolerance` of each other.
    Contact {
        /// Time of the declared contact.
        time: f64,
        /// The actual distance at that time (≤ radius + tolerance).
        distance: f64,
        /// Advancement steps used.
        steps: u64,
    },
    /// No contact up to the horizon.
    Horizon {
        /// The smallest distance observed at any step (on analytically
        /// solved pieces this includes the true within-piece closest
        /// approach, not just the sampled endpoints).
        min_distance: f64,
        /// When that minimum was observed.
        min_distance_time: f64,
        /// Advancement steps used.
        steps: u64,
    },
    /// The step budget ran out before the horizon (grazing pathologies).
    StepBudget {
        /// Simulated time reached.
        time: f64,
        /// The smallest distance observed at any step.
        min_distance: f64,
        /// Advancement steps used (the configured budget).
        steps: u64,
    },
    /// The wall-clock [`Budget`] expired before the query resolved
    /// (cooperative cancellation — e.g. a per-request server deadline).
    Deadline {
        /// Simulated time reached when the deadline fired.
        time: f64,
        /// The smallest distance observed at any step.
        min_distance: f64,
        /// Advancement steps used (a multiple of the budget's check
        /// interval: the clock is only consulted on check boundaries).
        steps: u64,
    },
}

impl SimOutcome {
    /// The contact time, if a contact occurred.
    pub fn contact_time(&self) -> Option<f64> {
        match self {
            SimOutcome::Contact { time, .. } => Some(*time),
            _ => None,
        }
    }

    /// `true` for the contact outcome.
    pub fn is_contact(&self) -> bool {
        matches!(self, SimOutcome::Contact { .. })
    }

    /// Advancement steps used, whatever the outcome.
    pub fn steps(&self) -> u64 {
        match *self {
            SimOutcome::Contact { steps, .. }
            | SimOutcome::Horizon { steps, .. }
            | SimOutcome::StepBudget { steps, .. }
            | SimOutcome::Deadline { steps, .. } => steps,
        }
    }

    /// The outcome's stable classification label
    /// (`"contact"` / `"horizon"` / `"step-budget"` / `"deadline"`), as
    /// used by the engine-equivalence tests and the `BENCH_engine.json`
    /// schema.
    pub fn classification(&self) -> &'static str {
        match self {
            SimOutcome::Contact { .. } => "contact",
            SimOutcome::Horizon { .. } => "horizon",
            SimOutcome::StepBudget { .. } => "step-budget",
            SimOutcome::Deadline { .. } => "deadline",
        }
    }
}

impl fmt::Display for SimOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimOutcome::Contact { time, distance, steps } => {
                write!(f, "contact at t={time:.6} (distance {distance:.3e}, {steps} steps)")
            }
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => write!(
                f,
                "no contact before horizon (min distance {min_distance:.6} at t={min_distance_time:.3}, {steps} steps)"
            ),
            SimOutcome::StepBudget {
                time,
                min_distance,
                steps,
            } => {
                write!(f, "step budget exhausted at t={time:.3} (min distance {min_distance:.6}, {steps} steps)")
            }
            SimOutcome::Deadline {
                time,
                min_distance,
                steps,
            } => {
                write!(f, "deadline exceeded at t={time:.3} (min distance {min_distance:.6}, {steps} steps)")
            }
        }
    }
}

/// Finds the first time `|a(t) − b(t)| ≤ radius (+ tolerance)` on the
/// monotone-cursor fast path.
///
/// Builds one cursor per trajectory and runs
/// [`first_contact_cursors`]; see the [module docs](self) for the
/// algorithm and its soundness argument. For a `Trajectory` without a
/// [`MonotoneTrajectory`] impl use [`first_contact_generic`] (or wrap it
/// in [`rvz_trajectory::GenericCursor`]).
///
/// # Panics
///
/// Panics on invalid options, a non-positive `radius`, or a trajectory
/// producing a non-finite position.
pub fn first_contact<A, B>(a: &A, b: &B, radius: f64, opts: &ContactOptions) -> SimOutcome
where
    A: MonotoneTrajectory + ?Sized,
    B: MonotoneTrajectory + ?Sized,
{
    first_contact_cursors(&mut a.cursor(), &mut b.cursor(), radius, opts)
}

/// [`first_contact`] for type-erased robots: the heterogeneous-swarm
/// entry point.
///
/// Runs the cursor fast path through [`MonotoneDyn::with_cursor`]'s
/// scoped stack cursors instead of `dyn_cursor()`'s boxed ones, so a
/// query performs **zero** heap allocations (the allocation gate in
/// `tests/alloc_gate.rs` holds this path to the same standard as the
/// compiled engine). Virtual dispatch per probe remains — callers with
/// concrete types keep [`first_contact`].
///
/// # Panics
///
/// As for [`first_contact`].
pub fn first_contact_dyn(
    a: &dyn MonotoneDyn,
    b: &dyn MonotoneDyn,
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    let mut out = None;
    a.with_cursor(&mut |ca| {
        b.with_cursor(&mut |cb| {
            out = Some(first_contact_cursors(ca, cb, radius, opts));
        });
    });
    out.expect("with_cursor always invokes its closure")
}

/// Work counters for the cursor engine, reported by
/// [`first_contact_cursors_instrumented`].
///
/// `steps` (probe iterations) live in the [`SimOutcome`]; these count
/// the envelope layer's extra work so benchmarks can attribute a
/// speedup: many pruned intervals with few queries means the hierarchy
/// certified separation coarsely, many queries with few pruned
/// intervals means the windows kept collapsing to leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Intervals skipped wholesale on an envelope separation certificate.
    pub pruned_intervals: u64,
    /// Individual `envelope(t0, t1)` queries issued (two per tested
    /// interval — one per cursor).
    pub envelope_queries: u64,
    /// Steps advanced by an exact analytic root (affine quadratic or
    /// cosine-law crossing): the ladder's certificates 1–2.
    pub analytic_steps: u64,
    /// Steps advanced by the conservative / piece-boundary certificates
    /// (3–4) — the remainder of the ladder.
    pub conservative_steps: u64,
    /// Lane-kernel chunks evaluated (each chunk is up to
    /// [`crate::kernel::KERNEL_LANES`] merged affine intervals minimized
    /// branch-free in one pass). Zero on the scalar paths.
    pub lane_chunks: u64,
    /// Whole intervals certified (or localized) by lane chunks — the
    /// kernel's share of the total steps. Zero on the scalar paths.
    pub lane_intervals: u64,
}

/// The cursor-level engine behind [`first_contact`].
///
/// Takes the two cursors directly, which lets heterogeneous callers
/// (e.g. `&[&dyn MonotoneDyn]` swarms) drive the fast path through boxed
/// cursors.
///
/// # Panics
///
/// As for [`first_contact`].
pub fn first_contact_cursors<A, B>(
    a: &mut A,
    b: &mut B,
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome
where
    A: Cursor + ?Sized,
    B: Cursor + ?Sized,
{
    first_contact_cursors_instrumented(a, b, radius, opts).0
}

/// [`first_contact_cursors`] plus the pruning-layer work counters —
/// the entry point `rvz bench-engine` uses to report pruned intervals
/// alongside steps and queries.
///
/// # Panics
///
/// As for [`first_contact`].
pub fn first_contact_cursors_instrumented<A, B>(
    a: &mut A,
    b: &mut B,
    radius: f64,
    opts: &ContactOptions,
) -> (SimOutcome, EngineStats)
where
    A: Cursor + ?Sized,
    B: Cursor + ?Sized,
{
    let (out, stats) = cursors_instrumented_impl(a, b, radius, opts);
    crate::telemetry::record(crate::telemetry::EnginePath::Cursor, Some(&out), stats);
    (out, stats)
}

/// The cursor engine loop proper (telemetry recorded by the public
/// wrapper above).
fn cursors_instrumented_impl<A, B>(
    a: &mut A,
    b: &mut B,
    radius: f64,
    opts: &ContactOptions,
) -> (SimOutcome, EngineStats)
where
    A: Cursor + ?Sized,
    B: Cursor + ?Sized,
{
    opts.validate();
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite, got {radius}"
    );
    let rel_speed = a.speed_bound() + b.speed_bound();
    assert!(
        rel_speed.is_finite(),
        "speed bounds must be finite, got {rel_speed}"
    );
    let threshold = radius + opts.tolerance;

    let mut t = 0.0_f64;
    let mut min_distance = f64::INFINITY;
    let mut min_distance_time = 0.0;
    let mut steps = 0_u64;
    let mut stats = EngineStats::default();
    // Adaptive pruning state: the galloping window doubles while
    // envelope certificates keep succeeding and halves when they fail;
    // after a complete miss the next attempts back off exponentially so
    // regions the envelopes cannot separate (close approaches, twins on
    // big sweeps) pay almost nothing for the layer.
    let mut window = 0.0_f64;
    let mut cooldown = 0_u32;
    let mut miss_streak = 0_u32;

    loop {
        let pa = a.probe(t);
        let pb = b.probe(t);
        let d = pa.position.distance(pb.position);
        assert!(
            d.is_finite(),
            "trajectory produced a non-finite position at t={t}"
        );
        if d < min_distance {
            min_distance = d;
            min_distance_time = t;
        }
        if d <= threshold {
            return (
                SimOutcome::Contact {
                    time: t,
                    distance: d,
                    steps,
                },
                stats,
            );
        }
        if t >= opts.horizon {
            return (
                SimOutcome::Horizon {
                    min_distance,
                    min_distance_time,
                    steps,
                },
                stats,
            );
        }
        steps += 1;
        if steps > opts.max_steps {
            return (
                SimOutcome::StepBudget {
                    time: t,
                    min_distance,
                    steps: opts.max_steps,
                },
                stats,
            );
        }
        if let Some(budget) = &opts.budget {
            if budget.fires_at(steps) {
                return (
                    SimOutcome::Deadline {
                        time: t,
                        min_distance,
                        steps,
                    },
                    stats,
                );
            }
        }

        // The conservative certificate holds regardless of piece shape:
        // with relative speed at most `rel_speed`, the gap `d − radius`
        // cannot close sooner. `∞` when neither robot can move.
        let conservative = if rel_speed > 0.0 {
            (d - radius) / rel_speed
        } else {
            f64::INFINITY
        };
        let mut exact_root = false;
        let step = match (pa.motion, pb.motion) {
            (Motion::Affine { velocity: va }, Motion::Affine { velocity: vb }) => {
                // Both pieces are exact linear motions until `boundary`
                // (never past the horizon — the horizon endpoint itself
                // must be sampled so `min_distance` covers it).
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                // Relative motion q(u) = q0 + dv·u for u ∈ [0, ub].
                let q0 = pb.position - pa.position;
                let dv = vb - va;
                let a2 = dv.norm_squared();
                let b2 = q0.dot(dv);
                let c2 = q0.norm_squared() - threshold * threshold; // > 0 here
                let mut jump = f64::NAN;
                // A first crossing of |q| = threshold needs the distance
                // to be shrinking (b2 < 0) and a real root.
                if a2 > 0.0 && b2 < 0.0 {
                    let disc = b2 * b2 - a2 * c2;
                    if disc >= 0.0 {
                        // Smallest root, in the cancellation-free form.
                        let root = c2 / (-b2 + disc.sqrt());
                        if root <= ub {
                            jump = root;
                            exact_root = true;
                        }
                    }
                    if !exact_root {
                        // No contact inside the piece: still record the
                        // true closest approach (the quadratic's vertex)
                        // if it falls inside, so Horizon outcomes report
                        // a faithful minimum despite the long jumps.
                        let vertex = -b2 / a2;
                        if vertex < ub {
                            let dmin = (q0 + dv * vertex).norm();
                            if dmin < min_distance {
                                min_distance = dmin;
                                min_distance_time = t + vertex;
                            }
                        }
                    }
                }
                if exact_root {
                    jump
                } else {
                    // No contact within the piece (analytic) and none
                    // within the conservative span (speed bound): both
                    // certificates are sound, take the longer one — this
                    // is what keeps the cursor engine's step count at or
                    // below the generic loop's even when the schedule
                    // chops time into slivers of pieces.
                    ub.max(conservative)
                }
            }
            (ma, mb) => {
                // At least one non-affine piece. Circular pieces still
                // admit closed forms over the overlap of the two pieces:
                // a phase-locked circle pair or a circle against a
                // stationary point obeys the exact cosine law
                // `d²(s) = P + Q·cos(ψ + ω·s)` (solved like the affine
                // quadratic — jump to the first crossing or prove there
                // is none), and the remaining circular combinations get
                // a sound distance lower bound. Either way a certified
                // piece is crossed in one step instead of a conservative
                // crawl through the schedules' arc sweeps.
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                if let Some(law) = circular_pair_law(&pa, &pb, ma, mb) {
                    match law.first_crossing(threshold * threshold, ub) {
                        Some(du) => {
                            exact_root = true;
                            du
                        }
                        None => {
                            // No contact within the overlap: fold the
                            // law's true in-piece minimum into the
                            // Horizon bookkeeping (the circular analogue
                            // of the affine vertex) and jump the piece.
                            // The cheap `p − |q|` bound skips the phase
                            // arithmetic when the law cannot improve the
                            // running minimum.
                            if law.p - law.q.abs() < min_distance * min_distance * (1.0 - 1e-12) {
                                if let Some((dmin, smin)) = law.minimum_within(ub) {
                                    if dmin < min_distance {
                                        min_distance = dmin;
                                        min_distance_time = t + smin;
                                    }
                                }
                            }
                            ub.max(conservative)
                        }
                    }
                } else if piece_gap_lower_bound(&pa, &pb, ma, mb, ub) > threshold {
                    ub.max(conservative)
                } else if conservative.is_finite() {
                    conservative
                } else {
                    // Neither can move: the distance can never change.
                    return (
                        SimOutcome::Horizon {
                            min_distance,
                            min_distance_time,
                            steps,
                        },
                        stats,
                    );
                }
            }
        };
        if exact_root {
            stats.analytic_steps += 1;
        } else {
            stats.conservative_steps += 1;
        }
        // Progress floor: a few ulps of the current time.
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        let base = step.max(floor);
        let mut t_next = t + base;

        // Coarse-to-fine envelope pruning: starting from the already
        // certified `t_next`, test whether the two swept envelopes stay
        // separated over a look-ahead window. Success skips the window
        // wholesale (an entire sub-round in one query at the top of the
        // hierarchy) and doubles the next window; failure halves it —
        // the bisection half of the coarse-to-fine descent — until the
        // window collapses to leaf scale and the analytic/conservative
        // machinery above takes over. Skips never pass a declarable
        // contact: a gap above `threshold` excludes every point the
        // sampling engines could declare on. Not attempted past an exact
        // root — `t_next` *is* the contact time there.
        if opts.prune && !exact_root && t_next < opts.horizon {
            if cooldown > 0 {
                cooldown -= 1;
            } else {
                let mut advanced = false;
                let mut w = window.max(4.0 * base);
                loop {
                    let span = w.min(opts.horizon - t_next);
                    if span <= 2.0 * base {
                        // A skip this short cannot beat just stepping:
                        // two envelope queries cost about two probes.
                        break;
                    }
                    stats.envelope_queries += 2;
                    let ea = a.envelope(t_next, t_next + span);
                    let eb = b.envelope(t_next, t_next + span);
                    if ea.gap(&eb) > threshold {
                        stats.pruned_intervals += 1;
                        t_next += span;
                        advanced = true;
                        if t_next >= opts.horizon {
                            break;
                        }
                        w *= 2.0;
                    } else {
                        // The obstruction usually sits right at the
                        // front of the window; halving once and retrying
                        // next iteration beats bisecting to the leaf now.
                        w *= 0.5;
                        break;
                    }
                }
                window = w;
                if advanced {
                    miss_streak = 0;
                } else {
                    // Complete miss: back off exponentially (up to 8
                    // iterations). A longer backoff would eliminate the
                    // last few percent of futile queries on cursors with
                    // only the speed-bound fallback envelope (which can
                    // never certify a span the conservative step doesn't
                    // already cover), but measurably delays re-detection
                    // of prunable structure on the schedule workloads —
                    // the 8-iteration cap is the better trade.
                    miss_streak = (miss_streak + 1).min(3);
                    cooldown = 1 << miss_streak;
                }
            }
        }
        t = t_next.min(opts.horizon);
    }
}

/// The exact pair-distance law on a piece overlap where it reduces to a
/// single cosine: `d²(s) = p + q·cos(ψ + ω·s)` for `s` time units past
/// the probe.
///
/// Produced by [`circular_pair_law`] for a phase-locked circle pair
/// (equal angular velocities — exact twins and identically scheduled
/// pairs) and for a circle against a stationary point; both reduce to
/// the law of cosines with a uniformly rotating angle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CosineLaw {
    pub(crate) p: f64,
    pub(crate) q: f64,
    omega: f64,
    /// Phase proxies: `ψ = atan2(y, x)`, evaluated lazily — most pieces
    /// resolve on the `p`/`q` magnitudes alone, without trigonometry.
    y: f64,
    x: f64,
}

impl CosineLaw {
    /// `(|q|, ψ')` with the sign of `q` folded into the phase.
    fn normalized(&self) -> (f64, f64) {
        let psi = self.y.atan2(self.x);
        if self.q >= 0.0 {
            (self.q, psi)
        } else {
            (-self.q, psi + std::f64::consts::PI)
        }
    }

    /// The smallest `s ∈ [0, span]` with `d²(s) ≤ thr2`, or `None` when
    /// the law proves there is no such time in the span.
    pub(crate) fn first_crossing(&self, thr2: f64, span: f64) -> Option<f64> {
        if self.omega == 0.0 {
            // The phase never moves and the caller already measured
            // d(0) > threshold.
            return None;
        }
        let q = self.q.abs();
        if q == 0.0 {
            // Constant distance, again > threshold at the probe.
            return None;
        }
        let cstar = (thr2 - self.p) / q;
        if cstar < -1.0 {
            return None;
        }
        if cstar >= 1.0 {
            return Some(0.0);
        }
        let (_, psi) = self.normalized();
        // Contact set in phase space: x ∈ [β, 2π − β] (mod 2π), the far
        // side of the cosine.
        let beta = cstar.acos();
        let tau = std::f64::consts::TAU;
        let x0 = psi.rem_euclid(tau);
        if (beta..=tau - beta).contains(&x0) {
            return Some(0.0);
        }
        let arc = if self.omega > 0.0 {
            if x0 < beta {
                beta - x0
            } else {
                beta + tau - x0
            }
        } else if x0 < beta {
            x0 + beta
        } else {
            x0 - (tau - beta)
        };
        let s = arc / self.omega.abs();
        (s <= span).then_some(s)
    }

    /// The true distance minimum attained strictly inside `[0, span]`
    /// (at the phase `x = π`), if the phase reaches it; endpoints are
    /// sampled by the engine anyway.
    pub(crate) fn minimum_within(&self, span: f64) -> Option<(f64, f64)> {
        if self.omega == 0.0 {
            return None;
        }
        let (q, psi) = self.normalized();
        let pi = std::f64::consts::PI;
        let arc = if self.omega > 0.0 {
            (pi - psi).rem_euclid(std::f64::consts::TAU)
        } else {
            (psi - pi).rem_euclid(std::f64::consts::TAU)
        };
        let s = arc / self.omega.abs();
        (s <= span).then(|| ((self.p - q).max(0.0).sqrt(), s))
    }
}

/// The [`CosineLaw`] governing the pair distance on the current piece
/// overlap, when one exists.
pub(crate) fn circular_pair_law(
    pa: &Probe,
    pb: &Probe,
    ma: Motion,
    mb: Motion,
) -> Option<CosineLaw> {
    match (ma, mb) {
        (
            Motion::Circular {
                center: ca,
                angular_velocity: wa,
                ..
            },
            Motion::Circular {
                center: cb,
                angular_velocity: wb,
                ..
            },
        ) if wa == wb => {
            // Relative displacement: fixed center offset plus a vector
            // of constant magnitude rotating at ω.
            let c = cb - ca;
            let v0 = (pb.position - cb) - (pa.position - ca);
            Some(CosineLaw {
                p: c.norm_squared() + v0.norm_squared(),
                q: 2.0 * c.norm() * v0.norm(),
                omega: wa,
                // ψ = angle(v0) − angle(c), deferred.
                y: c.cross(v0),
                x: c.dot(v0),
            })
        }
        (
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                ..
            },
            Motion::Affine { velocity },
        ) if velocity == Vec2::ZERO => Some(point_circle_law(
            pb.position,
            pa.position,
            center,
            radius,
            angular_velocity,
        )),
        (
            Motion::Affine { velocity },
            Motion::Circular {
                center,
                radius,
                angular_velocity,
                ..
            },
        ) if velocity == Vec2::ZERO => Some(point_circle_law(
            pa.position,
            pb.position,
            center,
            radius,
            angular_velocity,
        )),
        _ => None,
    }
}

/// Law of cosines for a point on a circle (currently at `on_circle`)
/// against a fixed point `p`: `d²(s) = R² + D² − 2RD·cos(θ(s) − φ_D)`.
fn point_circle_law(p: Vec2, on_circle: Vec2, center: Vec2, radius: f64, omega: f64) -> CosineLaw {
    let d = p - center;
    let rel = on_circle - center;
    CosineLaw {
        p: radius * radius + d.norm_squared(),
        q: -2.0 * radius * d.norm(),
        omega,
        // ψ = θ − angle(d) = angle(rel) − angle(d), deferred.
        y: d.cross(rel),
        x: d.dot(rel),
    }
}

/// A sound lower bound on the pair distance over the next `ub` time
/// units when at least one active piece is circular; `−∞` when no
/// closed form applies (an opaque [`Motion::Curved`] piece).
pub(crate) fn piece_gap_lower_bound(
    pa: &Probe,
    pb: &Probe,
    ma: Motion,
    mb: Motion,
    ub: f64,
) -> f64 {
    match (ma, mb) {
        (
            Motion::Circular {
                center: ca,
                radius: ra,
                ..
            },
            Motion::Circular {
                center: cb,
                radius: rb,
                ..
            },
        ) => {
            // Equal-rate pairs never reach here (they get the exact
            // cosine law); for unequal rates only the two circles bound
            // the motion.
            ca.distance(cb) - ra - rb
        }
        (Motion::Circular { center, radius, .. }, Motion::Affine { velocity }) => {
            segment_point_distance(pb.position, velocity, ub, center) - radius
        }
        (Motion::Affine { velocity }, Motion::Circular { center, radius, .. }) => {
            segment_point_distance(pa.position, velocity, ub, center) - radius
        }
        _ => f64::NEG_INFINITY,
    }
}

/// Minimum distance from the moving point `p + v·u`, `u ∈ [0, ub]`, to
/// the fixed point `c`.
fn segment_point_distance(p: Vec2, v: Vec2, ub: f64, c: Vec2) -> f64 {
    let vv = v.norm_squared();
    if vv == 0.0 || ub == 0.0 {
        return p.distance(c);
    }
    let proj = ((c - p).dot(v) / vv).clamp(0.0, ub);
    (p + v * proj).distance(c)
}

/// The original conservative-advancement engine over random-access
/// [`Trajectory::position`] queries — the generic fallback and reference
/// implementation.
///
/// Soundness: with `s = a.speed_bound() + b.speed_bound()`, the distance
/// can decrease at rate at most `s`, so after observing gap `D − radius`
/// the engine may skip `(D − radius)/s` time units without a contact
/// being possible in between. The step also never falls below ~4 ulps of
/// the current time so the loop always makes progress; the extra skip
/// this introduces is below any physically meaningful scale.
///
/// # Panics
///
/// Panics on invalid options or a non-positive `radius`.
pub fn first_contact_generic<A, B>(a: &A, b: &B, radius: f64, opts: &ContactOptions) -> SimOutcome
where
    A: Trajectory + ?Sized,
    B: Trajectory + ?Sized,
{
    let out = first_contact_generic_impl(a, b, radius, opts);
    // Every generic step is a conservative advance; the path has no
    // analytic or pruning machinery to attribute work to.
    let stats = EngineStats {
        conservative_steps: out.steps(),
        ..EngineStats::default()
    };
    crate::telemetry::record(crate::telemetry::EnginePath::Generic, Some(&out), stats);
    out
}

/// The conservative-advancement loop proper (telemetry recorded by the
/// public wrapper above).
fn first_contact_generic_impl<A, B>(a: &A, b: &B, radius: f64, opts: &ContactOptions) -> SimOutcome
where
    A: Trajectory + ?Sized,
    B: Trajectory + ?Sized,
{
    opts.validate();
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite, got {radius}"
    );
    let rel_speed = a.speed_bound() + b.speed_bound();
    assert!(
        rel_speed.is_finite(),
        "speed bounds must be finite, got {rel_speed}"
    );

    let mut t = 0.0_f64;
    let mut min_distance = f64::INFINITY;
    let mut min_distance_time = 0.0;
    let mut steps = 0_u64;

    loop {
        let d = a.position(t).distance(b.position(t));
        assert!(
            d.is_finite(),
            "trajectory produced a non-finite position at t={t}"
        );
        if d < min_distance {
            min_distance = d;
            min_distance_time = t;
        }
        if d <= radius + opts.tolerance {
            return SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
        }
        if t >= opts.horizon {
            return SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        }
        steps += 1;
        if steps > opts.max_steps {
            return SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            };
        }
        if let Some(budget) = &opts.budget {
            if budget.fires_at(steps) {
                return SimOutcome::Deadline {
                    time: t,
                    min_distance,
                    steps,
                };
            }
        }
        let gap = d - radius;
        let step = if rel_speed > 0.0 {
            gap / rel_speed
        } else {
            // Both stationary: the distance can never change.
            return SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        };
        // Progress floor: a few ulps of the current time.
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        t = (t + step.max(floor)).min(opts.horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_trajectory::{FnTrajectory, PathBuilder};

    #[test]
    fn head_on_contact_time_is_exact() {
        // Two robots approaching along the x-axis at unit speed each,
        // starting 10 apart with radius 1: contact at t = 4.5.
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(10.0 - t, 0.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        let t = out.contact_time().expect("contact");
        assert!((t - 4.5).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn head_on_paths_solve_in_one_analytic_step() {
        // The same configuration as closed-form paths: the fast engine
        // must jump straight to the crossing instead of crawling.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .build();
        let b = PathBuilder::at(Vec2::new(10.0, 0.0))
            .line_to(Vec2::ZERO)
            .build();
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        match out {
            SimOutcome::Contact { time, steps, .. } => {
                assert!((time - 4.5).abs() < 1e-6, "t = {time}");
                assert!(steps <= 3, "analytic path took {steps} steps");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parallel_motion_never_contacts() {
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(t, 5.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(100.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                assert!((min_distance - 5.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn grazing_paths_report_true_minimum_without_crawling() {
        // Closest approach 1.0 + 1e-7 > threshold: no contact, but the
        // Horizon outcome must carry the *true* within-piece minimum and
        // the engine must not ulp-crawl to find it.
        let h = 1.0 + 1e-7;
        let a = PathBuilder::at(Vec2::new(-50.0, h))
            .line_to(Vec2::new(50.0, h))
            .build();
        let b = PathBuilder::at(Vec2::ZERO).wait(500.0).build();
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(200.0));
        match out {
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => {
                assert!((min_distance - h).abs() < 1e-9, "min {min_distance}");
                assert!((min_distance_time - 50.0).abs() < 1e-6);
                assert!(steps < 10, "grazing pass took {steps} steps");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stationary_pair_terminates_immediately() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let b = FnTrajectory::new(|_| Vec2::new(3.0, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        assert!(matches!(out, SimOutcome::Horizon { steps: 1, .. }));
    }

    #[test]
    fn contact_at_time_zero() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.5, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        assert_eq!(out.contact_time(), Some(0.0));
    }

    #[test]
    fn grazing_pass_is_not_reported_as_contact() {
        // Closest approach 1.2 > radius 1.0.
        let a = FnTrajectory::new(|t| Vec2::new(t - 20.0, 0.0), 1.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.0, 1.2), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(60.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                // min_distance is sampled at step times only, so it is an
                // upper estimate of the true closest approach (1.2).
                assert!(
                    (1.2 - 1e-9..1.21).contains(&min_distance),
                    "min {min_distance}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tangential_contact_is_found() {
        // Closest approach exactly r − ε: a brief dip below the radius.
        let a = FnTrajectory::new(|t| Vec2::new(t - 20.0, 0.0), 1.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.0, 0.95), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(60.0));
        assert!(out.is_contact(), "{out}");
        // Contact must happen near the predicted geometry:
        // |x| = sqrt(1 − 0.95²) ≈ 0.312 before the origin crossing at t=20.
        let t = out.contact_time().unwrap();
        assert!((t - (20.0 - 0.312_25)).abs() < 1e-2, "t = {t}");
    }

    #[test]
    fn works_with_paths_and_waits() {
        // A goes out and comes back; B waits within reach of the far end.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .line_to(Vec2::ZERO)
            .build();
        let b = FnTrajectory::new(|_| Vec2::new(6.0, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.5, &ContactOptions::default());
        // Contact when A reaches x = 4.5, i.e. t = 4.5.
        let t = out.contact_time().unwrap();
        assert!((t - 4.5).abs() < 1e-6);
    }

    #[test]
    fn horizon_is_respected() {
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(t + 100.0, 0.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(10.0));
        assert!(!out.is_contact());
    }

    #[test]
    fn horizon_endpoint_is_sampled_exactly() {
        // A closes on B but the horizon cuts the approach short: the
        // minimum over [0, horizon] sits exactly at the horizon, and both
        // engines must sample it there rather than overshoot past it.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(100.0, 0.0))
            .build();
        let b = PathBuilder::at(Vec2::new(200.0, 0.0)).wait(1000.0).build();
        let opts = ContactOptions::with_horizon(10.0);
        for out in [
            first_contact(&a, &b, 1.0, &opts),
            first_contact_generic(&a, &b, 1.0, &opts),
        ] {
            match out {
                SimOutcome::Horizon {
                    min_distance,
                    min_distance_time,
                    ..
                } => {
                    assert_eq!(min_distance_time, 10.0);
                    assert!((min_distance - 190.0).abs() < 1e-9, "min {min_distance}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn analytic_contact_never_declared_past_horizon() {
        // The within-piece root lies beyond the horizon: must be Horizon.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(100.0, 0.0))
            .build();
        let b = PathBuilder::at(Vec2::new(50.0, 0.0)).wait(1000.0).build();
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(20.0));
        assert!(!out.is_contact(), "{out}");
    }

    #[test]
    fn generic_and_fast_agree_on_classification() {
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .wait(2.0)
            .line_to(Vec2::new(5.0, 5.0))
            .build();
        let b = PathBuilder::at(Vec2::new(8.0, 4.0))
            .line_to(Vec2::new(2.0, 4.0))
            .build();
        let opts = ContactOptions::with_horizon(50.0);
        let fast = first_contact(&a, &b, 0.5, &opts);
        let generic = first_contact_generic(&a, &b, 0.5, &opts);
        assert_eq!(fast.is_contact(), generic.is_contact());
        if let (Some(tf), Some(tg)) = (fast.contact_time(), generic.contact_time()) {
            assert!((tf - tg).abs() < 1e-6, "{tf} vs {tg}");
        }
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let _ = first_contact(&a, &a, 0.0, &ContactOptions::default());
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn bad_options_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let opts = ContactOptions::default().tolerance(0.0);
        let _ = first_contact(&a, &a, 1.0, &opts);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn with_horizon_validates_eagerly() {
        // The satellite bugfix: a bad horizon must fail at construction,
        // not at the first simulation that happens to use it.
        let _ = ContactOptions::with_horizon(-1.0);
    }

    #[test]
    fn circle_vs_stationary_contact_solves_in_closed_form() {
        // A full circle of radius 2 around the origin; the target sits
        // 3.5 away from the center, so the closest approach is 1.5 at
        // the quarter turn (arc time π). With radius 1.6 the cosine law
        // must find the crossing just before that, without crawling.
        let a = PathBuilder::at(Vec2::new(2.0, 0.0))
            .full_circle(Vec2::ZERO)
            .build();
        let b = crate::Stationary::new(Vec2::new(0.0, 3.5));
        let out = first_contact(&a, &b, 1.6, &ContactOptions::default());
        match out {
            SimOutcome::Contact { time, steps, .. } => {
                assert!(time < std::f64::consts::PI, "t = {time}");
                assert!(time > 2.0, "t = {time}");
                assert!(steps <= 3, "cosine-law contact took {steps} steps");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn circle_vs_stationary_miss_reports_true_minimum() {
        // Same geometry, radius below the closest approach: one step
        // per piece, and the Horizon minimum is the law's exact 1.5 —
        // not a sampled over-estimate.
        let a = PathBuilder::at(Vec2::new(2.0, 0.0))
            .full_circle(Vec2::ZERO)
            .build();
        let b = crate::Stationary::new(Vec2::new(0.0, 3.5));
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(30.0));
        match out {
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => {
                assert!((min_distance - 1.5).abs() < 1e-9, "min {min_distance}");
                assert!(
                    (min_distance_time - std::f64::consts::PI).abs() < 1e-9,
                    "at t = {min_distance_time}"
                );
                assert!(steps < 10, "arc miss took {steps} steps");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn phase_locked_circles_cross_in_one_step_per_piece() {
        // Exact-twin geometry: identical circles offset by 5 — the
        // relative displacement is constant, so each piece is certified
        // in a single step.
        let a = PathBuilder::at(Vec2::new(2.0, 0.0))
            .full_circle(Vec2::ZERO)
            .build();
        let b = PathBuilder::at(Vec2::new(2.0, 5.0))
            .full_circle(Vec2::new(0.0, 5.0))
            .build();
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(100.0));
        match out {
            SimOutcome::Horizon {
                min_distance,
                steps,
                ..
            } => {
                assert!((min_distance - 5.0).abs() < 1e-9, "min {min_distance}");
                assert!(steps <= 5, "phase-locked pair took {steps} steps");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pruning_escape_hatch_preserves_outcomes() {
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .wait(2.0)
            .line_to(Vec2::new(5.0, 5.0))
            .build();
        let b = PathBuilder::at(Vec2::new(8.0, 4.0))
            .line_to(Vec2::new(2.0, 4.0))
            .build();
        let opts = ContactOptions::with_horizon(50.0);
        let on = first_contact(&a, &b, 0.5, &opts.prune(true));
        let off = first_contact(&a, &b, 0.5, &opts.prune(false));
        assert_eq!(on.is_contact(), off.is_contact());
        if let (Some(t1), Some(t2)) = (on.contact_time(), off.contact_time()) {
            assert!((t1 - t2).abs() < 1e-9);
        }
    }

    #[test]
    fn instrumented_engine_reports_pruning_work() {
        // Algorithm 4 against a far-away stationary point: the schedule
        // envelope (reach ≤ 2^k) certifies huge windows against the
        // 50-unit separation, so the instrumented entry point must
        // report pruned intervals.
        let a = rvz_search::UniversalSearch;
        let b = crate::Stationary::new(Vec2::new(50.0, 0.0));
        let opts = ContactOptions::with_horizon(rvz_search::times::rounds_total(5));
        let (out, stats) =
            first_contact_cursors_instrumented(&mut a.cursor(), &mut b.cursor(), 0.5, &opts);
        assert!(!out.is_contact());
        assert!(stats.envelope_queries > 0);
        assert!(stats.pruned_intervals > 0);
        // The step-choice counters partition the advancement steps.
        assert_eq!(stats.analytic_steps + stats.conservative_steps, out.steps());
        // With pruning off the same query reports zero envelope work
        // (the step-choice counters still account for every step).
        let (silent_out, silent) = first_contact_cursors_instrumented(
            &mut a.cursor(),
            &mut b.cursor(),
            0.5,
            &opts.prune(false),
        );
        assert_eq!(silent.envelope_queries, 0);
        assert_eq!(silent.pruned_intervals, 0);
        assert_eq!(
            silent.analytic_steps + silent.conservative_steps,
            silent_out.steps()
        );
    }

    #[test]
    fn expired_budget_fires_on_the_first_check_boundary() {
        // Parallel motion never contacts, so without the budget the
        // engine would run to the 1e9 horizon. An already-expired budget
        // with a 4-step check interval must stop both engines at exactly
        // step 4 — the first check boundary.
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(t, 5.0), 1.0);
        let opts =
            ContactOptions::default().with_budget(Budget::new(Duration::ZERO).check_every(4));
        for out in [
            first_contact(&a, &b, 1.0, &opts),
            first_contact_generic(&a, &b, 1.0, &opts),
        ] {
            match out {
                SimOutcome::Deadline { steps, .. } => assert_eq!(steps, 4),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "check interval must be positive")]
    fn zero_check_interval_rejected() {
        let _ = Budget::new(Duration::from_millis(1)).check_every(0);
    }

    #[test]
    fn outcome_display() {
        let c = SimOutcome::Contact {
            time: 1.0,
            distance: 0.5,
            steps: 10,
        };
        assert!(c.to_string().contains("contact at"));
        assert_eq!(c.steps(), 10);
        let h = SimOutcome::Horizon {
            min_distance: 2.0,
            min_distance_time: 5.0,
            steps: 3,
        };
        assert!(h.to_string().contains("no contact"));
        assert_eq!(h.steps(), 3);
        let d = SimOutcome::Deadline {
            time: 7.0,
            min_distance: 2.0,
            steps: 4096,
        };
        assert!(d.to_string().contains("deadline exceeded"));
        assert_eq!(d.classification(), "deadline");
        assert_eq!(d.steps(), 4096);
    }
}
