//! The conservative-advancement first-contact engine.

use rvz_trajectory::Trajectory;
use std::fmt;

/// Tuning for [`first_contact`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactOptions {
    /// Contact is declared when the distance falls to `radius + tolerance`.
    ///
    /// The reported time precedes the exact `D = radius` crossing by at
    /// most `tolerance / relative_speed`. Defaults to `1e-9`.
    pub tolerance: f64,
    /// Simulated-time horizon; beyond it the engine reports
    /// [`SimOutcome::Horizon`]. Defaults to `1e9`.
    pub horizon: f64,
    /// Hard cap on advancement steps (a safety net against pathological
    /// grazing configurations). Defaults to `50_000_000`.
    pub max_steps: u64,
}

impl Default for ContactOptions {
    fn default() -> Self {
        ContactOptions {
            tolerance: 1e-9,
            horizon: 1e9,
            max_steps: 50_000_000,
        }
    }
}

impl ContactOptions {
    /// Options with a custom horizon and defaults elsewhere.
    pub fn with_horizon(horizon: f64) -> Self {
        ContactOptions {
            horizon,
            ..ContactOptions::default()
        }
    }

    /// Sets the declaration tolerance.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    fn validate(&self) {
        assert!(
            self.tolerance > 0.0 && self.tolerance.is_finite(),
            "tolerance must be positive and finite, got {}",
            self.tolerance
        );
        assert!(
            self.horizon > 0.0 && self.horizon.is_finite(),
            "horizon must be positive and finite, got {}",
            self.horizon
        );
        assert!(self.max_steps > 0, "max_steps must be positive");
    }
}

/// The result of a first-contact query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimOutcome {
    /// The trajectories came within `radius + tolerance` of each other.
    Contact {
        /// Time of the declared contact.
        time: f64,
        /// The actual distance at that time (≤ radius + tolerance).
        distance: f64,
        /// Advancement steps used.
        steps: u64,
    },
    /// No contact up to the horizon.
    Horizon {
        /// The smallest distance observed at any step.
        min_distance: f64,
        /// When that minimum was observed.
        min_distance_time: f64,
        /// Advancement steps used.
        steps: u64,
    },
    /// The step budget ran out before the horizon (grazing pathologies).
    StepBudget {
        /// Simulated time reached.
        time: f64,
        /// The smallest distance observed at any step.
        min_distance: f64,
        /// Advancement steps used (the configured budget).
        steps: u64,
    },
}

impl SimOutcome {
    /// The contact time, if a contact occurred.
    pub fn contact_time(&self) -> Option<f64> {
        match self {
            SimOutcome::Contact { time, .. } => Some(*time),
            _ => None,
        }
    }

    /// `true` for the contact outcome.
    pub fn is_contact(&self) -> bool {
        matches!(self, SimOutcome::Contact { .. })
    }
}

impl fmt::Display for SimOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimOutcome::Contact { time, distance, steps } => {
                write!(f, "contact at t={time:.6} (distance {distance:.3e}, {steps} steps)")
            }
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => write!(
                f,
                "no contact before horizon (min distance {min_distance:.6} at t={min_distance_time:.3}, {steps} steps)"
            ),
            SimOutcome::StepBudget {
                time,
                min_distance,
                steps,
            } => {
                write!(f, "step budget exhausted at t={time:.3} (min distance {min_distance:.6}, {steps} steps)")
            }
        }
    }
}

/// Finds the first time `|a(t) − b(t)| ≤ radius (+ tolerance)` by
/// conservative advancement.
///
/// Soundness: with `s = a.speed_bound() + b.speed_bound()`, the distance
/// can decrease at rate at most `s`, so after observing gap `D − radius`
/// the engine may skip `(D − radius)/s` time units without a contact
/// being possible in between. The step also never falls below ~4 ulps of
/// the current time so the loop always makes progress; the extra skip
/// this introduces is below any physically meaningful scale.
///
/// # Panics
///
/// Panics on invalid options or a non-positive `radius`.
pub fn first_contact<A, B>(a: &A, b: &B, radius: f64, opts: &ContactOptions) -> SimOutcome
where
    A: Trajectory + ?Sized,
    B: Trajectory + ?Sized,
{
    opts.validate();
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite, got {radius}"
    );
    let rel_speed = a.speed_bound() + b.speed_bound();
    assert!(
        rel_speed.is_finite(),
        "speed bounds must be finite, got {rel_speed}"
    );

    let mut t = 0.0_f64;
    let mut min_distance = f64::INFINITY;
    let mut min_distance_time = 0.0;
    let mut steps = 0_u64;

    loop {
        let d = a.position(t).distance(b.position(t));
        assert!(
            d.is_finite(),
            "trajectory produced a non-finite position at t={t}"
        );
        if d < min_distance {
            min_distance = d;
            min_distance_time = t;
        }
        if d <= radius + opts.tolerance {
            return SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
        }
        if t >= opts.horizon {
            return SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        }
        steps += 1;
        if steps > opts.max_steps {
            return SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            };
        }
        let gap = d - radius;
        let step = if rel_speed > 0.0 {
            gap / rel_speed
        } else {
            // Both stationary: the distance can never change.
            return SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        };
        // Progress floor: a few ulps of the current time.
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        t = (t + step.max(floor)).min(opts.horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_trajectory::{FnTrajectory, PathBuilder};

    #[test]
    fn head_on_contact_time_is_exact() {
        // Two robots approaching along the x-axis at unit speed each,
        // starting 10 apart with radius 1: contact at t = 4.5.
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(10.0 - t, 0.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        let t = out.contact_time().expect("contact");
        assert!((t - 4.5).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn parallel_motion_never_contacts() {
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(t, 5.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(100.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                assert!((min_distance - 5.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stationary_pair_terminates_immediately() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let b = FnTrajectory::new(|_| Vec2::new(3.0, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        assert!(matches!(out, SimOutcome::Horizon { steps: 1, .. }));
    }

    #[test]
    fn contact_at_time_zero() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.5, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        assert_eq!(out.contact_time(), Some(0.0));
    }

    #[test]
    fn grazing_pass_is_not_reported_as_contact() {
        // Closest approach 1.2 > radius 1.0.
        let a = FnTrajectory::new(|t| Vec2::new(t - 20.0, 0.0), 1.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.0, 1.2), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(60.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                // min_distance is sampled at step times only, so it is an
                // upper estimate of the true closest approach (1.2).
                assert!(
                    (1.2 - 1e-9..1.21).contains(&min_distance),
                    "min {min_distance}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tangential_contact_is_found() {
        // Closest approach exactly r − ε: a brief dip below the radius.
        let a = FnTrajectory::new(|t| Vec2::new(t - 20.0, 0.0), 1.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.0, 0.95), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(60.0));
        assert!(out.is_contact(), "{out}");
        // Contact must happen near the predicted geometry:
        // |x| = sqrt(1 − 0.95²) ≈ 0.312 before the origin crossing at t=20.
        let t = out.contact_time().unwrap();
        assert!((t - (20.0 - 0.312_25)).abs() < 1e-2, "t = {t}");
    }

    #[test]
    fn works_with_paths_and_waits() {
        // A goes out and comes back; B waits within reach of the far end.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .line_to(Vec2::ZERO)
            .build();
        let b = FnTrajectory::new(|_| Vec2::new(6.0, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.5, &ContactOptions::default());
        // Contact when A reaches x = 4.5, i.e. t = 4.5.
        let t = out.contact_time().unwrap();
        assert!((t - 4.5).abs() < 1e-6);
    }

    #[test]
    fn horizon_is_respected() {
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(t + 100.0, 0.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(10.0));
        assert!(!out.is_contact());
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let _ = first_contact(&a, &a, 0.0, &ContactOptions::default());
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn bad_options_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let opts = ContactOptions::default().tolerance(0.0);
        let _ = first_contact(&a, &a, 1.0, &opts);
    }

    #[test]
    fn outcome_display() {
        let c = SimOutcome::Contact {
            time: 1.0,
            distance: 0.5,
            steps: 10,
        };
        assert!(c.to_string().contains("contact at"));
        let h = SimOutcome::Horizon {
            min_distance: 2.0,
            min_distance_time: 5.0,
            steps: 3,
        };
        assert!(h.to_string().contains("no contact"));
    }
}
