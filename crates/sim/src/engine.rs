//! The first-contact engine: analytic advancement over monotone cursors,
//! with the original conservative-advancement loop kept as a generic
//! fallback.
//!
//! ## Two engines, one contract
//!
//! * [`first_contact`] — the fast path. Both trajectories provide
//!   [`MonotoneTrajectory`] cursors; the engine probes them at
//!   non-decreasing times (amortized O(1) per probe) and, whenever both
//!   cursors report an affine piece (straight leg or wait), solves the
//!   within-piece contact in closed form — a quadratic in `t` — instead
//!   of inching forward at the conservative rate. Where a piece is
//!   curved (arcs, spirals, closures) it falls back to the conservative
//!   step for that span.
//! * [`first_contact_generic`] — the original engine, byte-for-byte: a
//!   pure conservative-advancement loop over random-access
//!   [`Trajectory::position`] queries. It exists for exotic downstream
//!   `Trajectory` impls without cursors and as the reference
//!   implementation the fast path is equivalence-tested against
//!   (alongside the dense-sampling [`crate::verify::first_contact_brute`]
//!   oracle).
//!
//! Both report the same [`SimOutcome`] classification on the same
//! scenario; the fast path may declare a contact the generic engine
//! misses only inside the tolerance band `(radius, radius + tolerance]`,
//! where the conservative step can legitimately jump a sub-tolerance dip.
//!
//! ## Soundness of the analytic step
//!
//! On an affine piece both positions are exact linear functions of time
//! until the earlier `piece_end`, so the squared distance is an exact
//! quadratic `q(u)`; the smallest root of `q(u) = (radius + tolerance)²`
//! inside the piece *is* the first contact, and its absence proves no
//! contact up to the piece boundary — no speed-bound argument needed.
//! On curved pieces the conservative argument applies unchanged: with
//! relative speed at most `s`, a gap `D − radius` cannot close within
//! `(D − radius)/s`. The progress floor (a few ulps of `t`) guarantees
//! termination exactly as before.

use rvz_trajectory::monotone::{Cursor, MonotoneTrajectory, Motion};
use rvz_trajectory::Trajectory;
use std::fmt;

/// Tuning for [`first_contact`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactOptions {
    /// Contact is declared when the distance falls to `radius + tolerance`.
    ///
    /// The reported time precedes the exact `D = radius` crossing by at
    /// most `tolerance / relative_speed`. Defaults to `1e-9`.
    pub tolerance: f64,
    /// Simulated-time horizon; beyond it the engine reports
    /// [`SimOutcome::Horizon`]. Defaults to `1e9`.
    pub horizon: f64,
    /// Hard cap on advancement steps (a safety net against pathological
    /// grazing configurations). Defaults to `50_000_000`.
    pub max_steps: u64,
}

impl Default for ContactOptions {
    fn default() -> Self {
        ContactOptions {
            tolerance: 1e-9,
            horizon: 1e9,
            max_steps: 50_000_000,
        }
    }
}

impl ContactOptions {
    /// Options with a custom horizon and defaults elsewhere.
    ///
    /// # Panics
    ///
    /// Panics immediately when `horizon` is not positive and finite —
    /// construction-time validation, so a bad horizon fails at the call
    /// site that introduced it rather than at the first simulation.
    pub fn with_horizon(horizon: f64) -> Self {
        let opts = ContactOptions {
            horizon,
            ..ContactOptions::default()
        };
        opts.validate();
        opts
    }

    /// Sets the declaration tolerance.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    fn validate(&self) {
        assert!(
            self.tolerance > 0.0 && self.tolerance.is_finite(),
            "tolerance must be positive and finite, got {}",
            self.tolerance
        );
        assert!(
            self.horizon > 0.0 && self.horizon.is_finite(),
            "horizon must be positive and finite, got {}",
            self.horizon
        );
        assert!(self.max_steps > 0, "max_steps must be positive");
    }
}

/// The result of a first-contact query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimOutcome {
    /// The trajectories came within `radius + tolerance` of each other.
    Contact {
        /// Time of the declared contact.
        time: f64,
        /// The actual distance at that time (≤ radius + tolerance).
        distance: f64,
        /// Advancement steps used.
        steps: u64,
    },
    /// No contact up to the horizon.
    Horizon {
        /// The smallest distance observed at any step (on analytically
        /// solved pieces this includes the true within-piece closest
        /// approach, not just the sampled endpoints).
        min_distance: f64,
        /// When that minimum was observed.
        min_distance_time: f64,
        /// Advancement steps used.
        steps: u64,
    },
    /// The step budget ran out before the horizon (grazing pathologies).
    StepBudget {
        /// Simulated time reached.
        time: f64,
        /// The smallest distance observed at any step.
        min_distance: f64,
        /// Advancement steps used (the configured budget).
        steps: u64,
    },
}

impl SimOutcome {
    /// The contact time, if a contact occurred.
    pub fn contact_time(&self) -> Option<f64> {
        match self {
            SimOutcome::Contact { time, .. } => Some(*time),
            _ => None,
        }
    }

    /// `true` for the contact outcome.
    pub fn is_contact(&self) -> bool {
        matches!(self, SimOutcome::Contact { .. })
    }

    /// Advancement steps used, whatever the outcome.
    pub fn steps(&self) -> u64 {
        match *self {
            SimOutcome::Contact { steps, .. }
            | SimOutcome::Horizon { steps, .. }
            | SimOutcome::StepBudget { steps, .. } => steps,
        }
    }

    /// The outcome's stable classification label
    /// (`"contact"` / `"horizon"` / `"step-budget"`), as used by the
    /// engine-equivalence tests and the `BENCH_engine.json` schema.
    pub fn classification(&self) -> &'static str {
        match self {
            SimOutcome::Contact { .. } => "contact",
            SimOutcome::Horizon { .. } => "horizon",
            SimOutcome::StepBudget { .. } => "step-budget",
        }
    }
}

impl fmt::Display for SimOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimOutcome::Contact { time, distance, steps } => {
                write!(f, "contact at t={time:.6} (distance {distance:.3e}, {steps} steps)")
            }
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => write!(
                f,
                "no contact before horizon (min distance {min_distance:.6} at t={min_distance_time:.3}, {steps} steps)"
            ),
            SimOutcome::StepBudget {
                time,
                min_distance,
                steps,
            } => {
                write!(f, "step budget exhausted at t={time:.3} (min distance {min_distance:.6}, {steps} steps)")
            }
        }
    }
}

/// Finds the first time `|a(t) − b(t)| ≤ radius (+ tolerance)` on the
/// monotone-cursor fast path.
///
/// Builds one cursor per trajectory and runs
/// [`first_contact_cursors`]; see the [module docs](self) for the
/// algorithm and its soundness argument. For a `Trajectory` without a
/// [`MonotoneTrajectory`] impl use [`first_contact_generic`] (or wrap it
/// in [`rvz_trajectory::GenericCursor`]).
///
/// # Panics
///
/// Panics on invalid options, a non-positive `radius`, or a trajectory
/// producing a non-finite position.
pub fn first_contact<A, B>(a: &A, b: &B, radius: f64, opts: &ContactOptions) -> SimOutcome
where
    A: MonotoneTrajectory + ?Sized,
    B: MonotoneTrajectory + ?Sized,
{
    first_contact_cursors(&mut a.cursor(), &mut b.cursor(), radius, opts)
}

/// The cursor-level engine behind [`first_contact`].
///
/// Takes the two cursors directly, which lets heterogeneous callers
/// (e.g. `&[&dyn MonotoneDyn]` swarms) drive the fast path through boxed
/// cursors.
///
/// # Panics
///
/// As for [`first_contact`].
pub fn first_contact_cursors<A, B>(
    a: &mut A,
    b: &mut B,
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome
where
    A: Cursor + ?Sized,
    B: Cursor + ?Sized,
{
    opts.validate();
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite, got {radius}"
    );
    let rel_speed = a.speed_bound() + b.speed_bound();
    assert!(
        rel_speed.is_finite(),
        "speed bounds must be finite, got {rel_speed}"
    );
    let threshold = radius + opts.tolerance;

    let mut t = 0.0_f64;
    let mut min_distance = f64::INFINITY;
    let mut min_distance_time = 0.0;
    let mut steps = 0_u64;

    loop {
        let pa = a.probe(t);
        let pb = b.probe(t);
        let d = pa.position.distance(pb.position);
        assert!(
            d.is_finite(),
            "trajectory produced a non-finite position at t={t}"
        );
        if d < min_distance {
            min_distance = d;
            min_distance_time = t;
        }
        if d <= threshold {
            return SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
        }
        if t >= opts.horizon {
            return SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        }
        steps += 1;
        if steps > opts.max_steps {
            return SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            };
        }

        let step = match (pa.motion, pb.motion) {
            (Motion::Affine { velocity: va }, Motion::Affine { velocity: vb }) => {
                // Both pieces are exact linear motions until `boundary`
                // (never past the horizon — the horizon endpoint itself
                // must be sampled so `min_distance` covers it).
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                // Relative motion q(u) = q0 + dv·u for u ∈ [0, ub].
                let q0 = pb.position - pa.position;
                let dv = vb - va;
                let a2 = dv.norm_squared();
                let b2 = q0.dot(dv);
                let c2 = q0.norm_squared() - threshold * threshold; // > 0 here
                let mut jump = ub;
                // A first crossing of |q| = threshold needs the distance
                // to be shrinking (b2 < 0) and a real root.
                if a2 > 0.0 && b2 < 0.0 {
                    let disc = b2 * b2 - a2 * c2;
                    if disc >= 0.0 {
                        // Smallest root, in the cancellation-free form.
                        let root = c2 / (-b2 + disc.sqrt());
                        if root <= ub {
                            jump = root;
                        }
                    }
                    if jump >= ub {
                        // No contact inside the piece: still record the
                        // true closest approach (the quadratic's vertex)
                        // if it falls inside, so Horizon outcomes report
                        // a faithful minimum despite the long jumps.
                        let vertex = -b2 / a2;
                        if vertex < ub {
                            let dmin = (q0 + dv * vertex).norm();
                            if dmin < min_distance {
                                min_distance = dmin;
                                min_distance_time = t + vertex;
                            }
                        }
                    }
                }
                jump
            }
            _ => {
                // At least one curved piece: conservative advancement.
                if rel_speed > 0.0 {
                    (d - radius) / rel_speed
                } else {
                    // Neither can move: the distance can never change.
                    return SimOutcome::Horizon {
                        min_distance,
                        min_distance_time,
                        steps,
                    };
                }
            }
        };
        // Progress floor: a few ulps of the current time.
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        t = (t + step.max(floor)).min(opts.horizon);
    }
}

/// The original conservative-advancement engine over random-access
/// [`Trajectory::position`] queries — the generic fallback and reference
/// implementation.
///
/// Soundness: with `s = a.speed_bound() + b.speed_bound()`, the distance
/// can decrease at rate at most `s`, so after observing gap `D − radius`
/// the engine may skip `(D − radius)/s` time units without a contact
/// being possible in between. The step also never falls below ~4 ulps of
/// the current time so the loop always makes progress; the extra skip
/// this introduces is below any physically meaningful scale.
///
/// # Panics
///
/// Panics on invalid options or a non-positive `radius`.
pub fn first_contact_generic<A, B>(a: &A, b: &B, radius: f64, opts: &ContactOptions) -> SimOutcome
where
    A: Trajectory + ?Sized,
    B: Trajectory + ?Sized,
{
    opts.validate();
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite, got {radius}"
    );
    let rel_speed = a.speed_bound() + b.speed_bound();
    assert!(
        rel_speed.is_finite(),
        "speed bounds must be finite, got {rel_speed}"
    );

    let mut t = 0.0_f64;
    let mut min_distance = f64::INFINITY;
    let mut min_distance_time = 0.0;
    let mut steps = 0_u64;

    loop {
        let d = a.position(t).distance(b.position(t));
        assert!(
            d.is_finite(),
            "trajectory produced a non-finite position at t={t}"
        );
        if d < min_distance {
            min_distance = d;
            min_distance_time = t;
        }
        if d <= radius + opts.tolerance {
            return SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
        }
        if t >= opts.horizon {
            return SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        }
        steps += 1;
        if steps > opts.max_steps {
            return SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            };
        }
        let gap = d - radius;
        let step = if rel_speed > 0.0 {
            gap / rel_speed
        } else {
            // Both stationary: the distance can never change.
            return SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        };
        // Progress floor: a few ulps of the current time.
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        t = (t + step.max(floor)).min(opts.horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_trajectory::{FnTrajectory, PathBuilder};

    #[test]
    fn head_on_contact_time_is_exact() {
        // Two robots approaching along the x-axis at unit speed each,
        // starting 10 apart with radius 1: contact at t = 4.5.
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(10.0 - t, 0.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        let t = out.contact_time().expect("contact");
        assert!((t - 4.5).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn head_on_paths_solve_in_one_analytic_step() {
        // The same configuration as closed-form paths: the fast engine
        // must jump straight to the crossing instead of crawling.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .build();
        let b = PathBuilder::at(Vec2::new(10.0, 0.0))
            .line_to(Vec2::ZERO)
            .build();
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        match out {
            SimOutcome::Contact { time, steps, .. } => {
                assert!((time - 4.5).abs() < 1e-6, "t = {time}");
                assert!(steps <= 3, "analytic path took {steps} steps");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parallel_motion_never_contacts() {
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(t, 5.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(100.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                assert!((min_distance - 5.0).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn grazing_paths_report_true_minimum_without_crawling() {
        // Closest approach 1.0 + 1e-7 > threshold: no contact, but the
        // Horizon outcome must carry the *true* within-piece minimum and
        // the engine must not ulp-crawl to find it.
        let h = 1.0 + 1e-7;
        let a = PathBuilder::at(Vec2::new(-50.0, h))
            .line_to(Vec2::new(50.0, h))
            .build();
        let b = PathBuilder::at(Vec2::ZERO).wait(500.0).build();
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(200.0));
        match out {
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => {
                assert!((min_distance - h).abs() < 1e-9, "min {min_distance}");
                assert!((min_distance_time - 50.0).abs() < 1e-6);
                assert!(steps < 10, "grazing pass took {steps} steps");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stationary_pair_terminates_immediately() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let b = FnTrajectory::new(|_| Vec2::new(3.0, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        assert!(matches!(out, SimOutcome::Horizon { steps: 1, .. }));
    }

    #[test]
    fn contact_at_time_zero() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.5, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        assert_eq!(out.contact_time(), Some(0.0));
    }

    #[test]
    fn grazing_pass_is_not_reported_as_contact() {
        // Closest approach 1.2 > radius 1.0.
        let a = FnTrajectory::new(|t| Vec2::new(t - 20.0, 0.0), 1.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.0, 1.2), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(60.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                // min_distance is sampled at step times only, so it is an
                // upper estimate of the true closest approach (1.2).
                assert!(
                    (1.2 - 1e-9..1.21).contains(&min_distance),
                    "min {min_distance}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tangential_contact_is_found() {
        // Closest approach exactly r − ε: a brief dip below the radius.
        let a = FnTrajectory::new(|t| Vec2::new(t - 20.0, 0.0), 1.0);
        let b = FnTrajectory::new(|_| Vec2::new(0.0, 0.95), 0.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(60.0));
        assert!(out.is_contact(), "{out}");
        // Contact must happen near the predicted geometry:
        // |x| = sqrt(1 − 0.95²) ≈ 0.312 before the origin crossing at t=20.
        let t = out.contact_time().unwrap();
        assert!((t - (20.0 - 0.312_25)).abs() < 1e-2, "t = {t}");
    }

    #[test]
    fn works_with_paths_and_waits() {
        // A goes out and comes back; B waits within reach of the far end.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .line_to(Vec2::ZERO)
            .build();
        let b = FnTrajectory::new(|_| Vec2::new(6.0, 0.0), 0.0);
        let out = first_contact(&a, &b, 1.5, &ContactOptions::default());
        // Contact when A reaches x = 4.5, i.e. t = 4.5.
        let t = out.contact_time().unwrap();
        assert!((t - 4.5).abs() < 1e-6);
    }

    #[test]
    fn horizon_is_respected() {
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(t + 100.0, 0.0), 1.0);
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(10.0));
        assert!(!out.is_contact());
    }

    #[test]
    fn horizon_endpoint_is_sampled_exactly() {
        // A closes on B but the horizon cuts the approach short: the
        // minimum over [0, horizon] sits exactly at the horizon, and both
        // engines must sample it there rather than overshoot past it.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(100.0, 0.0))
            .build();
        let b = PathBuilder::at(Vec2::new(200.0, 0.0)).wait(1000.0).build();
        let opts = ContactOptions::with_horizon(10.0);
        for out in [
            first_contact(&a, &b, 1.0, &opts),
            first_contact_generic(&a, &b, 1.0, &opts),
        ] {
            match out {
                SimOutcome::Horizon {
                    min_distance,
                    min_distance_time,
                    ..
                } => {
                    assert_eq!(min_distance_time, 10.0);
                    assert!((min_distance - 190.0).abs() < 1e-9, "min {min_distance}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn analytic_contact_never_declared_past_horizon() {
        // The within-piece root lies beyond the horizon: must be Horizon.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(100.0, 0.0))
            .build();
        let b = PathBuilder::at(Vec2::new(50.0, 0.0)).wait(1000.0).build();
        let out = first_contact(&a, &b, 1.0, &ContactOptions::with_horizon(20.0));
        assert!(!out.is_contact(), "{out}");
    }

    #[test]
    fn generic_and_fast_agree_on_classification() {
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(5.0, 0.0))
            .wait(2.0)
            .line_to(Vec2::new(5.0, 5.0))
            .build();
        let b = PathBuilder::at(Vec2::new(8.0, 4.0))
            .line_to(Vec2::new(2.0, 4.0))
            .build();
        let opts = ContactOptions::with_horizon(50.0);
        let fast = first_contact(&a, &b, 0.5, &opts);
        let generic = first_contact_generic(&a, &b, 0.5, &opts);
        assert_eq!(fast.is_contact(), generic.is_contact());
        if let (Some(tf), Some(tg)) = (fast.contact_time(), generic.contact_time()) {
            assert!((tf - tg).abs() < 1e-6, "{tf} vs {tg}");
        }
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let _ = first_contact(&a, &a, 0.0, &ContactOptions::default());
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn bad_options_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let opts = ContactOptions::default().tolerance(0.0);
        let _ = first_contact(&a, &a, 1.0, &opts);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn with_horizon_validates_eagerly() {
        // The satellite bugfix: a bad horizon must fail at construction,
        // not at the first simulation that happens to use it.
        let _ = ContactOptions::with_horizon(-1.0);
    }

    #[test]
    fn outcome_display() {
        let c = SimOutcome::Contact {
            time: 1.0,
            distance: 0.5,
            steps: 10,
        };
        assert!(c.to_string().contains("contact at"));
        assert_eq!(c.steps(), 10);
        let h = SimOutcome::Horizon {
            min_distance: 2.0,
            min_distance_time: 5.0,
            steps: 3,
        };
        assert!(h.to_string().contains("no contact"));
        assert_eq!(h.steps(), 3);
    }
}
