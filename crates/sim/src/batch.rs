//! Reusable batch entry points for sweep-style workloads.
//!
//! [`crate::simulate_rendezvous`] takes its algorithm by value and clones
//! it for the reference robot, which is the convenient shape for one-off
//! calls but forces a `Clone` bound and a fresh algorithm value per
//! instance. When a caller runs thousands of instances under the *same*
//! algorithm (the `rvz-experiments` sweep executor, the throughput
//! bench), the *by-ref* entry points here let one algorithm value be
//! built once per worker and reused for the whole batch: the
//! [`MonotoneTrajectory`] blanket impl for `&T` means the frame warp
//! wraps a borrow, and the engine itself holds no per-call buffers, so
//! the hot loop performs no allocation at all. Each simulation builds its
//! two cursors once and runs entirely on the monotone fast path.

use crate::compiled::{try_first_contact_programs, EngineScratch};
use crate::engine::{first_contact, ContactOptions, SimOutcome};
use crate::stationary::Stationary;
use rvz_model::{RendezvousInstance, SearchInstance};
use rvz_trajectory::{Compile, CompileError, CompileOptions, CompiledProgram, MonotoneTrajectory};

/// [`crate::simulate_rendezvous`] with the algorithm taken by reference:
/// no `Clone` bound, no per-call algorithm construction.
///
/// # Example
///
/// ```
/// use rvz_sim::batch::simulate_rendezvous_by_ref;
/// use rvz_sim::ContactOptions;
/// use rvz_search::UniversalSearch;
/// use rvz_model::{RendezvousInstance, RobotAttributes};
/// use rvz_geometry::Vec2;
///
/// let algorithm = UniversalSearch;
/// let attrs = RobotAttributes::reference().with_speed(0.5);
/// let opts = ContactOptions::default();
/// for d in [0.5, 0.7, 0.9] {
///     let inst = RendezvousInstance::new(Vec2::new(0.0, d), 0.05, attrs).unwrap();
///     assert!(simulate_rendezvous_by_ref(&algorithm, &inst, &opts).is_contact());
/// }
/// ```
pub fn simulate_rendezvous_by_ref<T: MonotoneTrajectory>(
    algorithm: &T,
    instance: &RendezvousInstance,
    opts: &ContactOptions,
) -> SimOutcome {
    let partner = instance
        .attributes()
        .frame_warp(algorithm, instance.offset());
    first_contact(algorithm, &partner, instance.visibility(), opts)
}

/// [`crate::simulate_search`] with the algorithm taken by reference.
pub fn simulate_search_by_ref<T: MonotoneTrajectory>(
    algorithm: &T,
    instance: &SearchInstance,
    opts: &ContactOptions,
) -> SimOutcome {
    let target = Stationary::new(instance.target());
    first_contact(algorithm, &target, instance.visibility(), opts)
}

/// Lowers the partner robot of a rendezvous instance — the algorithm
/// seen through the instance's attribute frame — to a compiled program.
///
/// The frame warp is applied **at lowering time**: the returned arena
/// holds plain warped pieces and the engine never touches the warp
/// matrices again. The reference robot's program is just
/// `algorithm.compile(opts)`, shared across every instance of a batch.
///
/// # Errors
///
/// As for [`Compile::compile`] (curved pieces, budget, stalls).
pub fn compile_rendezvous_partner<T: Compile + MonotoneTrajectory>(
    algorithm: &T,
    instance: &RendezvousInstance,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    instance
        .attributes()
        .frame_warp(algorithm, instance.offset())
        .compile(opts)
}

/// [`simulate_rendezvous_by_ref`] on the compiled fast path: the
/// reference program is compiled once per batch, the partner per
/// instance, and the query runs monomorphically with the shared
/// `scratch`.
///
/// Returns `None` when the partner cannot be lowered within `compile`'s
/// budget **or** the query needs time beyond the covered span — the
/// caller falls back to [`simulate_rendezvous_by_ref`]; a returned
/// outcome always equals the fully compiled run's.
pub fn try_simulate_rendezvous_compiled<T: Compile + MonotoneTrajectory>(
    reference: &CompiledProgram,
    algorithm: &T,
    instance: &RendezvousInstance,
    opts: &ContactOptions,
    compile: &CompileOptions,
    scratch: &mut EngineScratch,
) -> Option<SimOutcome> {
    let partner = compile_rendezvous_partner(algorithm, instance, compile).ok()?;
    try_first_contact_programs(reference, &partner, instance.visibility(), opts, scratch)
}

/// [`try_simulate_rendezvous_compiled`] with a **streaming** partner:
/// instead of eagerly lowering the warped partner to the full horizon
/// before the first probe, the partner runs as a
/// [`LazyProgram`](rvz_trajectory::LazyProgram) that materializes
/// pieces only as far as the query advances. On deep schedules whose
/// queries resolve early this removes the dominant per-instance
/// lowering tax; the reference program is still compiled eagerly once
/// per batch and amortized.
///
/// Returns `None` when the query needs time the partner cannot cover
/// (piece budget, a curved span without an
/// [`approx_tolerance`](rvz_trajectory::CompileOptions::approx_tolerance),
/// an uncertifiable bound) — the caller falls back to the cursor path,
/// exactly as with the eager variant. A returned outcome always equals
/// the fully compiled run's.
pub fn try_simulate_rendezvous_lazy<T: Compile + MonotoneTrajectory>(
    reference: &CompiledProgram,
    algorithm: &T,
    instance: &RendezvousInstance,
    opts: &ContactOptions,
    compile: &CompileOptions,
    scratch: &mut EngineScratch,
) -> Option<SimOutcome> {
    let partner = instance
        .attributes()
        .frame_warp(algorithm, instance.offset());
    let lazy = rvz_trajectory::LazyProgram::new(&partner, *compile);
    try_first_contact_programs(reference, &lazy, instance.visibility(), opts, scratch)
}

/// Runs a batch of rendezvous instances under one shared algorithm value,
/// returning outcomes in instance order.
pub fn run_rendezvous_batch<T: MonotoneTrajectory>(
    algorithm: &T,
    instances: &[RendezvousInstance],
    opts: &ContactOptions,
) -> Vec<SimOutcome> {
    instances
        .iter()
        .map(|inst| simulate_rendezvous_by_ref(algorithm, inst, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_model::RobotAttributes;
    use rvz_search::UniversalSearch;

    #[test]
    fn by_ref_matches_by_value() {
        let attrs = RobotAttributes::reference().with_speed(0.5);
        let inst = RendezvousInstance::new(Vec2::new(0.3, 0.6), 0.05, attrs).unwrap();
        let opts = ContactOptions::default();
        let by_ref = simulate_rendezvous_by_ref(&UniversalSearch, &inst, &opts);
        let by_value = crate::simulate_rendezvous(UniversalSearch, &inst, &opts);
        assert_eq!(by_ref, by_value);
    }

    #[test]
    fn batch_preserves_instance_order() {
        let attrs = RobotAttributes::reference().with_speed(0.5);
        let instances: Vec<_> = [0.4, 0.8, 1.2]
            .iter()
            .map(|&d| RendezvousInstance::new(Vec2::new(0.0, d), 0.05, attrs).unwrap())
            .collect();
        let outcomes =
            run_rendezvous_batch(&UniversalSearch, &instances, &ContactOptions::default());
        assert_eq!(outcomes.len(), 3);
        let times: Vec<f64> = outcomes.iter().map(|o| o.contact_time().unwrap()).collect();
        // Farther instances cannot meet earlier under the same algorithm.
        assert!(times[0] <= times[1] && times[1] <= times[2], "{times:?}");
    }

    #[test]
    fn lazy_batch_matches_eager_and_cursor() {
        let attrs = RobotAttributes::reference().with_speed(0.5);
        let opts = ContactOptions::default();
        let compile = CompileOptions::to_horizon(opts.horizon);
        let reference = UniversalSearch.compile(&compile).unwrap();
        let mut scratch = EngineScratch::new();
        for d in [0.4, 0.9, 1.5] {
            let inst = RendezvousInstance::new(Vec2::new(0.0, d), 0.05, attrs).unwrap();
            let lazy = try_simulate_rendezvous_lazy(
                &reference,
                &UniversalSearch,
                &inst,
                &opts,
                &compile,
                &mut scratch,
            )
            .expect("lazy partner covers the resolved span");
            let eager = try_simulate_rendezvous_compiled(
                &reference,
                &UniversalSearch,
                &inst,
                &opts,
                &compile,
                &mut scratch,
            )
            .expect("eager partner covers the horizon");
            let cursor = simulate_rendezvous_by_ref(&UniversalSearch, &inst, &opts);
            // Step counts may differ when the eager partner
            // budget-truncates (its round marks stop at the truncated
            // end, the lazy program's reach the horizon), but the
            // verdict and contact time must agree across all three.
            for other in [&eager, &cursor] {
                assert_eq!(lazy.classification(), other.classification(), "d = {d}");
                let (tl, to) = (lazy.contact_time().unwrap(), other.contact_time().unwrap());
                assert!((tl - to).abs() < 1e-6, "d = {d}: {tl} vs {to}");
            }
        }
    }

    #[test]
    fn search_by_ref_matches_by_value() {
        let inst = SearchInstance::new(Vec2::new(0.6, 0.6), 0.05).unwrap();
        let opts = ContactOptions::default();
        assert_eq!(
            simulate_search_by_ref(&UniversalSearch, &inst, &opts),
            crate::simulate_search(UniversalSearch, &inst, &opts)
        );
    }
}
