//! Multi-robot simulation — the paper's concluding open problem.
//!
//! Section 5 poses "deterministic gathering for multiple robots in this
//! setting of minimal knowledge" as future work. This module provides the
//! simulation machinery to *explore* that question empirically:
//!
//! * [`pairwise_meetings`] — for a swarm all running the same algorithm
//!   in their own frames, the first time each pair sees the other
//!   (pairwise rendezvous is exactly the two-robot problem, so Theorem 4
//!   applies to each pair independently);
//! * [`first_simultaneous_gathering`] — conservative advancement on the
//!   swarm *diameter*: the first time all robots are mutually within `r`
//!   at once, if it ever happens.
//!
//! The gathering demo example uses both to show that pairwise feasibility
//! does **not** obviously compose into simultaneous gathering — which is
//! precisely why the paper leaves it open.

use crate::compiled::{first_contact_programs, EngineScratch};
use crate::engine::{first_contact_cursors, ContactOptions, SimOutcome};
use rvz_geometry::Vec2;
use rvz_trajectory::{CompiledProgram, Cursor, MonotoneDyn, MonotoneTrajectory, Trajectory};

/// First-contact times for every unordered pair in a swarm.
///
/// Entry `[i][j]` (for `i < j`) is `Some(t)` when robots `i` and `j` come
/// within `radius` at time `t ≤ opts.horizon`; `None` otherwise.
/// Diagonal and lower-triangle entries are `None`.
///
/// The robots are taken as [`MonotoneDyn`] trait objects (implemented
/// automatically for every [`MonotoneTrajectory`]), so each pair runs
/// on the engine's cursor fast path via boxed cursors.
///
/// A wall-clock [`Budget`](crate::Budget) in `opts` is shared by every
/// pair (the deadline is absolute): once it expires, remaining pairs
/// resolve to `None` almost immediately instead of running to their
/// horizons, exactly like a pair whose query ends at the horizon.
///
/// # Panics
///
/// Panics when fewer than two robots are supplied (or on invalid
/// options/radius, as in [`crate::first_contact`]).
pub fn pairwise_meetings(
    robots: &[&dyn MonotoneDyn],
    radius: f64,
    opts: &ContactOptions,
) -> Vec<Vec<Option<f64>>> {
    assert!(robots.len() >= 2, "need at least two robots");
    let n = robots.len();
    let mut table = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let outcome = first_contact_cursors(
                &mut robots[i].dyn_cursor(),
                &mut robots[j].dyn_cursor(),
                radius,
                opts,
            );
            table[i][j] = outcome.contact_time();
        }
    }
    table
}

/// [`pairwise_meetings`] for homogeneous swarms: every robot is the
/// *same concrete* [`MonotoneTrajectory`] type, so each pairwise check
/// runs on monomorphized cursors — no `Box<dyn Cursor>` allocation and
/// no virtual dispatch in the engine's hot loop. Mixed collections keep
/// using the [`MonotoneDyn`] entry point.
///
/// # Panics
///
/// As for [`pairwise_meetings`].
pub fn pairwise_meetings_homogeneous<T: MonotoneTrajectory>(
    robots: &[T],
    radius: f64,
    opts: &ContactOptions,
) -> Vec<Vec<Option<f64>>> {
    assert!(robots.len() >= 2, "need at least two robots");
    let n = robots.len();
    let mut table = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let outcome = first_contact_cursors(
                &mut robots[i].cursor(),
                &mut robots[j].cursor(),
                radius,
                opts,
            );
            table[i][j] = outcome.contact_time();
        }
    }
    table
}

/// [`pairwise_meetings`] over compiled programs: each robot is lowered
/// **once** and every one of the `n(n−1)/2` pairwise queries runs on the
/// monomorphic zero-allocation engine with a shared [`EngineScratch`] —
/// the swarm shape where compilation amortizes best (`n` lowerings,
/// `Θ(n²)` queries).
///
/// # Panics
///
/// Panics when fewer than two programs are supplied or when any program
/// does not cover `opts.horizon` (compile with a matching
/// [`CompileOptions`](rvz_trajectory::CompileOptions) horizon).
pub fn pairwise_meetings_programs(
    programs: &[CompiledProgram],
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Vec<Vec<Option<f64>>> {
    assert!(programs.len() >= 2, "need at least two robots");
    let n = programs.len();
    let mut table = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let outcome = first_contact_programs(&programs[i], &programs[j], radius, opts, scratch);
            table[i][j] = outcome.contact_time();
        }
    }
    table
}

/// [`first_simultaneous_gathering`] over compiled programs: the diameter
/// loop samples every robot through a flat piece-index walk, reusing the
/// scratch's position/index buffers across calls.
///
/// # Panics
///
/// As for [`pairwise_meetings_programs`].
pub fn first_simultaneous_gathering_programs(
    programs: &[CompiledProgram],
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> SimOutcome {
    assert!(programs.len() >= 2, "need at least two robots");
    assert!(
        programs.iter().all(|p| p.covers(opts.horizon)),
        "every program must cover the horizon {}",
        opts.horizon
    );
    let closing_bound: f64 = 2.0
        * programs
            .iter()
            .map(|p| p.speed_bound())
            .fold(0.0_f64, f64::max);
    let (positions, indices) = scratch.swarm_buffers(programs.len());
    gathering_loop(
        positions,
        |t, positions| {
            for ((position, index), program) in
                positions.iter_mut().zip(indices.iter_mut()).zip(programs)
            {
                *position = program.probe_from(index, t).position;
            }
        },
        closing_bound,
        radius,
        opts,
    )
}

/// The largest pairwise distance among sampled positions.
fn diameter_of(positions: &[Vec2]) -> f64 {
    let mut max = 0.0_f64;
    for (i, pi) in positions.iter().enumerate() {
        for pj in positions.iter().skip(i + 1) {
            max = max.max(pi.distance(*pj));
        }
    }
    max
}

/// Finds the first time the swarm's diameter drops to `radius` — all
/// robots simultaneously within visibility of each other.
///
/// Conservative advancement applies verbatim: the diameter decreases at
/// a rate at most the sum of the two largest speed bounds, which we
/// over-approximate by twice the maximum bound.
///
/// # Panics
///
/// Panics when fewer than two robots are supplied or on invalid options.
pub fn first_simultaneous_gathering(
    robots: &[&dyn MonotoneDyn],
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    assert!(robots.len() >= 2, "need at least two robots");
    let closing_bound: f64 = 2.0
        * robots
            .iter()
            .map(|r| r.speed_bound())
            .fold(0.0_f64, f64::max);
    // One boxed cursor per robot, built once: the loop only advances
    // `t`, so every position sample is an amortized-O(1) monotone query.
    let mut cursors: Vec<Box<dyn Cursor + '_>> = robots.iter().map(|r| r.dyn_cursor()).collect();
    gathering_on_cursors(&mut cursors, closing_bound, radius, opts)
}

/// [`first_simultaneous_gathering`] for homogeneous swarms: monomorphized
/// cursors, no boxing, no virtual dispatch per sample.
///
/// # Panics
///
/// As for [`first_simultaneous_gathering`].
pub fn first_simultaneous_gathering_homogeneous<T: MonotoneTrajectory>(
    robots: &[T],
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    assert!(robots.len() >= 2, "need at least two robots");
    let closing_bound: f64 = 2.0
        * robots
            .iter()
            .map(|r| r.speed_bound())
            .fold(0.0_f64, f64::max);
    let mut cursors: Vec<T::Cursor<'_>> = robots.iter().map(|r| r.cursor()).collect();
    gathering_on_cursors(&mut cursors, closing_bound, radius, opts)
}

/// The cursor-based gathering entry points' adapter onto the shared
/// diameter loop.
fn gathering_on_cursors<C: Cursor>(
    cursors: &mut [C],
    closing_bound: f64,
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    let mut positions = vec![Vec2::ZERO; cursors.len()];
    gathering_loop(
        &mut positions,
        |t, positions| {
            for (position, cursor) in positions.iter_mut().zip(cursors.iter_mut()) {
                *position = cursor.position(t);
            }
        },
        closing_bound,
        radius,
        opts,
    )
}

/// The single diameter-advancement loop behind every gathering entry
/// point — cursor-based or compiled — parameterized over how positions
/// are sampled. Callers supply the position buffer, so the compiled
/// path can reuse its scratch (zero allocation per call).
fn gathering_loop(
    positions: &mut [Vec2],
    mut sample: impl FnMut(f64, &mut [Vec2]),
    closing_bound: f64,
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive"
    );
    let mut t = 0.0_f64;
    let mut min_diameter = f64::INFINITY;
    let mut min_diameter_time = 0.0;
    let mut steps = 0_u64;
    loop {
        sample(t, positions);
        let d = diameter_of(positions);
        if d < min_diameter {
            min_diameter = d;
            min_diameter_time = t;
        }
        if d <= radius + opts.tolerance {
            return SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
        }
        // Note the ordering: `t` is clamped to the horizon when stepping,
        // so the diameter at exactly `t = horizon` is sampled (and folded
        // into the minimum) before this returns.
        if t >= opts.horizon {
            return SimOutcome::Horizon {
                min_distance: min_diameter,
                min_distance_time: min_diameter_time,
                steps,
            };
        }
        steps += 1;
        if steps > opts.max_steps {
            return SimOutcome::StepBudget {
                time: t,
                min_distance: min_diameter,
                steps: opts.max_steps,
            };
        }
        if let Some(budget) = &opts.budget {
            if budget.fires_at(steps) {
                return SimOutcome::Deadline {
                    time: t,
                    min_distance: min_diameter,
                    steps,
                };
            }
        }
        if closing_bound == 0.0 {
            return SimOutcome::Horizon {
                min_distance: min_diameter,
                min_distance_time: min_diameter_time,
                steps,
            };
        }
        let step = (d - radius) / closing_bound;
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        t = (t + step.max(floor)).min(opts.horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_trajectory::FnTrajectory;

    fn approach(start: Vec2, speed: f64) -> impl MonotoneTrajectory {
        // Moves from `start` straight toward the origin, then stays.
        FnTrajectory::new(
            move |t| {
                let dist = start.norm();
                let travelled = (speed * t).min(dist);
                start * (1.0 - travelled / dist)
            },
            speed,
        )
    }

    #[test]
    fn three_converging_robots_gather() {
        let a = approach(Vec2::new(4.0, 0.0), 1.0);
        let b = approach(Vec2::new(0.0, 4.0), 0.5);
        let c = approach(Vec2::new(-4.0, -4.0), 0.8);
        let robots: Vec<&dyn MonotoneDyn> = vec![&a, &b, &c];
        let out = first_simultaneous_gathering(&robots, 0.5, &ContactOptions::with_horizon(100.0));
        let t = out.contact_time().expect("all converge to the origin");
        // Slowest robot (b) needs 4/0.5 = 8 time units minus the slack the
        // radius allows.
        assert!(t > 5.0 && t <= 8.0, "t = {t}");
    }

    #[test]
    fn pairwise_table_shape_and_symmetric_reach() {
        let a = approach(Vec2::new(2.0, 0.0), 1.0);
        let b = approach(Vec2::new(-2.0, 0.0), 1.0);
        let c = FnTrajectory::new(|_| Vec2::new(0.0, 50.0), 0.0); // far away, parked
        let robots: Vec<&dyn MonotoneDyn> = vec![&a, &b, &c];
        let table = pairwise_meetings(&robots, 0.5, &ContactOptions::with_horizon(50.0));
        assert!(table[0][1].is_some());
        assert_eq!(table[1][0], None); // lower triangle unused
        assert_eq!(table[0][2], None); // c is unreachable
        assert_eq!(table[1][2], None);
    }

    #[test]
    fn diverging_robots_report_horizon() {
        let a = FnTrajectory::new(|t| Vec2::new(1.0 + t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(-1.0 - t, 0.0), 1.0);
        let robots: Vec<&dyn MonotoneDyn> = vec![&a, &b];
        let out = first_simultaneous_gathering(&robots, 0.5, &ContactOptions::with_horizon(10.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                assert!((min_distance - 2.0).abs() < 1e-9)
            }
            other => panic!("diverging robots gathered? {other:?}"),
        }
    }

    #[test]
    fn homogeneous_pairwise_matches_dyn_path() {
        // A homogeneous swarm run through the monomorphic entry point
        // must produce exactly the table the boxed-cursor path does.
        let robots: Vec<_> = [
            Vec2::new(2.0, 0.0),
            Vec2::new(-2.0, 0.0),
            Vec2::new(0.0, 30.0),
        ]
        .iter()
        .map(|&start| approach(start, 1.0))
        .collect();
        let opts = ContactOptions::with_horizon(50.0);
        let mono = pairwise_meetings_homogeneous(&robots, 0.5, &opts);
        let dyn_refs: Vec<&dyn MonotoneDyn> = robots.iter().map(|r| r as _).collect();
        let boxed = pairwise_meetings(&dyn_refs, 0.5, &opts);
        assert_eq!(mono, boxed);
        assert!(mono[0][1].is_some());
    }

    #[test]
    fn homogeneous_gathering_matches_dyn_path() {
        let robots: Vec<_> = [
            Vec2::new(4.0, 0.0),
            Vec2::new(0.0, 4.0),
            Vec2::new(-4.0, -4.0),
        ]
        .iter()
        .map(|&start| approach(start, 0.8))
        .collect();
        let opts = ContactOptions::with_horizon(100.0);
        let mono = first_simultaneous_gathering_homogeneous(&robots, 0.5, &opts);
        let dyn_refs: Vec<&dyn MonotoneDyn> = robots.iter().map(|r| r as _).collect();
        let boxed = first_simultaneous_gathering(&dyn_refs, 0.5, &opts);
        assert_eq!(mono, boxed);
        assert!(mono.is_contact());
    }

    #[test]
    fn program_swarm_matches_cursor_swarm() {
        use rvz_search::UniversalSearch;
        use rvz_trajectory::{Compile, CompileOptions};
        let horizon = rvz_search::times::rounds_total(3);
        let opts = ContactOptions::with_horizon(horizon);
        let robots: Vec<_> = (0..4)
            .map(|i| {
                let angle = std::f64::consts::TAU * i as f64 / 4.0;
                rvz_model::RobotAttributes::reference()
                    .with_speed(0.5 + 0.2 * i as f64)
                    .frame_warp(UniversalSearch, Vec2::from_polar(1.0, angle))
            })
            .collect();
        let programs: Vec<_> = robots
            .iter()
            .map(|r| r.compile(&CompileOptions::to_horizon(horizon)).unwrap())
            .collect();
        let mut scratch = crate::EngineScratch::new();
        let compiled = pairwise_meetings_programs(&programs, 0.2, &opts, &mut scratch);
        let dyn_refs: Vec<&dyn MonotoneDyn> = robots.iter().map(|r| r as _).collect();
        let cursor = pairwise_meetings(&dyn_refs, 0.2, &opts);
        let mut contacts = 0;
        for i in 0..robots.len() {
            for j in (i + 1)..robots.len() {
                assert_eq!(
                    compiled[i][j].is_some(),
                    cursor[i][j].is_some(),
                    "pair ({i}, {j}) disagrees"
                );
                if let (Some(tc), Some(tk)) = (compiled[i][j], cursor[i][j]) {
                    contacts += 1;
                    assert!((tc - tk).abs() < 1e-6 * (1.0 + tk), "{tc} vs {tk}");
                }
            }
        }
        assert!(contacts > 0, "the swarm must exercise the contact branch");

        // Gathering through programs agrees with the boxed-cursor path
        // on classification.
        let compiled_gather =
            first_simultaneous_gathering_programs(&programs, 0.2, &opts, &mut scratch);
        let cursor_gather = first_simultaneous_gathering(&dyn_refs, 0.2, &opts);
        assert_eq!(
            compiled_gather.is_contact(),
            cursor_gather.is_contact(),
            "{compiled_gather} vs {cursor_gather}"
        );
    }

    #[test]
    #[should_panic(expected = "must cover the horizon")]
    fn program_gathering_rejects_uncovered_programs() {
        use rvz_search::UniversalSearch;
        use rvz_trajectory::{Compile, CompileOptions};
        let horizon = rvz_search::times::rounds_total(4);
        let truncated: Vec<_> = (0..2)
            .map(|i| {
                rvz_model::RobotAttributes::reference()
                    .frame_warp(UniversalSearch, Vec2::new(i as f64, 2.0))
                    .compile(&CompileOptions::to_horizon(horizon).max_pieces(64))
                    .unwrap()
            })
            .collect();
        let _ = first_simultaneous_gathering_programs(
            &truncated,
            0.1,
            &ContactOptions::with_horizon(horizon),
            &mut crate::EngineScratch::new(),
        );
    }

    #[test]
    #[should_panic(expected = "at least two robots")]
    fn homogeneous_single_robot_rejected() {
        let robots = [approach(Vec2::UNIT_X, 1.0)];
        let _ = pairwise_meetings_homogeneous(&robots, 1.0, &ContactOptions::default());
    }

    #[test]
    #[should_panic(expected = "at least two robots")]
    fn single_robot_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let robots: Vec<&dyn MonotoneDyn> = vec![&a];
        let _ = first_simultaneous_gathering(&robots, 1.0, &ContactOptions::default());
    }
}
