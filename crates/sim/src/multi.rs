//! Multi-robot simulation — the paper's concluding open problem.
//!
//! Section 5 poses "deterministic gathering for multiple robots in this
//! setting of minimal knowledge" as future work. This module provides the
//! simulation machinery to *explore* that question empirically:
//!
//! * [`pairwise_meetings`] — for a swarm all running the same algorithm
//!   in their own frames, the first time each pair sees the other
//!   (pairwise rendezvous is exactly the two-robot problem, so Theorem 4
//!   applies to each pair independently);
//! * [`first_simultaneous_gathering`] — conservative advancement on the
//!   swarm *diameter*: the first time all robots are mutually within `r`
//!   at once, if it ever happens.
//!
//! The gathering demo example uses both to show that pairwise feasibility
//! does **not** obviously compose into simultaneous gathering — which is
//! precisely why the paper leaves it open.

use crate::compiled::{first_contact_programs, EngineScratch};
use crate::engine::{first_contact_cursors, ContactOptions, EngineStats, SimOutcome};
use crate::kernel::{sweep_first_contact_soa, try_first_contact_soa};
use rvz_geometry::{Aabb, Vec2};
use rvz_trajectory::{
    CompiledProgram, Cursor, MonotoneDyn, MonotoneTrajectory, ProgramSoA, ProgramView, Trajectory,
};

/// First-contact times for every unordered pair in a swarm.
///
/// Entry `[i][j]` (for `i < j`) is `Some(t)` when robots `i` and `j` come
/// within `radius` at time `t ≤ opts.horizon`; `None` otherwise.
/// Diagonal and lower-triangle entries are `None`.
///
/// The robots are taken as [`MonotoneDyn`] trait objects (implemented
/// automatically for every [`MonotoneTrajectory`]), so each pair runs
/// on the engine's cursor fast path through
/// [`first_contact_dyn`](crate::first_contact_dyn)'s scoped stack
/// cursors — no per-pair boxing.
///
/// A wall-clock [`Budget`](crate::Budget) in `opts` is shared by every
/// pair (the deadline is absolute): once it expires, remaining pairs
/// resolve to `None` almost immediately instead of running to their
/// horizons, exactly like a pair whose query ends at the horizon.
///
/// # Panics
///
/// Panics when fewer than two robots are supplied (or on invalid
/// options/radius, as in [`crate::first_contact`]).
pub fn pairwise_meetings(
    robots: &[&dyn MonotoneDyn],
    radius: f64,
    opts: &ContactOptions,
) -> Vec<Vec<Option<f64>>> {
    assert!(robots.len() >= 2, "need at least two robots");
    let n = robots.len();
    let mut table = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let outcome = crate::engine::first_contact_dyn(robots[i], robots[j], radius, opts);
            table[i][j] = outcome.contact_time();
        }
    }
    table
}

/// [`pairwise_meetings`] for homogeneous swarms: every robot is the
/// *same concrete* [`MonotoneTrajectory`] type, so each pairwise check
/// runs on monomorphized cursors — no `Box<dyn Cursor>` allocation and
/// no virtual dispatch in the engine's hot loop. Mixed collections keep
/// using the [`MonotoneDyn`] entry point.
///
/// # Panics
///
/// As for [`pairwise_meetings`].
pub fn pairwise_meetings_homogeneous<T: MonotoneTrajectory>(
    robots: &[T],
    radius: f64,
    opts: &ContactOptions,
) -> Vec<Vec<Option<f64>>> {
    assert!(robots.len() >= 2, "need at least two robots");
    let n = robots.len();
    let mut table = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let outcome = first_contact_cursors(
                &mut robots[i].cursor(),
                &mut robots[j].cursor(),
                radius,
                opts,
            );
            table[i][j] = outcome.contact_time();
        }
    }
    table
}

/// [`pairwise_meetings`] over compiled programs: each robot is lowered
/// **once** and every one of the `n(n−1)/2` pairwise queries runs on the
/// monomorphic zero-allocation engine with a shared [`EngineScratch`] —
/// the swarm shape where compilation amortizes best (`n` lowerings,
/// `Θ(n²)` queries).
///
/// # Panics
///
/// Panics when fewer than two programs are supplied or when any program
/// does not cover `opts.horizon` (compile with a matching
/// [`CompileOptions`](rvz_trajectory::CompileOptions) horizon).
pub fn pairwise_meetings_programs(
    programs: &[CompiledProgram],
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Vec<Vec<Option<f64>>> {
    assert!(programs.len() >= 2, "need at least two robots");
    let n = programs.len();
    let mut table = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let outcome = first_contact_programs(&programs[i], &programs[j], radius, opts, scratch);
            table[i][j] = outcome.contact_time();
        }
    }
    table
}

/// Envelope windows per robot in the batch prefilter: coarse enough
/// that the tables stay cache-resident for realistic swarms, fine
/// enough that separated pairs are disproved without touching the
/// kernel. Radius-independent — a sweep builds them once and reuses
/// them for every radius.
pub const SWEEP_WINDOWS: usize = 64;

/// Fills `out` with `SWEEP_WINDOWS` conservative envelope boxes
/// partitioning `[0, horizon]` for one arena.
fn window_boxes(soa: &ProgramSoA, horizon: f64, out: &mut Vec<Aabb>) {
    let dt = horizon / SWEEP_WINDOWS as f64;
    for w in 0..SWEEP_WINDOWS {
        let t0 = w as f64 * dt;
        let t1 = if w + 1 == SWEEP_WINDOWS {
            horizon
        } else {
            (w + 1) as f64 * dt
        };
        out.push(soa.envelope_box_impl(t0, t1));
    }
}

/// A pair's window-gap profile `(min_gap, argmin)`: the smallest
/// envelope gap over the windows and the window attaining it. The pair
/// is disproved for every threshold below `min_gap` — the profile is
/// radius-independent, so a radius sweep prices all its thresholds
/// from one scan.
fn window_gap_profile(a: &[Aabb], b: &[Aabb]) -> (f64, usize) {
    let mut min_gap = f64::INFINITY;
    let mut argmin = 0;
    for (w, (ba, bb)) in a.iter().zip(b).enumerate() {
        let g = ba.gap(bb);
        if g < min_gap {
            min_gap = g;
            argmin = w;
        }
    }
    (min_gap, argmin)
}

/// The `Horizon` outcome for a window-disproved pair: the observed
/// minimum is an actual probed distance at the closest-approach
/// window's midpoint (never an envelope gap, which would understate
/// it), and the disproof is recorded in telemetry as a lane-kernel
/// query answered purely by envelope pruning.
fn disproved_outcome(a: &ProgramSoA, b: &ProgramSoA, argmin: usize, horizon: f64) -> SimOutcome {
    let dt = horizon / SWEEP_WINDOWS as f64;
    let mid = ((argmin as f64 + 0.5) * dt).min(horizon);
    let (mut ia, mut ib) = (0_usize, 0_usize);
    let pa = ProgramView::probe_from(a, &mut ia, mid);
    let pb = ProgramView::probe_from(b, &mut ib, mid);
    let outcome = SimOutcome::Horizon {
        min_distance: pa.position.distance(pb.position),
        min_distance_time: mid,
        steps: 1,
    };
    let stats = EngineStats {
        envelope_queries: 2 * SWEEP_WINDOWS as u64,
        pruned_intervals: SWEEP_WINDOWS as u64,
        ..EngineStats::default()
    };
    crate::telemetry::record(
        crate::telemetry::EnginePath::CompiledSoA,
        Some(&outcome),
        stats,
    );
    outcome
}

/// One reference arena against many partners on the lane kernel, with
/// a shared window-envelope prefilter: the reference's envelope table
/// is built **once** and each partner either falls to a whole-pair
/// disproof (one gap profile, no kernel run) or runs
/// [`try_first_contact_soa`].
///
/// Entry `k` is `None` exactly when partner `k`'s query was refused
/// (truncated coverage) — callers fall back per partner, as the serve
/// stack does.
///
/// # Panics
///
/// On invalid options/radius, as in [`crate::first_contact`].
pub fn first_contact_batch_soa(
    reference: &ProgramSoA,
    partners: &[ProgramSoA],
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Vec<Option<SimOutcome>> {
    sweep_contacts_soa(reference, partners, &[radius], opts, scratch)
        .pop()
        .expect("one radius in, one row out")
}

/// [`first_contact_batch_soa`] over a radius grid: window tables are
/// radius-independent, so one table build serves every `(radius,
/// partner)` cell, one gap-profile scan prices every threshold, and
/// the radii the prefilter cannot disprove resolve in a **single**
/// multi-threshold ladder run per partner
/// ([`sweep_first_contact_soa`])
/// instead of one kernel run per `(radius, partner)` cell. Row `r` of
/// the result is the batch outcome vector for `radii[r]`.
///
/// # Panics
///
/// As for [`first_contact_batch_soa`]; additionally when `radii` is
/// empty.
pub fn sweep_contacts_soa(
    reference: &ProgramSoA,
    partners: &[ProgramSoA],
    radii: &[f64],
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Vec<Vec<Option<SimOutcome>>> {
    assert!(!radii.is_empty(), "need at least one radius");
    let prefilter = opts.horizon.is_finite() && reference.covers(opts.horizon);
    let mut ref_table = Vec::with_capacity(SWEEP_WINDOWS);
    if prefilter {
        window_boxes(reference, opts.horizon, &mut ref_table);
    }
    // The sweep ladder wants its thresholds ascending; the output rows
    // keep the caller's radius order.
    let mut order: Vec<usize> = (0..radii.len()).collect();
    order.sort_by(|&x, &y| radii[x].total_cmp(&radii[y]));
    let mut partner_table = Vec::with_capacity(SWEEP_WINDOWS);
    let mut kernel_radii: Vec<f64> = Vec::with_capacity(radii.len());
    let mut kernel_rows: Vec<usize> = Vec::with_capacity(radii.len());
    let mut sweep_out: Vec<SimOutcome> = Vec::with_capacity(radii.len());
    let mut out = vec![Vec::with_capacity(partners.len()); radii.len()];
    for partner in partners {
        let pair_prefilter = prefilter && partner.covers(opts.horizon);
        if !pair_prefilter {
            // Truncated or unbounded queries stay on the per-radius
            // path so refusals land per cell, exactly as a caller loop
            // over [`try_first_contact_soa`] would produce them.
            for (r, &radius) in radii.iter().enumerate() {
                out[r].push(try_first_contact_soa(
                    reference, partner, radius, opts, scratch,
                ));
            }
            continue;
        }
        partner_table.clear();
        window_boxes(partner, opts.horizon, &mut partner_table);
        let (min_gap, argmin) = window_gap_profile(&ref_table, &partner_table);
        let slot = out[0].len();
        for row in out.iter_mut() {
            row.push(None);
        }
        kernel_radii.clear();
        kernel_rows.clear();
        let approx = reference.approx_eps() + partner.approx_eps();
        for &r in &order {
            if min_gap > radii[r] + opts.tolerance + approx {
                out[r][slot] = Some(disproved_outcome(reference, partner, argmin, opts.horizon));
            } else {
                kernel_rows.push(r);
                kernel_radii.push(radii[r]);
            }
        }
        match kernel_rows.len() {
            0 => {}
            // A single surviving radius takes the plain kernel — the
            // serve stack's single-query path, byte for byte.
            1 => {
                out[kernel_rows[0]][slot] =
                    try_first_contact_soa(reference, partner, kernel_radii[0], opts, scratch);
            }
            _ => {
                sweep_first_contact_soa(
                    reference,
                    partner,
                    &kernel_radii,
                    opts,
                    scratch,
                    &mut sweep_out,
                );
                for (&r, outcome) in kernel_rows.iter().zip(&sweep_out) {
                    out[r][slot] = Some(*outcome);
                }
            }
        }
    }
    out
}

/// [`pairwise_meetings_programs`] over SoA arenas on the lane kernel:
/// each robot's window-envelope row is built once and every pair runs
/// the gap prefilter before the kernel, so a spread-out swarm costs
/// `Θ(n²)` box comparisons plus kernel time only on the pairs that
/// genuinely approach.
///
/// # Panics
///
/// Panics when fewer than two arenas are supplied or when any arena
/// does not cover `opts.horizon`.
pub fn pairwise_meetings_soa(
    arenas: &[ProgramSoA],
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Vec<Vec<Option<f64>>> {
    assert!(arenas.len() >= 2, "need at least two robots");
    assert!(
        arenas.iter().all(|a| a.covers(opts.horizon)),
        "every arena must cover the horizon {}",
        opts.horizon
    );
    let n = arenas.len();
    let prefilter = opts.horizon.is_finite();
    let mut tables = Vec::with_capacity(if prefilter { n * SWEEP_WINDOWS } else { 0 });
    if prefilter {
        for arena in arenas {
            window_boxes(arena, opts.horizon, &mut tables);
        }
    }
    let mut table = vec![vec![None; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if prefilter {
                let wi = &tables[i * SWEEP_WINDOWS..(i + 1) * SWEEP_WINDOWS];
                let wj = &tables[j * SWEEP_WINDOWS..(j + 1) * SWEEP_WINDOWS];
                let threshold =
                    radius + opts.tolerance + arenas[i].approx_eps() + arenas[j].approx_eps();
                let (min_gap, argmin) = window_gap_profile(wi, wj);
                if min_gap > threshold {
                    disproved_outcome(&arenas[i], &arenas[j], argmin, opts.horizon);
                    continue;
                }
            }
            let outcome = try_first_contact_soa(&arenas[i], &arenas[j], radius, opts, scratch)
                .expect("covered arenas always resolve");
            table[i][j] = outcome.contact_time();
        }
    }
    table
}

/// [`pairwise_meetings_soa`] over a radius grid: per-robot window
/// tables are built **once**, each pair's gap profile prices every
/// threshold from one scan, and the radii that survive the prefilter
/// resolve in one multi-threshold ladder run per pair
/// ([`sweep_first_contact_soa`]) —
/// `Θ(n)` table builds and at most `n(n−1)/2` kernel runs for the
/// whole `radii × pairs` grid. Entry `[r][i][j]` (for `i < j`) is the
/// contact time of pair `(i, j)` at `radii[r]`, as
/// [`pairwise_meetings_soa`] would report it.
///
/// # Panics
///
/// As for [`pairwise_meetings_soa`]; additionally when `radii` is
/// empty.
pub fn pairwise_sweep_soa(
    arenas: &[ProgramSoA],
    radii: &[f64],
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Vec<Vec<Vec<Option<f64>>>> {
    assert!(arenas.len() >= 2, "need at least two robots");
    assert!(!radii.is_empty(), "need at least one radius");
    assert!(
        arenas.iter().all(|a| a.covers(opts.horizon)),
        "every arena must cover the horizon {}",
        opts.horizon
    );
    let n = arenas.len();
    let prefilter = opts.horizon.is_finite();
    let mut tables = Vec::with_capacity(if prefilter { n * SWEEP_WINDOWS } else { 0 });
    if prefilter {
        for arena in arenas {
            window_boxes(arena, opts.horizon, &mut tables);
        }
    }
    let mut order: Vec<usize> = (0..radii.len()).collect();
    order.sort_by(|&x, &y| radii[x].total_cmp(&radii[y]));
    let mut kernel_radii: Vec<f64> = Vec::with_capacity(radii.len());
    let mut kernel_rows: Vec<usize> = Vec::with_capacity(radii.len());
    let mut sweep_out: Vec<SimOutcome> = Vec::with_capacity(radii.len());
    let mut out = vec![vec![vec![None; n]; n]; radii.len()];
    for i in 0..n {
        for j in (i + 1)..n {
            kernel_radii.clear();
            kernel_rows.clear();
            if prefilter {
                let wi = &tables[i * SWEEP_WINDOWS..(i + 1) * SWEEP_WINDOWS];
                let wj = &tables[j * SWEEP_WINDOWS..(j + 1) * SWEEP_WINDOWS];
                let (min_gap, argmin) = window_gap_profile(wi, wj);
                let approx = arenas[i].approx_eps() + arenas[j].approx_eps();
                for &r in &order {
                    if min_gap > radii[r] + opts.tolerance + approx {
                        // Telemetry parity with the per-radius path: each
                        // disproved cell is a recorded envelope answer.
                        disproved_outcome(&arenas[i], &arenas[j], argmin, opts.horizon);
                    } else {
                        kernel_rows.push(r);
                        kernel_radii.push(radii[r]);
                    }
                }
            } else {
                kernel_rows.extend(order.iter().copied());
                kernel_radii.extend(order.iter().map(|&r| radii[r]));
            }
            match kernel_rows.len() {
                0 => {}
                1 => {
                    let outcome = try_first_contact_soa(
                        &arenas[i],
                        &arenas[j],
                        kernel_radii[0],
                        opts,
                        scratch,
                    )
                    .expect("covered arenas always resolve");
                    out[kernel_rows[0]][i][j] = outcome.contact_time();
                }
                _ => {
                    sweep_first_contact_soa(
                        &arenas[i],
                        &arenas[j],
                        &kernel_radii,
                        opts,
                        scratch,
                        &mut sweep_out,
                    );
                    for (&r, outcome) in kernel_rows.iter().zip(&sweep_out) {
                        out[r][i][j] = outcome.contact_time();
                    }
                }
            }
        }
    }
    out
}

/// [`first_simultaneous_gathering`] over compiled programs: the diameter
/// loop samples every robot through a flat piece-index walk, reusing the
/// scratch's position/index buffers across calls.
///
/// # Panics
///
/// As for [`pairwise_meetings_programs`].
pub fn first_simultaneous_gathering_programs(
    programs: &[CompiledProgram],
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> SimOutcome {
    assert!(programs.len() >= 2, "need at least two robots");
    assert!(
        programs.iter().all(|p| p.covers(opts.horizon)),
        "every program must cover the horizon {}",
        opts.horizon
    );
    let closing_bound: f64 = 2.0
        * programs
            .iter()
            .map(|p| p.speed_bound())
            .fold(0.0_f64, f64::max);
    let (positions, indices) = scratch.swarm_buffers(programs.len());
    gathering_loop(
        positions,
        |t, positions| {
            for ((position, index), program) in
                positions.iter_mut().zip(indices.iter_mut()).zip(programs)
            {
                *position = program.probe_from(index, t).position;
            }
        },
        closing_bound,
        radius,
        opts,
    )
}

/// The largest pairwise distance among sampled positions.
fn diameter_of(positions: &[Vec2]) -> f64 {
    let mut max = 0.0_f64;
    for (i, pi) in positions.iter().enumerate() {
        for pj in positions.iter().skip(i + 1) {
            max = max.max(pi.distance(*pj));
        }
    }
    max
}

/// Finds the first time the swarm's diameter drops to `radius` — all
/// robots simultaneously within visibility of each other.
///
/// Conservative advancement applies verbatim: the diameter decreases at
/// a rate at most the sum of the two largest speed bounds, which we
/// over-approximate by twice the maximum bound.
///
/// # Panics
///
/// Panics when fewer than two robots are supplied or on invalid options.
pub fn first_simultaneous_gathering(
    robots: &[&dyn MonotoneDyn],
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    assert!(robots.len() >= 2, "need at least two robots");
    let closing_bound: f64 = 2.0
        * robots
            .iter()
            .map(|r| r.speed_bound())
            .fold(0.0_f64, f64::max);
    // One boxed cursor per robot, built once: the loop only advances
    // `t`, so every position sample is an amortized-O(1) monotone query.
    let mut cursors: Vec<Box<dyn Cursor + '_>> = robots.iter().map(|r| r.dyn_cursor()).collect();
    gathering_on_cursors(&mut cursors, closing_bound, radius, opts)
}

/// [`first_simultaneous_gathering`] for homogeneous swarms: monomorphized
/// cursors, no boxing, no virtual dispatch per sample.
///
/// # Panics
///
/// As for [`first_simultaneous_gathering`].
pub fn first_simultaneous_gathering_homogeneous<T: MonotoneTrajectory>(
    robots: &[T],
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    assert!(robots.len() >= 2, "need at least two robots");
    let closing_bound: f64 = 2.0
        * robots
            .iter()
            .map(|r| r.speed_bound())
            .fold(0.0_f64, f64::max);
    let mut cursors: Vec<T::Cursor<'_>> = robots.iter().map(|r| r.cursor()).collect();
    gathering_on_cursors(&mut cursors, closing_bound, radius, opts)
}

/// The cursor-based gathering entry points' adapter onto the shared
/// diameter loop.
fn gathering_on_cursors<C: Cursor>(
    cursors: &mut [C],
    closing_bound: f64,
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    let mut positions = vec![Vec2::ZERO; cursors.len()];
    gathering_loop(
        &mut positions,
        |t, positions| {
            for (position, cursor) in positions.iter_mut().zip(cursors.iter_mut()) {
                *position = cursor.position(t);
            }
        },
        closing_bound,
        radius,
        opts,
    )
}

/// The single diameter-advancement loop behind every gathering entry
/// point — cursor-based or compiled — parameterized over how positions
/// are sampled. Callers supply the position buffer, so the compiled
/// path can reuse its scratch (zero allocation per call).
fn gathering_loop(
    positions: &mut [Vec2],
    mut sample: impl FnMut(f64, &mut [Vec2]),
    closing_bound: f64,
    radius: f64,
    opts: &ContactOptions,
) -> SimOutcome {
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive"
    );
    let mut t = 0.0_f64;
    let mut min_diameter = f64::INFINITY;
    let mut min_diameter_time = 0.0;
    let mut steps = 0_u64;
    loop {
        sample(t, positions);
        let d = diameter_of(positions);
        if d < min_diameter {
            min_diameter = d;
            min_diameter_time = t;
        }
        if d <= radius + opts.tolerance {
            return SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
        }
        // Note the ordering: `t` is clamped to the horizon when stepping,
        // so the diameter at exactly `t = horizon` is sampled (and folded
        // into the minimum) before this returns.
        if t >= opts.horizon {
            return SimOutcome::Horizon {
                min_distance: min_diameter,
                min_distance_time: min_diameter_time,
                steps,
            };
        }
        steps += 1;
        if steps > opts.max_steps {
            return SimOutcome::StepBudget {
                time: t,
                min_distance: min_diameter,
                steps: opts.max_steps,
            };
        }
        if let Some(budget) = &opts.budget {
            if budget.fires_at(steps) {
                return SimOutcome::Deadline {
                    time: t,
                    min_distance: min_diameter,
                    steps,
                };
            }
        }
        if closing_bound == 0.0 {
            return SimOutcome::Horizon {
                min_distance: min_diameter,
                min_distance_time: min_diameter_time,
                steps,
            };
        }
        let step = (d - radius) / closing_bound;
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        t = (t + step.max(floor)).min(opts.horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_trajectory::FnTrajectory;

    fn approach(start: Vec2, speed: f64) -> impl MonotoneTrajectory {
        // Moves from `start` straight toward the origin, then stays.
        FnTrajectory::new(
            move |t| {
                let dist = start.norm();
                let travelled = (speed * t).min(dist);
                start * (1.0 - travelled / dist)
            },
            speed,
        )
    }

    #[test]
    fn three_converging_robots_gather() {
        let a = approach(Vec2::new(4.0, 0.0), 1.0);
        let b = approach(Vec2::new(0.0, 4.0), 0.5);
        let c = approach(Vec2::new(-4.0, -4.0), 0.8);
        let robots: Vec<&dyn MonotoneDyn> = vec![&a, &b, &c];
        let out = first_simultaneous_gathering(&robots, 0.5, &ContactOptions::with_horizon(100.0));
        let t = out.contact_time().expect("all converge to the origin");
        // Slowest robot (b) needs 4/0.5 = 8 time units minus the slack the
        // radius allows.
        assert!(t > 5.0 && t <= 8.0, "t = {t}");
    }

    #[test]
    fn pairwise_table_shape_and_symmetric_reach() {
        let a = approach(Vec2::new(2.0, 0.0), 1.0);
        let b = approach(Vec2::new(-2.0, 0.0), 1.0);
        let c = FnTrajectory::new(|_| Vec2::new(0.0, 50.0), 0.0); // far away, parked
        let robots: Vec<&dyn MonotoneDyn> = vec![&a, &b, &c];
        let table = pairwise_meetings(&robots, 0.5, &ContactOptions::with_horizon(50.0));
        assert!(table[0][1].is_some());
        assert_eq!(table[1][0], None); // lower triangle unused
        assert_eq!(table[0][2], None); // c is unreachable
        assert_eq!(table[1][2], None);
    }

    #[test]
    fn diverging_robots_report_horizon() {
        let a = FnTrajectory::new(|t| Vec2::new(1.0 + t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(-1.0 - t, 0.0), 1.0);
        let robots: Vec<&dyn MonotoneDyn> = vec![&a, &b];
        let out = first_simultaneous_gathering(&robots, 0.5, &ContactOptions::with_horizon(10.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                assert!((min_distance - 2.0).abs() < 1e-9)
            }
            other => panic!("diverging robots gathered? {other:?}"),
        }
    }

    #[test]
    fn homogeneous_pairwise_matches_dyn_path() {
        // A homogeneous swarm run through the monomorphic entry point
        // must produce exactly the table the boxed-cursor path does.
        let robots: Vec<_> = [
            Vec2::new(2.0, 0.0),
            Vec2::new(-2.0, 0.0),
            Vec2::new(0.0, 30.0),
        ]
        .iter()
        .map(|&start| approach(start, 1.0))
        .collect();
        let opts = ContactOptions::with_horizon(50.0);
        let mono = pairwise_meetings_homogeneous(&robots, 0.5, &opts);
        let dyn_refs: Vec<&dyn MonotoneDyn> = robots.iter().map(|r| r as _).collect();
        let boxed = pairwise_meetings(&dyn_refs, 0.5, &opts);
        assert_eq!(mono, boxed);
        assert!(mono[0][1].is_some());
    }

    #[test]
    fn homogeneous_gathering_matches_dyn_path() {
        let robots: Vec<_> = [
            Vec2::new(4.0, 0.0),
            Vec2::new(0.0, 4.0),
            Vec2::new(-4.0, -4.0),
        ]
        .iter()
        .map(|&start| approach(start, 0.8))
        .collect();
        let opts = ContactOptions::with_horizon(100.0);
        let mono = first_simultaneous_gathering_homogeneous(&robots, 0.5, &opts);
        let dyn_refs: Vec<&dyn MonotoneDyn> = robots.iter().map(|r| r as _).collect();
        let boxed = first_simultaneous_gathering(&dyn_refs, 0.5, &opts);
        assert_eq!(mono, boxed);
        assert!(mono.is_contact());
    }

    #[test]
    fn program_swarm_matches_cursor_swarm() {
        use rvz_search::UniversalSearch;
        use rvz_trajectory::{Compile, CompileOptions};
        let horizon = rvz_search::times::rounds_total(3);
        let opts = ContactOptions::with_horizon(horizon);
        let robots: Vec<_> = (0..4)
            .map(|i| {
                let angle = std::f64::consts::TAU * i as f64 / 4.0;
                rvz_model::RobotAttributes::reference()
                    .with_speed(0.5 + 0.2 * i as f64)
                    .frame_warp(UniversalSearch, Vec2::from_polar(1.0, angle))
            })
            .collect();
        let programs: Vec<_> = robots
            .iter()
            .map(|r| r.compile(&CompileOptions::to_horizon(horizon)).unwrap())
            .collect();
        let mut scratch = crate::EngineScratch::new();
        let compiled = pairwise_meetings_programs(&programs, 0.2, &opts, &mut scratch);
        let dyn_refs: Vec<&dyn MonotoneDyn> = robots.iter().map(|r| r as _).collect();
        let cursor = pairwise_meetings(&dyn_refs, 0.2, &opts);
        let mut contacts = 0;
        for i in 0..robots.len() {
            for j in (i + 1)..robots.len() {
                assert_eq!(
                    compiled[i][j].is_some(),
                    cursor[i][j].is_some(),
                    "pair ({i}, {j}) disagrees"
                );
                if let (Some(tc), Some(tk)) = (compiled[i][j], cursor[i][j]) {
                    contacts += 1;
                    assert!((tc - tk).abs() < 1e-6 * (1.0 + tk), "{tc} vs {tk}");
                }
            }
        }
        assert!(contacts > 0, "the swarm must exercise the contact branch");

        // Gathering through programs agrees with the boxed-cursor path
        // on classification.
        let compiled_gather =
            first_simultaneous_gathering_programs(&programs, 0.2, &opts, &mut scratch);
        let cursor_gather = first_simultaneous_gathering(&dyn_refs, 0.2, &opts);
        assert_eq!(
            compiled_gather.is_contact(),
            cursor_gather.is_contact(),
            "{compiled_gather} vs {cursor_gather}"
        );
    }

    #[test]
    fn soa_swarm_matches_program_swarm() {
        use rvz_search::UniversalSearch;
        use rvz_trajectory::{Compile, CompileOptions};
        let horizon = rvz_search::times::rounds_total(3);
        let opts = ContactOptions::with_horizon(horizon);
        let robots: Vec<_> = (0..4)
            .map(|i| {
                let angle = std::f64::consts::TAU * i as f64 / 4.0;
                rvz_model::RobotAttributes::reference()
                    .with_speed(0.5 + 0.2 * i as f64)
                    .frame_warp(UniversalSearch, Vec2::from_polar(1.0, angle))
            })
            .collect();
        let programs: Vec<_> = robots
            .iter()
            .map(|r| r.compile(&CompileOptions::to_horizon(horizon)).unwrap())
            .collect();
        let arenas: Vec<_> = programs.iter().map(ProgramSoA::from_program).collect();
        let mut scratch = crate::EngineScratch::new();
        let compiled = pairwise_meetings_programs(&programs, 0.2, &opts, &mut scratch);
        let soa = pairwise_meetings_soa(&arenas, 0.2, &opts, &mut scratch);
        let mut contacts = 0;
        for i in 0..robots.len() {
            for j in (i + 1)..robots.len() {
                assert_eq!(
                    soa[i][j].is_some(),
                    compiled[i][j].is_some(),
                    "pair ({i}, {j}) disagrees"
                );
                if let (Some(ts), Some(tc)) = (soa[i][j], compiled[i][j]) {
                    contacts += 1;
                    assert!((ts - tc).abs() < 1e-6 * (1.0 + tc), "{ts} vs {tc}");
                }
            }
        }
        assert!(contacts > 0, "the swarm must exercise the contact branch");
    }

    #[test]
    fn sweep_pairwise_matches_per_radius_tables() {
        use rvz_search::UniversalSearch;
        use rvz_trajectory::{Compile, CompileOptions};
        let horizon = rvz_search::times::rounds_total(3);
        let opts = ContactOptions::with_horizon(horizon);
        let arenas: Vec<_> = (0..4)
            .map(|i| {
                let angle = std::f64::consts::TAU * i as f64 / 4.0;
                ProgramSoA::from_program(
                    &rvz_model::RobotAttributes::reference()
                        .with_speed(0.5 + 0.2 * i as f64)
                        .frame_warp(UniversalSearch, Vec2::from_polar(1.0, angle))
                        .compile(&CompileOptions::to_horizon(horizon))
                        .unwrap(),
                )
            })
            .collect();
        // Deliberately unsorted: the sweep must map ladder rows back to
        // the caller's radius order.
        let radii = [0.2, 0.05, 0.5];
        let mut scratch = crate::EngineScratch::new();
        let sweep = pairwise_sweep_soa(&arenas, &radii, &opts, &mut scratch);
        assert_eq!(sweep.len(), radii.len());
        let mut contacts = 0;
        for (r, &radius) in radii.iter().enumerate() {
            let single = pairwise_meetings_soa(&arenas, radius, &opts, &mut scratch);
            for i in 0..arenas.len() {
                for j in (i + 1)..arenas.len() {
                    assert_eq!(
                        sweep[r][i][j].is_some(),
                        single[i][j].is_some(),
                        "radius {radius}, pair ({i}, {j})"
                    );
                    if let (Some(ts), Some(tp)) = (sweep[r][i][j], single[i][j]) {
                        contacts += 1;
                        assert!(
                            (ts - tp).abs() < 1e-6 * (1.0 + tp),
                            "radius {radius}, pair ({i}, {j}): {ts} vs {tp}"
                        );
                    }
                }
            }
        }
        assert!(contacts > 0, "the grid must exercise the contact branch");
    }

    #[test]
    fn batch_soa_matches_per_pair_kernel_and_prefilters_far_partners() {
        use rvz_search::UniversalSearch;
        use rvz_trajectory::{Compile, CompileOptions};
        let horizon = rvz_search::times::rounds_total(3);
        let opts = ContactOptions::with_horizon(horizon);
        let reference = ProgramSoA::from_program(
            &UniversalSearch
                .compile(&CompileOptions::to_horizon(horizon))
                .unwrap(),
        );
        // Two reachable partners and one parked far outside every round
        // envelope (the prefilter must disprove it without a kernel run).
        let mut partners: Vec<ProgramSoA> = (0..2)
            .map(|i| {
                ProgramSoA::from_program(
                    &rvz_model::RobotAttributes::reference()
                        .with_speed(0.6 + 0.3 * i as f64)
                        .frame_warp(UniversalSearch, Vec2::new(0.5 + i as f64, 0.5))
                        .compile(&CompileOptions::to_horizon(horizon))
                        .unwrap(),
                )
            })
            .collect();
        partners.push(ProgramSoA::from_program(
            &crate::Stationary::new(Vec2::new(1e6, 1e6))
                .compile(&CompileOptions::to_horizon(horizon))
                .unwrap(),
        ));
        let mut scratch = crate::EngineScratch::new();
        let batch = first_contact_batch_soa(&reference, &partners, 0.2, &opts, &mut scratch);
        assert_eq!(batch.len(), partners.len());
        for (k, partner) in partners.iter().enumerate() {
            let per_pair = try_first_contact_soa(&reference, partner, 0.2, &opts, &mut scratch)
                .expect("covered");
            let batched = batch[k].as_ref().expect("covered");
            assert_eq!(
                batched.classification(),
                per_pair.classification(),
                "partner {k}"
            );
            if let (Some(tb), Some(tp)) = (batched.contact_time(), per_pair.contact_time()) {
                assert!(
                    (tb - tp).abs() < 1e-9 * (1.0 + tp),
                    "partner {k}: {tb} vs {tp}"
                );
            }
        }
        // The parked partner is a Horizon disproof with a faithful
        // (probed, not envelope-gap) observed distance.
        match batch[2].as_ref().unwrap() {
            SimOutcome::Horizon { min_distance, .. } => {
                assert!(*min_distance > 1e5, "observed {min_distance}");
            }
            other => panic!("parked partner met the reference? {other:?}"),
        }

        // A radius sweep reuses the same tables and stays consistent
        // with the single-radius batch on every cell.
        let radii = [0.1, 0.2, 0.4];
        let sweep = sweep_contacts_soa(&reference, &partners, &radii, &opts, &mut scratch);
        assert_eq!(sweep.len(), radii.len());
        for (r, &radius) in radii.iter().enumerate() {
            let single =
                first_contact_batch_soa(&reference, &partners, radius, &opts, &mut scratch);
            for k in 0..partners.len() {
                assert_eq!(
                    sweep[r][k].as_ref().map(SimOutcome::classification),
                    single[k].as_ref().map(SimOutcome::classification),
                    "radius {radius}, partner {k}"
                );
            }
        }
    }

    #[test]
    fn batch_soa_refuses_truncated_partners_individually() {
        use rvz_trajectory::{Compile, CompileOptions, PathBuilder};
        let horizon = 50.0;
        let opts = ContactOptions::with_horizon(horizon);
        let reference = ProgramSoA::from_program(
            &crate::Stationary::new(Vec2::ZERO)
                .compile(&CompileOptions::to_horizon(horizon))
                .unwrap(),
        );
        let covered = ProgramSoA::from_program(
            &PathBuilder::at(Vec2::new(5.0, 0.0))
                .line_to(Vec2::ZERO)
                .build()
                .compile(&CompileOptions::to_horizon(horizon))
                .unwrap(),
        );
        // Truncated: compiled only to t = 3, asked about t ≤ 50, and the
        // contact would happen after the covered span ends.
        let truncated = ProgramSoA::from_program(
            &PathBuilder::at(Vec2::new(40.0, 0.0))
                .line_to(Vec2::ZERO)
                .wait(100.0)
                .build()
                .compile(&CompileOptions::to_horizon(3.0))
                .unwrap(),
        );
        let mut scratch = crate::EngineScratch::new();
        let batch =
            first_contact_batch_soa(&reference, &[covered, truncated], 1.0, &opts, &mut scratch);
        assert!(batch[0].is_some(), "covered partner must resolve");
        assert_eq!(batch[1], None, "truncated partner must refuse");
    }

    #[test]
    #[should_panic(expected = "must cover the horizon")]
    fn program_gathering_rejects_uncovered_programs() {
        use rvz_search::UniversalSearch;
        use rvz_trajectory::{Compile, CompileOptions};
        let horizon = rvz_search::times::rounds_total(4);
        let truncated: Vec<_> = (0..2)
            .map(|i| {
                rvz_model::RobotAttributes::reference()
                    .frame_warp(UniversalSearch, Vec2::new(i as f64, 2.0))
                    .compile(&CompileOptions::to_horizon(horizon).max_pieces(64))
                    .unwrap()
            })
            .collect();
        let _ = first_simultaneous_gathering_programs(
            &truncated,
            0.1,
            &ContactOptions::with_horizon(horizon),
            &mut crate::EngineScratch::new(),
        );
    }

    #[test]
    #[should_panic(expected = "at least two robots")]
    fn homogeneous_single_robot_rejected() {
        let robots = [approach(Vec2::UNIT_X, 1.0)];
        let _ = pairwise_meetings_homogeneous(&robots, 1.0, &ContactOptions::default());
    }

    #[test]
    #[should_panic(expected = "at least two robots")]
    fn single_robot_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let robots: Vec<&dyn MonotoneDyn> = vec![&a];
        let _ = first_simultaneous_gathering(&robots, 1.0, &ContactOptions::default());
    }
}
