//! Per-query engine telemetry: which path answered, how hard it worked.
//!
//! Every engine entry point records one [`EngineTelemetry`] at query
//! end: into the thread-local [`last`] slot (the serve slow-query log
//! reads it to explain an individual request) and into the global
//! `rvz-obs` counters (`rvz_engine_queries_total{path=…}`,
//! `rvz_engine_steps_total{path=…}`, the envelope/prune/step-choice
//! totals and `rvz_engine_outcomes_total{outcome=…}`) that `/metrics`
//! exposes.
//!
//! Recording is observation-only and allocation-free: the telemetry
//! struct is `Copy`, the counter handles are cached `&'static`
//! references, and nothing here feeds back into engine control flow —
//! outcomes are bit-identical with recording on, off, or disabled via
//! the global kill switch (the allocation gate in `tests/alloc_gate.rs`
//! runs with recording live).

use crate::engine::{EngineStats, SimOutcome};
use rvz_obs::{counter, Counter};
use std::cell::Cell;

/// Which engine answered a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePath {
    /// The conservative-advancement fallback over random-access probes.
    Generic,
    /// The monotone-cursor engine with swept-envelope pruning.
    Cursor,
    /// The compiled engine over fully lowered (eager) programs.
    CompiledEager,
    /// The compiled engine with at least one streaming (lazy) view.
    CompiledLazy,
    /// The lane kernel over structure-of-arrays arenas
    /// (`rvz_sim::kernel`), including the many-vs-many batch entry
    /// points.
    CompiledSoA,
}

impl EnginePath {
    /// The stable label used in metrics and the slow-query log.
    pub fn label(self) -> &'static str {
        match self {
            EnginePath::Generic => "generic",
            EnginePath::Cursor => "cursor",
            EnginePath::CompiledEager => "compiled-eager",
            EnginePath::CompiledLazy => "compiled-lazy",
            EnginePath::CompiledSoA => "compiled-soa",
        }
    }
}

/// One query's work profile, as recorded at query end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// The engine path that answered.
    pub path: EnginePath,
    /// The outcome classification (`"contact"`, `"horizon"`,
    /// `"step-budget"`, `"deadline"`), or `"refused"` when a truncated
    /// program could not answer.
    pub outcome: &'static str,
    /// Advancement steps used.
    pub steps: u64,
    /// Envelope queries issued by the pruning layer.
    pub envelope_queries: u64,
    /// Intervals skipped on an envelope separation certificate.
    pub pruned_intervals: u64,
    /// Steps advanced by an exact analytic root (affine quadratic or
    /// cosine law).
    pub analytic_steps: u64,
    /// Steps advanced by the conservative / piece-boundary certificate.
    pub conservative_steps: u64,
    /// Lane-kernel chunks evaluated (zero on scalar paths).
    pub lane_chunks: u64,
    /// Whole intervals certified or localized by lane chunks.
    pub lane_intervals: u64,
}

thread_local! {
    static LAST: Cell<Option<EngineTelemetry>> = const { Cell::new(None) };
}

/// The calling thread's most recently recorded query telemetry.
pub fn last() -> Option<EngineTelemetry> {
    LAST.with(|l| l.get())
}

/// Clears the thread's [`last`] slot (per-request bookkeeping: a cache
/// hit must not inherit the previous miss's engine profile).
pub fn clear_last() {
    LAST.with(|l| l.set(None));
}

/// Per-path `(queries, steps)` counters, one macro call site per path
/// so each handle caches independently.
fn path_counters(path: EnginePath) -> (&'static Counter, &'static Counter) {
    match path {
        EnginePath::Generic => (
            counter!("rvz_engine_queries_total", "path" => "generic"),
            counter!("rvz_engine_steps_total", "path" => "generic"),
        ),
        EnginePath::Cursor => (
            counter!("rvz_engine_queries_total", "path" => "cursor"),
            counter!("rvz_engine_steps_total", "path" => "cursor"),
        ),
        EnginePath::CompiledEager => (
            counter!("rvz_engine_queries_total", "path" => "compiled-eager"),
            counter!("rvz_engine_steps_total", "path" => "compiled-eager"),
        ),
        EnginePath::CompiledLazy => (
            counter!("rvz_engine_queries_total", "path" => "compiled-lazy"),
            counter!("rvz_engine_steps_total", "path" => "compiled-lazy"),
        ),
        EnginePath::CompiledSoA => (
            counter!("rvz_engine_queries_total", "path" => "compiled-soa"),
            counter!("rvz_engine_steps_total", "path" => "compiled-soa"),
        ),
    }
}

/// Kernel-vs-scalar dispatch counters: which implementation a compiled
/// query was answered by (`soa` = the lane kernel, `scalar` = the
/// per-piece ladder). A lane-kernel query that *contains* scalar
/// fallback intervals (circular pieces) still counts once as `soa` —
/// dispatch is per query, lane utilization is the
/// `rvz_engine_kernel_lanes_active` counter.
fn dispatch_counter(soa: bool) -> &'static Counter {
    if soa {
        counter!("rvz_engine_kernel_dispatch_total", "kernel" => "soa")
    } else {
        counter!("rvz_engine_kernel_dispatch_total", "kernel" => "scalar")
    }
}

/// The outcome counter for a classification label.
fn outcome_counter(outcome: &str) -> &'static Counter {
    match outcome {
        "contact" => counter!("rvz_engine_outcomes_total", "outcome" => "contact"),
        "horizon" => counter!("rvz_engine_outcomes_total", "outcome" => "horizon"),
        "step-budget" => counter!("rvz_engine_outcomes_total", "outcome" => "step-budget"),
        "deadline" => counter!("rvz_engine_outcomes_total", "outcome" => "deadline"),
        _ => counter!("rvz_engine_outcomes_total", "outcome" => "refused"),
    }
}

/// Records one finished query (engine-internal; every entry point calls
/// this exactly once per query).
pub(crate) fn record(path: EnginePath, outcome: Option<&SimOutcome>, stats: EngineStats) {
    let outcome_label = outcome.map_or("refused", SimOutcome::classification);
    let steps = outcome.map_or(0, SimOutcome::steps);
    let telemetry = EngineTelemetry {
        path,
        outcome: outcome_label,
        steps,
        envelope_queries: stats.envelope_queries,
        pruned_intervals: stats.pruned_intervals,
        analytic_steps: stats.analytic_steps,
        conservative_steps: stats.conservative_steps,
        lane_chunks: stats.lane_chunks,
        lane_intervals: stats.lane_intervals,
    };
    LAST.with(|l| l.set(Some(telemetry)));
    if !rvz_obs::enabled() {
        return;
    }
    let (queries, steps_counter) = path_counters(path);
    queries.inc();
    steps_counter.add(steps);
    outcome_counter(outcome_label).inc();
    counter!("rvz_engine_envelope_queries_total").add(stats.envelope_queries);
    counter!("rvz_engine_pruned_intervals_total").add(stats.pruned_intervals);
    counter!("rvz_engine_steps_analytic_total").add(stats.analytic_steps);
    counter!("rvz_engine_steps_conservative_total").add(stats.conservative_steps);
    match path {
        EnginePath::CompiledEager | EnginePath::CompiledLazy => {
            dispatch_counter(false).inc();
        }
        EnginePath::CompiledSoA => {
            dispatch_counter(true).inc();
            counter!("rvz_engine_kernel_chunks_total").add(stats.lane_chunks);
            counter!("rvz_engine_kernel_lanes_active").add(stats.lane_intervals);
        }
        EnginePath::Generic | EnginePath::Cursor => {}
    }
}

/// Touches every engine metric family so `/metrics` lists them all
/// before the first query (CI greps family names on a fresh scrape).
pub fn preregister_metrics() {
    for path in [
        EnginePath::Generic,
        EnginePath::Cursor,
        EnginePath::CompiledEager,
        EnginePath::CompiledLazy,
        EnginePath::CompiledSoA,
    ] {
        let _ = path_counters(path);
    }
    for outcome in ["contact", "horizon", "step-budget", "deadline", "refused"] {
        let _ = outcome_counter(outcome);
    }
    let _ = dispatch_counter(false);
    let _ = dispatch_counter(true);
    let _ = counter!("rvz_engine_envelope_queries_total");
    let _ = counter!("rvz_engine_pruned_intervals_total");
    let _ = counter!("rvz_engine_steps_analytic_total");
    let _ = counter!("rvz_engine_steps_conservative_total");
    let _ = counter!("rvz_engine_kernel_chunks_total");
    let _ = counter!("rvz_engine_kernel_lanes_active");
    let _ = counter!("rvz_engine_compile_ns_total");
}

/// Records compile/lowering wall-clock attributed to engine queries
/// (the serve and sweep layers time their compile calls and report
/// here).
pub fn record_compile_ns(ns: u64) {
    counter!("rvz_engine_compile_ns_total").add(ns);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{first_contact, ContactOptions, Stationary};
    use rvz_geometry::Vec2;

    #[test]
    fn queries_stamp_the_thread_local_slot() {
        clear_last();
        assert_eq!(last(), None);
        let a = Stationary::new(Vec2::ZERO);
        let b = Stationary::new(Vec2::new(10.0, 0.0));
        let out = first_contact(&a, &b, 1.0, &ContactOptions::default());
        let t = last().expect("query recorded telemetry");
        assert_eq!(t.path, EnginePath::Cursor);
        assert_eq!(t.outcome, out.classification());
        assert_eq!(t.steps, out.steps());
        clear_last();
        assert_eq!(last(), None);
    }

    #[test]
    fn path_labels_are_stable() {
        assert_eq!(EnginePath::Generic.label(), "generic");
        assert_eq!(EnginePath::Cursor.label(), "cursor");
        assert_eq!(EnginePath::CompiledEager.label(), "compiled-eager");
        assert_eq!(EnginePath::CompiledLazy.label(), "compiled-lazy");
        assert_eq!(EnginePath::CompiledSoA.label(), "compiled-soa");
    }
}
