//! # rvz-sim
//!
//! Continuous-time simulation of the paper's model: two point robots
//! follow [`Trajectory`](rvz_trajectory::Trajectory) values and the
//! simulator finds the *first* instant their distance drops to the
//! visibility radius `r` — the moment rendezvous (or target discovery)
//! happens.
//!
//! ## Why conservative advancement
//!
//! The model is continuous; fixed-step sampling can step over a brief
//! contact. The engine instead uses **conservative advancement**: if the
//! robots are `D > r` apart and their relative speed is at most `s`
//! (the sum of the trajectories' declared speed bounds), then no contact
//! can occur within the next `(D − r)/s` time units, so the simulator
//! jumps that far in one step. This
//!
//! * never misses a contact (soundness follows from the speed-bound
//!   invariant of the `Trajectory` trait), and
//! * takes time proportional to the number of *near approaches*, not the
//!   number of trajectory segments — which is what makes simulating
//!   Algorithm 7's Θ(4ⁿ)-segment rounds tractable together with the
//!   closed-form random access from `rvz-search`/`rvz-core`.
//!
//! ## The monotone-cursor fast path
//!
//! [`first_contact`] additionally exploits the trajectories'
//! *piecewise structure* through
//! [`MonotoneTrajectory`](rvz_trajectory::MonotoneTrajectory) cursors:
//! position queries at non-decreasing times cost amortized O(1), and
//! whenever both robots are on straight legs or waits the within-piece
//! first contact is solved in closed form (a quadratic in `t`) rather
//! than by conservative inching — eliminating the ulp-floor crawl on
//! grazing configurations. The original random-access loop survives as
//! [`first_contact_generic`] for exotic `Trajectory` impls and as the
//! reference the fast path is equivalence-tested against.
//!
//! Contact is declared when `D ≤ r + tolerance`; the reported time is
//! early by at most `tolerance / s` relative to the exact `D = r`
//! crossing, and every report carries the achieved distance so callers
//! can judge the slack. A dense-sampling [`verify`] oracle cross-checks
//! the engine in the test suites.
//!
//! ## Example
//!
//! ```
//! use rvz_sim::{simulate_search, ContactOptions, SimOutcome};
//! use rvz_model::SearchInstance;
//! use rvz_search::UniversalSearch;
//! use rvz_geometry::Vec2;
//!
//! let inst = SearchInstance::new(Vec2::new(0.0, 0.9), 0.05).unwrap();
//! let outcome = simulate_search(UniversalSearch, &inst, &ContactOptions::default());
//! assert!(matches!(outcome, SimOutcome::Contact { .. }));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod batch;
pub mod compiled;
pub mod engine;
pub mod kernel;
pub mod multi;
pub mod runners;
pub mod stationary;
pub mod telemetry;
pub mod trace;
pub mod verify;

pub use batch::{
    compile_rendezvous_partner, run_rendezvous_batch, simulate_rendezvous_by_ref,
    simulate_search_by_ref, try_simulate_rendezvous_compiled,
};
pub use compiled::{first_contact_programs, try_first_contact_programs, EngineScratch};
pub use engine::{
    first_contact, first_contact_cursors, first_contact_cursors_instrumented, first_contact_dyn,
    first_contact_generic, Budget, ContactOptions, EngineStats, SimOutcome,
};
pub use kernel::{first_contact_soa, sweep_first_contact_soa, try_first_contact_soa, KERNEL_LANES};
pub use multi::{
    first_contact_batch_soa, first_simultaneous_gathering,
    first_simultaneous_gathering_homogeneous, first_simultaneous_gathering_programs,
    pairwise_meetings, pairwise_meetings_homogeneous, pairwise_meetings_programs,
    pairwise_meetings_soa, pairwise_sweep_soa, sweep_contacts_soa, SWEEP_WINDOWS,
};
pub use runners::{simulate_rendezvous, simulate_search};
pub use stationary::Stationary;
pub use telemetry::{EnginePath, EngineTelemetry};
pub use trace::DistanceTrace;
pub use verify::first_contact_brute;
