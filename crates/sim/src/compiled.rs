//! The monomorphic `CompiledProgram × CompiledProgram` engine.
//!
//! The cursor engine ([`crate::first_contact_cursors`]) is generic over
//! [`Cursor`](rvz_trajectory::Cursor) implementations and pays for that
//! generality per probe: frame-warp matrix products, schedule round
//! arithmetic, and (on the heterogeneous swarm path) virtual dispatch
//! through `Box<dyn Cursor>`. This module runs the *same certificate
//! ladder* on two flat [`CompiledProgram`](rvz_trajectory::CompiledProgram)
//! arenas instead:
//!
//! * a probe is an index bump plus one fused multiply-add (the warp and
//!   clock arithmetic were baked into the pieces at lowering time);
//! * envelope pruning queries the programs' **baked** bounding-box
//!   trees — `O(log n)` branchless min/max unions, one square root per
//!   envelope pair, purely functional, zero allocation (the cursor
//!   path's `Path` tree is built lazily per cursor);
//! * pruning windows are **seeded from the compiled round marks**, so
//!   the first look-ahead already spans a schedule round instead of
//!   galloping up from the leaf scale;
//! * the whole query runs without a single heap allocation — enforced
//!   by a counting-allocator test gate (`tests/alloc_gate.rs`).
//!
//! ## Program views
//!
//! The engine is generic over [`ProgramView`]: the eager
//! [`CompiledProgram`](rvz_trajectory::CompiledProgram) (baked envelope
//! tree, zero work per query beyond the ladder itself) and the
//! streaming [`LazyProgram`](rvz_trajectory::LazyProgram) (pieces
//! materialize on demand, so the lowering cost is proportional to the
//! time the query actually examines) run through the same ladder.
//! Views carrying certified approximate pieces fold their error bound
//! into the contact threshold — see
//! [`try_first_contact_programs`] for the soundness argument.
//!
//! ## Partial programs
//!
//! Lowering is budgeted (`Θ(4ᵏ)` segments per schedule round), so a
//! program may cover only a prefix `[0, end_time]` of the query horizon.
//! [`try_first_contact_programs`] resolves every query it can answer
//! within the covered span (a contact before the truncation point, or a
//! horizon that fits) and reports `None` — *never a wrong answer* —
//! when the query needs uncovered time; callers fall back to the cursor
//! path. [`first_contact_programs`] is the asserting variant for fully
//! covered programs.
//!
//! Equivalence with the cursor engine (identical classifications,
//! contact times within the shared declaration slack) is enforced by
//! `tests/engine_equivalence.rs` over a seeded Latin hypercube.

use crate::engine::{
    circular_pair_law, piece_gap_lower_bound, ContactOptions, EngineStats, SimOutcome,
};
use rvz_geometry::Vec2;
use rvz_trajectory::{Motion, ProgramView};

/// Reusable per-worker workspace for the compiled engine.
///
/// Holds the multi-robot position/index buffers and the last query's
/// pruning-layer counters. One scratch per thread, reused across a
/// whole batch: after the first query warms the buffers, subsequent
/// queries perform **zero** heap allocations (test-gated).
#[derive(Debug, Clone, Default)]
pub struct EngineScratch {
    /// Pruning-layer work counters of the most recent query.
    pub(crate) stats: EngineStats,
    /// Swarm position buffer (gathering queries).
    positions: Vec<Vec2>,
    /// Swarm piece-index buffer (gathering queries).
    indices: Vec<usize>,
}

impl EngineScratch {
    /// A fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        EngineScratch::default()
    }

    /// The pruning-layer counters of the most recent pair query.
    pub fn last_stats(&self) -> EngineStats {
        self.stats
    }

    /// Swarm buffers sized for `n` robots, reused across calls.
    pub(crate) fn swarm_buffers(&mut self, n: usize) -> (&mut Vec<Vec2>, &mut Vec<usize>) {
        self.positions.clear();
        self.positions.resize(n, Vec2::ZERO);
        self.indices.clear();
        self.indices.resize(n, 0);
        (&mut self.positions, &mut self.indices)
    }
}

/// First contact between two fully covered compiled programs.
///
/// # Panics
///
/// Panics when either program does not cover `opts.horizon` (use
/// [`try_first_contact_programs`] for budget-truncated programs), and on
/// invalid options/radius as in [`crate::first_contact`].
pub fn first_contact_programs<A: ProgramView + ?Sized, B: ProgramView + ?Sized>(
    a: &A,
    b: &B,
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> SimOutcome {
    assert!(
        a.covers(opts.horizon) && b.covers(opts.horizon),
        "programs must cover the horizon {} (covered: {} / {})",
        opts.horizon,
        a.covered_end(),
        b.covered_end()
    );
    try_first_contact_programs(a, b, radius, opts, scratch)
        .expect("fully covered programs always resolve")
}

/// First contact between two program views, tolerating truncated
/// coverage.
///
/// Generic over [`ProgramView`], so it accepts any mix of eager
/// [`CompiledProgram`](rvz_trajectory::CompiledProgram)s and streaming
/// [`LazyProgram`](rvz_trajectory::LazyProgram)s — the latter
/// materialize pieces only as far as the query actually advances.
///
/// Returns `Some` when the query resolves within the covered span — a
/// contact (or the horizon) no later than both programs' covered end —
/// and `None` when the engine would need uncovered time; the caller
/// then falls back to the cursor path. A `None` is a *refusal*, never
/// an approximation: every returned outcome is exactly what the fully
/// compiled run would produce.
///
/// ## Certified approximate pieces
///
/// When a view carries certified approximate pieces
/// ([`ProgramView::approx_eps`] > 0), the contact threshold is inflated
/// by `εₐ + ε_b`: every probe sits within that sum of the true pair
/// distance, so a **contact** verdict certifies a true contact at
/// tolerance `tolerance + 2(εₐ + ε_b)`, and a **horizon** verdict
/// certifies that the true trajectories never came within
/// `radius + tolerance` (the inflation absorbs the approximation error
/// in the conservative direction for disproofs). Envelope pruning stays
/// sound because approximate pieces expand their envelopes by their own
/// `ε` at lowering time.
///
/// # Panics
///
/// On invalid options or radius, as in [`crate::first_contact`].
pub fn try_first_contact_programs<A: ProgramView + ?Sized, B: ProgramView + ?Sized>(
    a: &A,
    b: &B,
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Option<SimOutcome> {
    let path = if a.is_streaming() || b.is_streaming() {
        crate::telemetry::EnginePath::CompiledLazy
    } else {
        crate::telemetry::EnginePath::CompiledEager
    };
    let out = try_first_contact_programs_impl(a, b, radius, opts, scratch);
    crate::telemetry::record(path, out.as_ref(), scratch.stats);
    out
}

/// The compiled ladder proper (telemetry recorded by the public wrapper
/// above).
fn try_first_contact_programs_impl<A: ProgramView + ?Sized, B: ProgramView + ?Sized>(
    a: &A,
    b: &B,
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Option<SimOutcome> {
    opts.validate();
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite, got {radius}"
    );
    let rel_speed = a.speed_bound() + b.speed_bound();
    assert!(
        rel_speed.is_finite(),
        "speed bounds must be finite, got {rel_speed}"
    );
    let approx = a.approx_eps() + b.approx_eps();
    assert!(
        approx >= 0.0 && approx.is_finite(),
        "approx bounds must be finite and >= 0, got {approx}"
    );
    let threshold = radius + opts.tolerance + approx;
    if !a.covers(0.0) || !b.covers(0.0) {
        // A view may fail to cover even t = 0 (a lazy program whose
        // source refuses immediately): refuse before the first probe.
        scratch.stats = EngineStats::default();
        return None;
    }

    let mut ia = 0_usize;
    let mut ib = 0_usize;
    let mut t = 0.0_f64;
    let mut min_distance = f64::INFINITY;
    let mut min_distance_time = 0.0;
    let mut steps = 0_u64;
    let mut stats = EngineStats::default();
    let mut window = 0.0_f64;
    let mut cooldown = 0_u32;
    let mut miss_streak = 0_u32;

    let outcome = loop {
        let pa = a.probe_from(&mut ia, t);
        let pb = b.probe_from(&mut ib, t);
        let d = pa.position.distance(pb.position);
        debug_assert!(
            d.is_finite(),
            "compiled program produced a non-finite position at t={t}"
        );
        if d < min_distance {
            min_distance = d;
            min_distance_time = t;
        }
        if d <= threshold {
            break SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
        }
        if t >= opts.horizon {
            break SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        }
        steps += 1;
        if steps > opts.max_steps {
            break SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            };
        }
        if let Some(budget) = &opts.budget {
            if budget.fires_at(steps) {
                break SimOutcome::Deadline {
                    time: t,
                    min_distance,
                    steps,
                };
            }
        }

        // The certificate ladder, identical to the cursor engine's.
        let conservative = if rel_speed > 0.0 {
            (d - radius) / rel_speed
        } else {
            f64::INFINITY
        };
        let mut exact_root = false;
        let step = match (pa.motion, pb.motion) {
            (Motion::Affine { velocity: va }, Motion::Affine { velocity: vb }) => {
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                let q0 = pb.position - pa.position;
                let dv = vb - va;
                let a2 = dv.norm_squared();
                let b2 = q0.dot(dv);
                let c2 = q0.norm_squared() - threshold * threshold;
                let mut jump = f64::NAN;
                if a2 > 0.0 && b2 < 0.0 {
                    let disc = b2 * b2 - a2 * c2;
                    if disc >= 0.0 {
                        let root = c2 / (-b2 + disc.sqrt());
                        if root <= ub {
                            jump = root;
                            exact_root = true;
                        }
                    }
                    if !exact_root {
                        let vertex = -b2 / a2;
                        if vertex < ub {
                            let dmin = (q0 + dv * vertex).norm();
                            if dmin < min_distance {
                                min_distance = dmin;
                                min_distance_time = t + vertex;
                            }
                        }
                    }
                }
                if exact_root {
                    jump
                } else {
                    ub.max(conservative)
                }
            }
            (ma, mb) => {
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                if let Some(law) = circular_pair_law(&pa, &pb, ma, mb) {
                    match law.first_crossing(threshold * threshold, ub) {
                        Some(du) => {
                            exact_root = true;
                            du
                        }
                        None => {
                            if law.p - law.q.abs() < min_distance * min_distance * (1.0 - 1e-12) {
                                if let Some((dmin, smin)) = law.minimum_within(ub) {
                                    if dmin < min_distance {
                                        min_distance = dmin;
                                        min_distance_time = t + smin;
                                    }
                                }
                            }
                            ub.max(conservative)
                        }
                    }
                } else if piece_gap_lower_bound(&pa, &pb, ma, mb, ub) > threshold {
                    ub.max(conservative)
                } else if conservative.is_finite() {
                    conservative
                } else {
                    break SimOutcome::Horizon {
                        min_distance,
                        min_distance_time,
                        steps,
                    };
                }
            }
        };
        if exact_root {
            stats.analytic_steps += 1;
        } else {
            stats.conservative_steps += 1;
        }
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        let base = step.max(floor);
        let mut t_next = t + base;

        // Envelope pruning on the baked trees, windows seeded from the
        // compiled round marks: the first look-ahead spans to the next
        // schedule boundary instead of galloping up from leaf scale.
        if opts.prune && !exact_root && t_next < opts.horizon {
            if cooldown > 0 {
                cooldown -= 1;
            } else {
                let mut advanced = false;
                let mut w = window.max(4.0 * base);
                if window == 0.0 {
                    let mark = match (a.next_mark_after(t_next), b.next_mark_after(t_next)) {
                        (Some(ma), Some(mb)) => Some(ma.max(mb)),
                        (m, None) | (None, m) => m,
                    };
                    if let Some(m) = mark {
                        w = w.max(m - t_next);
                    }
                }
                loop {
                    let span = w.min(opts.horizon - t_next);
                    if span <= 2.0 * base {
                        break;
                    }
                    stats.envelope_queries += 2;
                    let ea = a.envelope_box(t_next, t_next + span);
                    let eb = b.envelope_box(t_next, t_next + span);
                    if ea.gap(&eb) > threshold {
                        stats.pruned_intervals += 1;
                        t_next += span;
                        advanced = true;
                        if t_next >= opts.horizon {
                            break;
                        }
                        w *= 2.0;
                    } else {
                        w *= 0.5;
                        break;
                    }
                }
                window = w;
                if advanced {
                    miss_streak = 0;
                } else {
                    miss_streak = (miss_streak + 1).min(3);
                    cooldown = 1 << miss_streak;
                }
            }
        }
        t = t_next.min(opts.horizon);
        if !a.covers(t) || !b.covers(t) {
            // The query needs uncovered time: refuse rather than guess.
            // (Lazy views materialize pieces inside `covers` before
            // answering, so a `true` here also warms the next probe.)
            scratch.stats = stats;
            return None;
        }
    };
    scratch.stats = stats;
    Some(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{first_contact, first_contact_cursors_instrumented};
    use crate::Stationary;
    use rvz_search::UniversalSearch;
    use rvz_trajectory::{
        Compile, CompileOptions, CompiledProgram, MonotoneTrajectory, PathBuilder,
    };

    fn compile<T: Compile + ?Sized>(t: &T, horizon: f64) -> CompiledProgram {
        t.compile(&CompileOptions::to_horizon(horizon)).unwrap()
    }

    #[test]
    fn head_on_paths_match_cursor_engine() {
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .build();
        let b = PathBuilder::at(Vec2::new(10.0, 0.0))
            .line_to(Vec2::ZERO)
            .build();
        let opts = ContactOptions::default();
        let mut scratch = EngineScratch::new();
        let out = first_contact_programs(
            &compile(&a, opts.horizon),
            &compile(&b, opts.horizon),
            1.0,
            &opts,
            &mut scratch,
        );
        let t = out.contact_time().expect("contact");
        assert!((t - 4.5).abs() < 1e-6, "t = {t}");
        assert!(out.steps() <= 3);
    }

    #[test]
    fn universal_twins_disprove_on_baked_trees() {
        let horizon = rvz_search::times::rounds_total(4);
        let a = UniversalSearch;
        let b = rvz_model::RobotAttributes::reference()
            .frame_warp(UniversalSearch, Vec2::new(0.0, 2.0));
        let pa = compile(&a, horizon);
        let pb = compile(&b, horizon);
        assert!(pa.covers(horizon) && pb.covers(horizon));
        let opts = ContactOptions::with_horizon(horizon);
        let mut scratch = EngineScratch::new();
        let out = first_contact_programs(&pa, &pb, 0.1, &opts, &mut scratch);
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                assert!((min_distance - 2.0).abs() < 1e-9, "min {min_distance}");
            }
            other => panic!("twins met: {other:?}"),
        }
        assert!(
            scratch.last_stats().pruned_intervals > 0,
            "no pruning fired"
        );
        // Classification matches the cursor engine.
        let (cursor_out, _) =
            first_contact_cursors_instrumented(&mut a.cursor(), &mut b.cursor(), 0.1, &opts);
        assert_eq!(out.classification(), cursor_out.classification());
        assert!(
            out.steps() <= cursor_out.steps() * 2 + 16,
            "compiled engine stepped wildly more: {} vs {}",
            out.steps(),
            cursor_out.steps()
        );
    }

    #[test]
    fn partial_programs_resolve_early_contacts_and_refuse_late_ones() {
        // Contact at t = 4.5 — resolvable on a program truncated at 6.
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .build();
        let b = Stationary::new(Vec2::new(5.5, 0.0));
        let opts = ContactOptions::with_horizon(50.0);
        let truncated = a.compile(&CompileOptions::to_horizon(6.0)).unwrap();
        assert!(!truncated.covers(opts.horizon));
        let target = compile(&b, opts.horizon);
        let mut scratch = EngineScratch::new();
        let resolved = try_first_contact_programs(&truncated, &target, 1.0, &opts, &mut scratch)
            .expect("contact happens inside the covered span");
        assert!((resolved.contact_time().unwrap() - 4.5).abs() < 1e-6);
        assert_eq!(
            resolved,
            first_contact(&a, &b, 1.0, &opts),
            "partial resolution must equal the full cursor run"
        );

        // A far target forces the engine past the truncation: refusal.
        let far = compile(&Stationary::new(Vec2::new(100.0, 0.0)), opts.horizon);
        assert_eq!(
            try_first_contact_programs(&truncated, &far, 1.0, &opts, &mut scratch),
            None
        );
    }

    #[test]
    fn rest_programs_terminate_immediately() {
        let a = compile(&Stationary::new(Vec2::ZERO), 10.0);
        let b = compile(&Stationary::new(Vec2::new(3.0, 0.0)), 10.0);
        let mut scratch = EngineScratch::new();
        let out = first_contact_programs(&a, &b, 1.0, &ContactOptions::default(), &mut scratch);
        assert!(matches!(out, SimOutcome::Horizon { steps: 1, .. }));
    }

    #[test]
    #[should_panic(expected = "must cover the horizon")]
    fn asserting_entry_rejects_uncovered_programs() {
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .wait(100.0)
            .build();
        let truncated = a.compile(&CompileOptions::to_horizon(5.0)).unwrap();
        let b = Stationary::new(Vec2::new(50.0, 0.0))
            .compile(&CompileOptions::to_horizon(5.0))
            .unwrap();
        let _ = first_contact_programs(
            &truncated,
            &b,
            1.0,
            &ContactOptions::with_horizon(50.0),
            &mut EngineScratch::new(),
        );
    }
}
