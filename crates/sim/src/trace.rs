//! Distance-over-time traces and a terminal plot.
//!
//! The examples and benches use traces to *show* what the theorems
//! assert: the inter-robot distance of an infeasible pair is pinned, a
//! feasible pair's distance dips below `r`, and Algorithm 7's phase
//! structure is visible as plateaus.

use rvz_trajectory::Trajectory;

/// A sampled distance profile between two trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceTrace {
    times: Vec<f64>,
    distances: Vec<f64>,
}

impl DistanceTrace {
    /// Samples `|a(t) − b(t)|` at `samples` evenly spaced times in
    /// `[t0, t1]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ t0 < t1` and `samples ≥ 2`.
    pub fn sample<A, B>(a: &A, b: &B, t0: f64, t1: f64, samples: usize) -> Self
    where
        A: Trajectory + ?Sized,
        B: Trajectory + ?Sized,
    {
        assert!(t0 >= 0.0 && t1 > t0, "need 0 <= t0 < t1, got [{t0}, {t1}]");
        assert!(samples >= 2, "need at least 2 samples");
        let mut times = Vec::with_capacity(samples);
        let mut distances = Vec::with_capacity(samples);
        for i in 0..samples {
            let t = t0 + (t1 - t0) * (i as f64) / ((samples - 1) as f64);
            times.push(t);
            distances.push(a.position(t).distance(b.position(t)));
        }
        DistanceTrace { times, distances }
    }

    /// The sampled times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sampled distances.
    pub fn distances(&self) -> &[f64] {
        &self.distances
    }

    /// The smallest sampled distance and its time.
    pub fn min(&self) -> (f64, f64) {
        let mut best = (self.times[0], self.distances[0]);
        for (&t, &d) in self.times.iter().zip(&self.distances) {
            if d < best.1 {
                best = (t, d);
            }
        }
        best
    }

    /// The largest sampled distance.
    pub fn max_distance(&self) -> f64 {
        self.distances.iter().copied().fold(0.0, f64::max)
    }

    /// Renders an ASCII plot (distance on the vertical axis), with an
    /// optional horizontal marker line at `marker` (e.g. the visibility
    /// radius).
    pub fn ascii_plot(&self, width: usize, height: usize, marker: Option<f64>) -> String {
        assert!(width >= 2 && height >= 2, "plot must be at least 2x2");
        let max = self.max_distance().max(marker.unwrap_or(0.0)) * 1.05;
        if max == 0.0 {
            return "(all distances zero)".to_string();
        }
        let mut grid = vec![vec![' '; width]; height];
        // Marker line.
        if let Some(m) = marker {
            let row = ((1.0 - m / max) * (height - 1) as f64).round() as usize;
            if row < height {
                for cell in &mut grid[row] {
                    *cell = '-';
                }
            }
        }
        // Down-sample the trace into the grid columns. Indexing crosses
        // rows and columns, so a plain range loop is the clearest form.
        let n = self.distances.len();
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let idx = col * (n - 1) / (width - 1);
            let d = self.distances[idx];
            let row = ((1.0 - d / max) * (height - 1) as f64).round() as usize;
            if row < height {
                grid[row][col] = '*';
            }
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = max * (1.0 - i as f64 / (height - 1) as f64);
            out.push_str(&format!("{label:9.3} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>9} +{}\n{:>10} t ∈ [{:.1}, {:.1}]\n",
            "",
            "-".repeat(width),
            "",
            self.times[0],
            *self.times.last().unwrap()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_trajectory::FnTrajectory;

    fn mover() -> impl Trajectory {
        FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0)
    }

    fn sitter() -> impl Trajectory {
        FnTrajectory::new(|_| Vec2::new(5.0, 0.0), 0.0)
    }

    #[test]
    fn sampling_endpoints_and_monotonicity() {
        let tr = DistanceTrace::sample(&mover(), &sitter(), 0.0, 10.0, 11);
        assert_eq!(tr.times().len(), 11);
        assert_eq!(tr.distances()[0], 5.0);
        assert_eq!(*tr.distances().last().unwrap(), 5.0);
        let (tmin, dmin) = tr.min();
        assert_eq!(dmin, 0.0);
        assert_eq!(tmin, 5.0);
        assert_eq!(tr.max_distance(), 5.0);
    }

    #[test]
    fn plot_contains_marker_and_curve() {
        let tr = DistanceTrace::sample(&mover(), &sitter(), 0.0, 10.0, 50);
        let plot = tr.ascii_plot(40, 10, Some(1.0));
        assert!(plot.contains('*'));
        assert!(plot.contains('-'));
        assert!(plot.contains("t ∈"));
    }

    #[test]
    #[should_panic(expected = "need 0 <= t0 < t1")]
    fn invalid_range_rejected() {
        let _ = DistanceTrace::sample(&mover(), &sitter(), 5.0, 5.0, 10);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn too_few_samples_rejected() {
        let _ = DistanceTrace::sample(&mover(), &sitter(), 0.0, 1.0, 1);
    }
}
