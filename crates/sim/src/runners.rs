//! High-level drivers: search and rendezvous simulations from model
//! instances.

use crate::engine::{first_contact, ContactOptions, SimOutcome};
use crate::stationary::Stationary;
use rvz_model::{RendezvousInstance, SearchInstance};
use rvz_trajectory::{FrameWarp, MonotoneTrajectory};

/// Simulates the Section 2 search problem: a robot at the origin runs
/// `algorithm`; a stationary target sits at `instance.target()`.
///
/// # Example
///
/// ```
/// use rvz_sim::{simulate_search, ContactOptions};
/// use rvz_search::UniversalSearch;
/// use rvz_model::SearchInstance;
/// use rvz_geometry::Vec2;
///
/// let inst = SearchInstance::new(Vec2::new(0.6, 0.6), 0.05).unwrap();
/// let out = simulate_search(UniversalSearch, &inst, &ContactOptions::default());
/// assert!(out.is_contact());
/// ```
pub fn simulate_search<T: MonotoneTrajectory>(
    algorithm: T,
    instance: &SearchInstance,
    opts: &ContactOptions,
) -> SimOutcome {
    let target = Stationary::new(instance.target());
    first_contact(&algorithm, &target, instance.visibility(), opts)
}

/// Simulates the rendezvous problem: the reference robot runs
/// `algorithm` from the origin; robot `R'` runs the *same* algorithm
/// through its own frame (Lemma 4, generalized with the `v·τ` distance
/// unit) starting at `instance.offset()`.
///
/// # Example
///
/// ```
/// use rvz_sim::{simulate_rendezvous, ContactOptions};
/// use rvz_search::UniversalSearch;
/// use rvz_model::{RendezvousInstance, RobotAttributes};
/// use rvz_geometry::Vec2;
///
/// // Different speeds break symmetry: Algorithm 4 rendezvous succeeds.
/// let attrs = RobotAttributes::reference().with_speed(0.5);
/// let inst = RendezvousInstance::new(Vec2::new(0.0, 0.7), 0.05, attrs).unwrap();
/// let out = simulate_rendezvous(UniversalSearch, &inst, &ContactOptions::default());
/// assert!(out.is_contact());
/// ```
pub fn simulate_rendezvous<T: MonotoneTrajectory + Clone>(
    algorithm: T,
    instance: &RendezvousInstance,
    opts: &ContactOptions,
) -> SimOutcome {
    let reference = algorithm.clone();
    let partner: FrameWarp<T> = instance
        .attributes()
        .frame_warp(algorithm, instance.offset());
    first_contact(&reference, &partner, instance.visibility(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::Vec2;
    use rvz_model::{Chirality, RobotAttributes};
    use rvz_search::UniversalSearch;

    #[test]
    fn search_finds_visible_target_instantly() {
        let inst = SearchInstance::new(Vec2::new(0.01, 0.0), 1.0).unwrap();
        let out = simulate_search(UniversalSearch, &inst, &ContactOptions::default());
        assert_eq!(out.contact_time(), Some(0.0));
    }

    #[test]
    fn identical_twins_never_meet() {
        let twins = RobotAttributes::reference();
        let inst = RendezvousInstance::new(Vec2::new(0.0, 2.0), 0.1, twins).unwrap();
        let out = simulate_rendezvous(UniversalSearch, &inst, &ContactOptions::with_horizon(500.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                // Twins keep the exact initial offset forever.
                assert!((min_distance - 2.0).abs() < 1e-9);
            }
            other => panic!("twins met: {other:?}"),
        }
    }

    #[test]
    fn different_speeds_meet_under_algorithm4() {
        let attrs = RobotAttributes::reference().with_speed(0.5);
        let inst = RendezvousInstance::new(Vec2::new(0.3, 0.6), 0.05, attrs).unwrap();
        let out = simulate_rendezvous(UniversalSearch, &inst, &ContactOptions::default());
        assert!(out.is_contact(), "{out}");
    }

    #[test]
    fn mirror_twins_worst_case_placement_never_meets() {
        // v = τ = 1, χ = −1: place R' along the invariant direction.
        let phi = 1.2;
        let attrs = RobotAttributes::reference()
            .with_chirality(Chirality::Mirrored)
            .with_orientation(phi);
        let dir = Vec2::from_polar(1.0, phi / 2.0);
        let inst = RendezvousInstance::new(dir * 2.0, 0.1, attrs).unwrap();
        let out = simulate_rendezvous(UniversalSearch, &inst, &ContactOptions::with_horizon(300.0));
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                // The relative motion is orthogonal to the offset: distance
                // never drops below d.
                assert!(min_distance >= 2.0 - 1e-6, "min {min_distance}");
            }
            other => panic!("mirror twins met: {other:?}"),
        }
    }
}
