//! The lane kernel: the compiled certificate ladder over
//! structure-of-arrays arenas, evaluating up to [`KERNEL_LANES`] merged
//! affine intervals per inner-loop pass.
//!
//! ## What is lane-parallel and what stays scalar
//!
//! The scalar ladder (`crate::compiled`) advances one merged piece
//! interval per step: probe both arenas, try the exact affine root,
//! otherwise jump to the next piece boundary and maybe gallop the
//! envelope-pruning window. On piece-dense schedules (the Θ(4ᵏ)
//! segments of a search round) the per-interval *overhead* — probe
//! reconstruction, branchy certificate selection — dominates the
//! handful of flops each interval actually needs.
//!
//! The kernel keeps the ladder's outer structure and replaces the
//! boundary-limited stepping with a **chunk chain**: it gathers the
//! next [`KERNEL_LANES`] merged intervals from the SoA arrays into
//! fixed lanes and minimizes each lane's relative-distance quadratic
//! **branch-free** (`u* = clamp(−b/a, 0, L)`, one fused min per lane).
//! An affine×affine lane anchors at the pieces' positions and its
//! clamped vertex is the *exact* interval minimum. A lane with a
//! circular side anchors that side at the **circle's static center**
//! and widens the lane's threshold by the circle radius (`pad`): the
//! quadratic then yields a certified *lower bound* on the pair
//! distance — `|Δanchor(u)| − pad ≤ |Δposition(u)|` — which coincides
//! with the scalar ladder's `piece_gap_lower_bound` on every pairing
//! that has no closed-form cosine law. A padded lane whose bound stays
//! above both the threshold and the running minimum is certified clear
//! without a single trig call; a lane that cannot be certified that
//! way is **refined in place** with the *identical* scalar
//! certificates (entry probes, cosine law, interior minima), so
//! inconclusive circular intervals stream through the chain instead of
//! bouncing back through the outer loop. Chunks chain up to
//! `MAX_CHAIN_CHUNKS` chunks per ladder iteration, so dense schedule runs
//! are certified at memory bandwidth instead of one boundary per
//! iteration. Only a genuine contact candidate — an affine vertex or a
//! padded bound inside the threshold, an exact cosine-law crossing, or
//! an entry probe already in contact — hands its interval entry back
//! to the scalar ladder, which re-derives the endgame with the exact
//! same arithmetic the scalar path would have used. The autovectorizer
//! turns the lane loop into SIMD on its own — measured via the two-arm
//! (`-C target-cpu=native` vs baseline) bench smoke in `ci.sh`, not
//! assumed.
//!
//! **Envelope rejection stays scalar.** A pruning probe is two
//! `O(log n)` descents of the baked box trees and a gallop/cooldown
//! state machine — data-dependent, branchy, and already amortized over
//! whole schedule rounds. Vectorizing it would force tree layouts the
//! scalar paths cannot share and would win nothing: pruning fires a few
//! times per query, lanes fire per interval. The kernel therefore runs
//! the *identical* pruning machinery after every clean chunk, seeded
//! from the same round marks.
//!
//! ## Fallback rules
//!
//! * A circular lane whose padded bound cannot disprove the interval
//!   (the pair may touch the circle band, or the bound dips below the
//!   tracked minimum distance) is refined inline with the scalar
//!   cosine-law certificates; only contact candidates leave the chain.
//! * Conservative jumps that outrun the boundary (`(d − r)/s` beyond
//!   the current piece) skip the chain — the scalar jump already
//!   clears more time than the lanes would certify.
//! * Truncated coverage refuses exactly like the scalar ladder
//!   (`None`, never a guess), and every outcome folds `approx_eps`
//!   into its threshold the same way.
//!
//! Outcomes are classification-identical to the scalar ladder with
//! contact times within the engines' shared declaration slack (the
//! kernel reaches an interval at its exact `t0` while the scalar ladder
//! arrives via accumulated `t + Δ` sums, so times differ by ulps);
//! `tests/engine_equivalence.rs` and `tests/differential_fuzz.rs` gate
//! both, and the SoA arena itself is gated **bit-for-bit** against the
//! eager program under the scalar ladder.

use crate::compiled::EngineScratch;
use crate::engine::{
    circular_pair_law, piece_gap_lower_bound, ContactOptions, EngineStats, SimOutcome,
};
use rvz_geometry::Vec2;
use rvz_trajectory::soa::AFFINE;
use rvz_trajectory::{Motion, Probe, ProgramSoA, ProgramView};

/// Merged intervals evaluated per chunk scan. Eight f64 lanes = two
/// AVX2 vectors (or four NEON) per column — wide enough to amortize
/// the gather, narrow enough that a hit lane wastes little work.
pub const KERNEL_LANES: usize = 8;

/// Upper bound on consecutive all-clear chunks certified per ladder
/// iteration before control returns to the outer loop. Chaining
/// amortizes the outer ladder's probe/certificate overhead over up to
/// `MAX_CHAIN_CHUNKS × KERNEL_LANES` intervals; the cap keeps envelope
/// pruning (which can disprove whole schedule rounds in one tree
/// query) in the loop on long quiet stretches.
const MAX_CHAIN_CHUNKS: usize = 8;

/// First contact between two SoA arenas on the lane kernel.
///
/// # Panics
///
/// Panics when either arena does not cover `opts.horizon`; use
/// [`try_first_contact_soa`] for truncated arenas.
pub fn first_contact_soa(
    a: &ProgramSoA,
    b: &ProgramSoA,
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> SimOutcome {
    assert!(
        a.covers(opts.horizon) && b.covers(opts.horizon),
        "arenas must cover the horizon {} (covered: {} / {})",
        opts.horizon,
        a.covered_end(),
        b.covered_end()
    );
    try_first_contact_soa(a, b, radius, opts, scratch).expect("fully covered arenas always resolve")
}

/// First contact between two SoA arenas, tolerating truncated coverage:
/// the lane-kernel twin of
/// [`try_first_contact_programs`](crate::try_first_contact_programs),
/// with the same refusal contract (`None` when the query needs
/// uncovered time, never a wrong answer) and the same threshold
/// inflation for certified approximate pieces.
///
/// # Panics
///
/// On invalid options or radius, as in [`crate::first_contact`].
pub fn try_first_contact_soa(
    a: &ProgramSoA,
    b: &ProgramSoA,
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Option<SimOutcome> {
    let out = try_first_contact_soa_impl(a, b, radius, opts, scratch);
    crate::telemetry::record(
        crate::telemetry::EnginePath::CompiledSoA,
        out.as_ref(),
        scratch.stats,
    );
    out
}

/// One gathered chunk of merged intervals (fixed arrays so the math
/// loop is branch-free and autovectorizable; unused lanes are poisoned
/// to never register a hit).
struct Chunk {
    /// Interval entry times.
    entry: [f64; KERNEL_LANES],
    /// Relative anchor at entry (positions for affine sides, static
    /// centers for circular sides).
    qx: [f64; KERNEL_LANES],
    qy: [f64; KERNEL_LANES],
    /// Relative anchor velocity over the interval.
    dvx: [f64; KERNEL_LANES],
    dvy: [f64; KERNEL_LANES],
    /// Interval length.
    len: [f64; KERNEL_LANES],
    /// Sum of the sides' circle radii: the anchor-to-position slack,
    /// zero on affine×affine lanes (whose minima are exact).
    pad: [f64; KERNEL_LANES],
    /// Piece indices backing each lane (the arena length denotes the
    /// permanent rest), so inline refinement can reconstruct the exact
    /// scalar probes without re-walking the index.
    ja: [usize; KERNEL_LANES],
    jb: [usize; KERNEL_LANES],
    /// Lanes actually filled.
    n: usize,
    /// Time the chunk certifies up to (end of the last filled lane).
    end: f64,
}

impl Chunk {
    fn poisoned() -> Chunk {
        Chunk {
            entry: [0.0; KERNEL_LANES],
            // Poison: a huge offset keeps every unused lane's minimum
            // far above any finite threshold.
            qx: [1e300; KERNEL_LANES],
            qy: [0.0; KERNEL_LANES],
            dvx: [0.0; KERNEL_LANES],
            dvy: [0.0; KERNEL_LANES],
            len: [0.0; KERNEL_LANES],
            pad: [0.0; KERNEL_LANES],
            ja: [usize::MAX; KERNEL_LANES],
            jb: [usize::MAX; KERNEL_LANES],
            n: 0,
            end: 0.0,
        }
    }
}

/// What a chunk chain concluded.
enum Stream {
    /// Every merged interval up to `until` is certified clear or
    /// exactly refined; the ladder may land there directly.
    Advanced { until: f64 },
    /// The interval starting at `entry` is a contact candidate (or an
    /// entry probe already in contact): the scalar ladder re-derives
    /// the endgame from there with its exact arithmetic. Intervals
    /// before `entry` are fully accounted.
    Candidate { entry: f64 },
    /// Nothing could be gathered at the chain start (coverage end
    /// right away).
    Stalled,
}

/// Positional state of one arena during the gather walk.
struct Walk<'p> {
    soa: &'p ProgramSoA,
    /// Piece index hint (monotone).
    j: usize,
}

impl Walk<'_> {
    /// Advances to the piece containing `s` and returns its lane view
    /// `(anchor, anchor_vel, pad, end)`: the piece position and
    /// velocity for an affine piece (pad 0 — the anchor *is* the
    /// position), the static center and the circle radius for a
    /// circular piece (a permanent rest is an affine piece ending at
    /// the horizon). `None` on uncovered time.
    #[inline]
    fn lane_at(&mut self, s: f64, horizon: f64) -> Option<(Vec2, Vec2, f64, f64)> {
        let t1 = self.soa.t1s();
        let n = t1.len();
        while self.j < n && s >= t1[self.j] {
            self.j += 1;
        }
        if self.j == n {
            let rest = self.soa.rest()?;
            return Some((rest, Vec2::ZERO, 0.0, horizon));
        }
        let j = self.j;
        if self.soa.circ_column()[j] != AFFINE {
            let law = self.soa.circle(j);
            return Some((law.center, Vec2::ZERO, law.radius, t1[j]));
        }
        let u = s - self.soa.t0s()[j];
        let vel = Vec2::new(self.soa.vxs()[j], self.soa.vys()[j]);
        let pos = Vec2::new(
            self.soa.pos0xs()[j] + vel.x * u,
            self.soa.pos0ys()[j] + vel.y * u,
        );
        Some((pos, vel, 0.0, t1[j]))
    }
}

/// The exact scalar probe for a gathered lane side (`j` = arena length
/// denotes the permanent rest): bit-identical to the probe the scalar
/// ladder would reconstruct at `s`.
#[inline]
fn probe_lane(soa: &ProgramSoA, j: usize, s: f64) -> Probe {
    if j < soa.t1s().len() {
        soa.piece(j).probe_at(s)
    } else {
        Probe {
            position: soa
                .rest()
                .expect("gathered rest lane implies a rest position"),
            piece_end: f64::INFINITY,
            motion: Motion::Affine {
                velocity: Vec2::ZERO,
            },
        }
    }
}

/// Streams merged intervals from `start`, [`KERNEL_LANES`] at a time
/// for up to [`MAX_CHAIN_CHUNKS`] chunks: the branch-free anchor
/// quadratic certifies the easy lanes, and every lane it cannot
/// certify is refined in place with the scalar ladder's own
/// certificates (entry probe, cosine law, interior minimum, or the
/// gap bound the padded anchor quadratic already proved). Returns the
/// stream verdict plus the number of whole intervals accounted —
/// `best` accumulates the tightest exact affine minimum
/// `(distance², time)` and `min_distance` tracks the scalar running
/// minimum, both with the scalar update rules.
#[allow(clippy::too_many_arguments)]
fn chain_scan(
    a: &ProgramSoA,
    b: &ProgramSoA,
    ia: usize,
    ib: usize,
    start: f64,
    threshold: f64,
    thr2: f64,
    horizon: f64,
    min_distance: &mut f64,
    min_distance_time: &mut f64,
    best: &mut (f64, f64),
    stats: &mut EngineStats,
) -> (Stream, u64) {
    let mut wa = Walk { soa: a, j: ia };
    let mut wb = Walk { soa: b, j: ib };
    let mut s = start;
    let mut jumped = 0_u64;
    for _ in 0..MAX_CHAIN_CHUNKS {
        let mut c = Chunk::poisoned();
        while c.n < KERNEL_LANES && s < horizon {
            let Some((pa, va, ra, ea)) = wa.lane_at(s, horizon) else {
                break;
            };
            let Some((pb, vb, rb, eb)) = wb.lane_at(s, horizon) else {
                break;
            };
            let e = ea.min(eb).min(horizon);
            debug_assert!(e > s, "merged interval must advance: [{s}, {e}]");
            let k = c.n;
            c.entry[k] = s;
            c.qx[k] = pb.x - pa.x;
            c.qy[k] = pb.y - pa.y;
            c.dvx[k] = vb.x - va.x;
            c.dvy[k] = vb.y - va.y;
            c.len[k] = e - s;
            c.pad[k] = ra + rb;
            c.ja[k] = wa.j;
            c.jb[k] = wb.j;
            c.n = k + 1;
            c.end = e;
            s = e;
        }
        if c.n == 0 {
            return if jumped > 0 {
                (Stream::Advanced { until: s }, jumped)
            } else {
                (Stream::Stalled, jumped)
            };
        }
        stats.lane_chunks += 1;

        // The branch-free pass: exact minimum of |q + dv·u| over
        // u ∈ [0, L] per lane. `a2.max(TINY)` absorbs the
        // zero-relative-velocity case (then b2 = 0 and u* clamps to 0).
        // No lane reads another — the compiler vectorizes this loop;
        // the two-arm bench smoke measures that it did.
        const TINY: f64 = f64::MIN_POSITIVE;
        let mut m2 = [f64::INFINITY; KERNEL_LANES];
        let mut um = [0.0_f64; KERNEL_LANES];
        for k in 0..KERNEL_LANES {
            let a2 = c.dvx[k] * c.dvx[k] + c.dvy[k] * c.dvy[k];
            let b2 = c.qx[k] * c.dvx[k] + c.qy[k] * c.dvy[k];
            let u = (-b2 / a2.max(TINY)).clamp(0.0, c.len[k]);
            let mx = c.qx[k] + c.dvx[k] * u;
            let my = c.qy[k] + c.dvy[k] * u;
            m2[k] = mx * mx + my * my;
            um[k] = u;
        }

        for k in 0..c.n {
            stats.lane_intervals += 1;
            let entry = c.entry[k];
            if c.pad[k] == 0.0 {
                // Affine×affine: the clamped vertex is the exact
                // interval minimum — inside the threshold it is a
                // genuine contact candidate.
                if m2[k] <= thr2 {
                    return (Stream::Candidate { entry }, jumped);
                }
                if m2[k] < best.0 {
                    *best = (m2[k], entry + um[k]);
                }
                stats.analytic_steps += 1;
                jumped += 1;
                continue;
            }
            let ht = threshold + c.pad[k];
            let contact_possible = m2[k] <= ht * ht;
            if !contact_possible && m2[k].sqrt() - c.pad[k] >= *min_distance {
                // The padded bound clears the threshold *and* the
                // running minimum: the scalar ladder could neither find
                // a crossing here (its law minimum is ≥ this bound) nor
                // tighten its minimum — certified clear, no trig.
                stats.analytic_steps += 1;
                jumped += 1;
                continue;
            }
            // Inline refinement: the scalar ladder's certificates with
            // its exact arithmetic, evaluated at the interval entry.
            let pa = probe_lane(a, c.ja[k], entry);
            let pb = probe_lane(b, c.jb[k], entry);
            let d = pa.position.distance(pb.position);
            if d < *min_distance {
                *min_distance = d;
                *min_distance_time = entry;
            }
            if d <= threshold {
                return (Stream::Candidate { entry }, jumped);
            }
            match circular_pair_law(&pa, &pb, pa.motion, pb.motion) {
                Some(law) => {
                    if law.first_crossing(thr2, c.len[k]).is_some() {
                        return (Stream::Candidate { entry }, jumped);
                    }
                    if law.p - law.q.abs() < *min_distance * *min_distance * (1.0 - 1e-12) {
                        if let Some((dmin, smin)) = law.minimum_within(c.len[k]) {
                            if dmin < *min_distance {
                                *min_distance = dmin;
                                *min_distance_time = entry + smin;
                            }
                        }
                    }
                }
                None => {
                    // No closed form (unequal-rate circles, or a circle
                    // against a moving line). The padded anchor bound
                    // *is* the scalar `piece_gap_lower_bound` here:
                    // above the threshold the scalar ladder steps the
                    // interval on the entry probe alone; inside it, the
                    // scalar ladder must crawl conservatively.
                    if contact_possible {
                        return (Stream::Candidate { entry }, jumped);
                    }
                }
            }
            stats.conservative_steps += 1;
            jumped += 1;
        }
        s = c.end;
        if s >= horizon {
            break;
        }
    }
    (Stream::Advanced { until: s }, jumped)
}

/// The lane ladder proper (telemetry recorded by the public wrapper).
/// Structurally the scalar `try_first_contact_programs_impl` with the
/// boundary-limited affine step widened to a chunk scan.
fn try_first_contact_soa_impl(
    a: &ProgramSoA,
    b: &ProgramSoA,
    radius: f64,
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
) -> Option<SimOutcome> {
    opts.validate();
    assert!(
        radius > 0.0 && radius.is_finite(),
        "radius must be positive and finite, got {radius}"
    );
    let rel_speed = a.speed_bound() + b.speed_bound();
    assert!(
        rel_speed.is_finite(),
        "speed bounds must be finite, got {rel_speed}"
    );
    let approx = a.approx_eps() + b.approx_eps();
    assert!(
        approx >= 0.0 && approx.is_finite(),
        "approx bounds must be finite and >= 0, got {approx}"
    );
    let threshold = radius + opts.tolerance + approx;
    let thr2 = threshold * threshold;
    if !a.covers(0.0) || !b.covers(0.0) {
        scratch.stats = EngineStats::default();
        return None;
    }

    let mut ia = 0_usize;
    let mut ib = 0_usize;
    let mut t = 0.0_f64;
    let mut min_distance = f64::INFINITY;
    let mut min_distance_time = 0.0;
    // The tightest lane-certified minimum (distance², time): folded
    // into `min_distance` lazily, one sqrt per improvement.
    let mut best = (f64::INFINITY, 0.0_f64);
    let mut steps = 0_u64;
    let mut stats = EngineStats::default();
    let mut window = 0.0_f64;
    let mut cooldown = 0_u32;
    let mut miss_streak = 0_u32;

    let outcome = loop {
        let pa = ProgramView::probe_from(a, &mut ia, t);
        let pb = ProgramView::probe_from(b, &mut ib, t);
        let d = pa.position.distance(pb.position);
        debug_assert!(
            d.is_finite(),
            "SoA arena produced a non-finite position at t={t}"
        );
        if d < min_distance {
            min_distance = d;
            min_distance_time = t;
        }
        if best.0 < min_distance * min_distance {
            min_distance = best.0.sqrt();
            min_distance_time = best.1;
        }
        if d <= threshold {
            break SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
        }
        if t >= opts.horizon {
            break SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            };
        }
        steps += 1;
        if steps > opts.max_steps {
            break SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            };
        }
        if let Some(budget) = &opts.budget {
            if budget.fires_at(steps) {
                break SimOutcome::Deadline {
                    time: t,
                    min_distance,
                    steps,
                };
            }
        }

        let conservative = if rel_speed > 0.0 {
            (d - radius) / rel_speed
        } else {
            f64::INFINITY
        };
        let mut exact_root = false;
        let mut jumped = 0_u64;
        // Chains stream intervals linearly, so they only pay off where
        // envelope pruning cannot skip whole rounds: launch them when
        // pruning is in a miss/cooldown state (envelopes locally
        // overlap), or always when pruning is off.
        let chains_on = !opts.prune || cooldown > 0 || miss_streak > 0;
        // Chunk-chain launch point when this step is boundary-limited
        // (NaN otherwise): chains run after the scalar certificate for
        // the current interval, streaming from the next boundary.
        let mut chain_from = f64::NAN;
        let mut step = match (pa.motion, pb.motion) {
            (Motion::Affine { velocity: va }, Motion::Affine { velocity: vb }) => {
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                let q0 = pb.position - pa.position;
                let dv = vb - va;
                let a2 = dv.norm_squared();
                let b2 = q0.dot(dv);
                let c2 = q0.norm_squared() - thr2;
                let mut jump = f64::NAN;
                if a2 > 0.0 && b2 < 0.0 {
                    let disc = b2 * b2 - a2 * c2;
                    if disc >= 0.0 {
                        let root = c2 / (-b2 + disc.sqrt());
                        if root <= ub {
                            jump = root;
                            exact_root = true;
                        }
                    }
                    if !exact_root {
                        let vertex = -b2 / a2;
                        if vertex < ub {
                            let dmin = (q0 + dv * vertex).norm();
                            if dmin < min_distance {
                                min_distance = dmin;
                                min_distance_time = t + vertex;
                            }
                        }
                    }
                }
                if exact_root {
                    jump
                } else {
                    if chains_on && conservative <= ub && boundary < opts.horizon {
                        chain_from = boundary;
                    }
                    ub.max(conservative)
                }
            }
            (ma, mb) => {
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                if let Some(law) = circular_pair_law(&pa, &pb, ma, mb) {
                    match law.first_crossing(thr2, ub) {
                        Some(du) => {
                            exact_root = true;
                            du
                        }
                        None => {
                            if law.p - law.q.abs() < min_distance * min_distance * (1.0 - 1e-12) {
                                if let Some((dmin, smin)) = law.minimum_within(ub) {
                                    if dmin < min_distance {
                                        min_distance = dmin;
                                        min_distance_time = t + smin;
                                    }
                                }
                            }
                            if chains_on && conservative <= ub && boundary < opts.horizon {
                                chain_from = boundary;
                            }
                            ub.max(conservative)
                        }
                    }
                } else if piece_gap_lower_bound(&pa, &pb, ma, mb, ub) > threshold {
                    if chains_on && conservative <= ub && boundary < opts.horizon {
                        chain_from = boundary;
                    }
                    ub.max(conservative)
                } else if conservative.is_finite() {
                    conservative
                } else {
                    break SimOutcome::Horizon {
                        min_distance,
                        min_distance_time,
                        steps,
                    };
                }
            }
        };
        let mut lane_jumped = false;
        if chain_from.is_finite() {
            let (stream, chained) = chain_scan(
                a,
                b,
                ia,
                ib,
                chain_from,
                threshold,
                thr2,
                opts.horizon,
                &mut min_distance,
                &mut min_distance_time,
                &mut best,
                &mut stats,
            );
            jumped = chained;
            steps += chained;
            match stream {
                Stream::Candidate { entry } => {
                    lane_jumped = true;
                    step = entry - t;
                }
                Stream::Advanced { until } => {
                    lane_jumped = true;
                    step = (until - t).max(conservative);
                }
                Stream::Stalled => {}
            }
        }
        if exact_root {
            stats.analytic_steps += 1;
        } else {
            stats.conservative_steps += 1;
        }
        if steps > opts.max_steps {
            break SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            };
        }
        if let Some(budget) = &opts.budget {
            // Lane jumps can hop over an exact check-interval multiple;
            // fire whenever a chain crossed one.
            let every = budget.check_interval();
            if lane_jumped && (jumped >= every || steps % every < jumped) && budget.exhausted() {
                break SimOutcome::Deadline {
                    time: t,
                    min_distance,
                    steps,
                };
            }
        }
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        let base = step.max(floor);
        let mut t_next = t + base;

        // The scalar pruning machinery, verbatim: envelope rejection
        // stays scalar by design (see the module docs).
        if opts.prune && !exact_root && t_next < opts.horizon {
            if cooldown > 0 {
                cooldown -= 1;
            } else {
                let mut advanced = false;
                let mut w = window.max(4.0 * base);
                if window == 0.0 {
                    let mark = match (a.next_mark_after(t_next), b.next_mark_after(t_next)) {
                        (Some(ma), Some(mb)) => Some(ma.max(mb)),
                        (m, None) | (None, m) => m,
                    };
                    if let Some(m) = mark {
                        w = w.max(m - t_next);
                    }
                }
                loop {
                    let span = w.min(opts.horizon - t_next);
                    if span <= 2.0 * base {
                        break;
                    }
                    stats.envelope_queries += 2;
                    let ea = a.envelope_box_impl(t_next, t_next + span);
                    let eb = b.envelope_box_impl(t_next, t_next + span);
                    if ea.gap(&eb) > threshold {
                        stats.pruned_intervals += 1;
                        t_next += span;
                        advanced = true;
                        if t_next >= opts.horizon {
                            break;
                        }
                        w *= 2.0;
                    } else {
                        w *= 0.5;
                        break;
                    }
                }
                window = w;
                if advanced {
                    miss_streak = 0;
                } else {
                    miss_streak = (miss_streak + 1).min(3);
                    cooldown = 1 << miss_streak;
                }
            }
        }
        t = t_next.min(opts.horizon);
        if !a.covers(t) || !b.covers(t) {
            scratch.stats = stats;
            return None;
        }
    };
    scratch.stats = stats;
    Some(outcome)
}

/// Counter deltas between two cumulative [`EngineStats`] snapshots —
/// the per-radius share of a sweep ladder's work for telemetry.
fn stats_delta(now: &EngineStats, prev: &EngineStats) -> EngineStats {
    EngineStats {
        pruned_intervals: now.pruned_intervals - prev.pruned_intervals,
        envelope_queries: now.envelope_queries - prev.envelope_queries,
        analytic_steps: now.analytic_steps - prev.analytic_steps,
        conservative_steps: now.conservative_steps - prev.conservative_steps,
        lane_chunks: now.lane_chunks - prev.lane_chunks,
        lane_intervals: now.lane_intervals - prev.lane_intervals,
    }
}

/// Resolves a whole ascending radius grid against one pair in a
/// **single** ladder run: the ladder steps conservatively with respect
/// to the largest *unresolved* radius, so every certificate it takes is
/// sound for all smaller radii, and each threshold's first crossing is
/// recorded en route. First contact times are monotone in the radius
/// (`d(t)` is continuous), so once the largest threshold resolves at
/// `τ` the ladder simply keeps walking from `τ` with the next one —
/// per-cell classifications and contact times match per-radius
/// [`first_contact_soa`] runs up to the engines' shared declaration
/// slack. Interior dips below a *smaller* unresolved threshold cannot
/// be skipped: conservative jumps keep the distance above the active
/// radius, which is at least one grid step above every smaller
/// threshold.
///
/// `out` is cleared and filled with one outcome per radius, aligned
/// with `radii`. `Horizon`/`StepBudget`/`Deadline` terminations apply
/// to every still-unresolved radius (the shared minimum-distance
/// account is identical for all of them).
///
/// # Panics
///
/// When either arena does not cover `opts.horizon`, when `radii` is
/// empty or not ascending, or on invalid options/radii as in
/// [`crate::first_contact`].
pub fn sweep_first_contact_soa(
    a: &ProgramSoA,
    b: &ProgramSoA,
    radii: &[f64],
    opts: &ContactOptions,
    scratch: &mut EngineScratch,
    out: &mut Vec<SimOutcome>,
) {
    opts.validate();
    assert!(!radii.is_empty(), "need at least one radius");
    assert!(
        radii.iter().all(|r| r.is_finite() && *r > 0.0),
        "radii must be positive and finite, got {radii:?}"
    );
    assert!(
        radii.windows(2).all(|w| w[0] <= w[1]),
        "radii must be ascending, got {radii:?}"
    );
    assert!(
        a.covers(opts.horizon) && b.covers(opts.horizon),
        "arenas must cover the horizon {} (covered: {} / {})",
        opts.horizon,
        a.covered_end(),
        b.covered_end()
    );
    let rel_speed = a.speed_bound() + b.speed_bound();
    assert!(
        rel_speed.is_finite(),
        "speed bounds must be finite, got {rel_speed}"
    );
    let approx = a.approx_eps() + b.approx_eps();
    assert!(
        approx >= 0.0 && approx.is_finite(),
        "approx bounds must be finite and >= 0, got {approx}"
    );

    let mut slots: Vec<Option<SimOutcome>> = vec![None; radii.len()];
    let mut k = radii.len() - 1;
    let mut radius = radii[k];
    let mut threshold = radius + opts.tolerance + approx;
    let mut thr2 = threshold * threshold;

    let mut ia = 0_usize;
    let mut ib = 0_usize;
    let mut t = 0.0_f64;
    let mut min_distance = f64::INFINITY;
    let mut min_distance_time = 0.0;
    let mut best = (f64::INFINITY, 0.0_f64);
    let mut steps = 0_u64;
    let mut stats = EngineStats::default();
    let mut recorded = EngineStats::default();
    let mut window = 0.0_f64;
    let mut cooldown = 0_u32;
    let mut miss_streak = 0_u32;

    // `None` when every radius resolved by contact; `Some(outcome)`
    // terminates all still-unresolved radii at once.
    let terminal = 'run: loop {
        let pa = ProgramView::probe_from(a, &mut ia, t);
        let pb = ProgramView::probe_from(b, &mut ib, t);
        let d = pa.position.distance(pb.position);
        debug_assert!(
            d.is_finite(),
            "SoA arena produced a non-finite position at t={t}"
        );
        if d < min_distance {
            min_distance = d;
            min_distance_time = t;
        }
        if best.0 < min_distance * min_distance {
            min_distance = best.0.sqrt();
            min_distance_time = best.1;
        }
        while d <= threshold {
            let outcome = SimOutcome::Contact {
                time: t,
                distance: d,
                steps,
            };
            crate::telemetry::record(
                crate::telemetry::EnginePath::CompiledSoA,
                Some(&outcome),
                stats_delta(&stats, &recorded),
            );
            recorded = stats;
            slots[k] = Some(outcome);
            if k == 0 {
                break 'run None;
            }
            k -= 1;
            radius = radii[k];
            threshold = radius + opts.tolerance + approx;
            thr2 = threshold * threshold;
        }
        if t >= opts.horizon {
            break Some(SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            });
        }
        steps += 1;
        if steps > opts.max_steps {
            break Some(SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            });
        }
        if let Some(budget) = &opts.budget {
            if budget.fires_at(steps) {
                break Some(SimOutcome::Deadline {
                    time: t,
                    min_distance,
                    steps,
                });
            }
        }

        let conservative = if rel_speed > 0.0 {
            (d - radius) / rel_speed
        } else {
            f64::INFINITY
        };
        let mut exact_root = false;
        let mut jumped = 0_u64;
        let chains_on = !opts.prune || cooldown > 0 || miss_streak > 0;
        let mut chain_from = f64::NAN;
        let mut step = match (pa.motion, pb.motion) {
            (Motion::Affine { velocity: va }, Motion::Affine { velocity: vb }) => {
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                let q0 = pb.position - pa.position;
                let dv = vb - va;
                let a2 = dv.norm_squared();
                let b2 = q0.dot(dv);
                let c2 = q0.norm_squared() - thr2;
                let mut jump = f64::NAN;
                if a2 > 0.0 && b2 < 0.0 {
                    let disc = b2 * b2 - a2 * c2;
                    if disc >= 0.0 {
                        let root = c2 / (-b2 + disc.sqrt());
                        if root <= ub {
                            jump = root;
                            exact_root = true;
                        }
                    }
                    if !exact_root {
                        let vertex = -b2 / a2;
                        if vertex < ub {
                            let dmin = (q0 + dv * vertex).norm();
                            if dmin < min_distance {
                                min_distance = dmin;
                                min_distance_time = t + vertex;
                            }
                        }
                    }
                }
                if exact_root {
                    jump
                } else {
                    if chains_on && conservative <= ub && boundary < opts.horizon {
                        chain_from = boundary;
                    }
                    ub.max(conservative)
                }
            }
            (ma, mb) => {
                let boundary = pa.piece_end.min(pb.piece_end).min(opts.horizon);
                let ub = (boundary - t).max(0.0);
                if let Some(law) = circular_pair_law(&pa, &pb, ma, mb) {
                    match law.first_crossing(thr2, ub) {
                        Some(du) => {
                            exact_root = true;
                            du
                        }
                        None => {
                            if law.p - law.q.abs() < min_distance * min_distance * (1.0 - 1e-12) {
                                if let Some((dmin, smin)) = law.minimum_within(ub) {
                                    if dmin < min_distance {
                                        min_distance = dmin;
                                        min_distance_time = t + smin;
                                    }
                                }
                            }
                            if chains_on && conservative <= ub && boundary < opts.horizon {
                                chain_from = boundary;
                            }
                            ub.max(conservative)
                        }
                    }
                } else if piece_gap_lower_bound(&pa, &pb, ma, mb, ub) > threshold {
                    if chains_on && conservative <= ub && boundary < opts.horizon {
                        chain_from = boundary;
                    }
                    ub.max(conservative)
                } else if conservative.is_finite() {
                    conservative
                } else {
                    break Some(SimOutcome::Horizon {
                        min_distance,
                        min_distance_time,
                        steps,
                    });
                }
            }
        };
        let mut lane_jumped = false;
        if chain_from.is_finite() {
            let (stream, chained) = chain_scan(
                a,
                b,
                ia,
                ib,
                chain_from,
                threshold,
                thr2,
                opts.horizon,
                &mut min_distance,
                &mut min_distance_time,
                &mut best,
                &mut stats,
            );
            jumped = chained;
            steps += chained;
            match stream {
                Stream::Candidate { entry } => {
                    lane_jumped = true;
                    step = entry - t;
                }
                Stream::Advanced { until } => {
                    lane_jumped = true;
                    step = (until - t).max(conservative);
                }
                Stream::Stalled => {}
            }
        }
        if exact_root {
            stats.analytic_steps += 1;
        } else {
            stats.conservative_steps += 1;
        }
        if steps > opts.max_steps {
            break Some(SimOutcome::StepBudget {
                time: t,
                min_distance,
                steps: opts.max_steps,
            });
        }
        if let Some(budget) = &opts.budget {
            let every = budget.check_interval();
            if lane_jumped && (jumped >= every || steps % every < jumped) && budget.exhausted() {
                break Some(SimOutcome::Deadline {
                    time: t,
                    min_distance,
                    steps,
                });
            }
        }
        let floor = 4.0 * f64::EPSILON * (1.0 + t.abs());
        let base = step.max(floor);
        let mut t_next = t + base;
        if opts.prune && !exact_root && t_next < opts.horizon {
            if cooldown > 0 {
                cooldown -= 1;
            } else {
                let mut advanced = false;
                let mut w = window.max(4.0 * base);
                if window == 0.0 {
                    let mark = match (a.next_mark_after(t_next), b.next_mark_after(t_next)) {
                        (Some(ma), Some(mb)) => Some(ma.max(mb)),
                        (m, None) | (None, m) => m,
                    };
                    if let Some(m) = mark {
                        w = w.max(m - t_next);
                    }
                }
                loop {
                    let span = w.min(opts.horizon - t_next);
                    if span <= 2.0 * base {
                        break;
                    }
                    stats.envelope_queries += 2;
                    let ea = a.envelope_box_impl(t_next, t_next + span);
                    let eb = b.envelope_box_impl(t_next, t_next + span);
                    if ea.gap(&eb) > threshold {
                        stats.pruned_intervals += 1;
                        t_next += span;
                        advanced = true;
                        if t_next >= opts.horizon {
                            break;
                        }
                        w *= 2.0;
                    } else {
                        w *= 0.5;
                        break;
                    }
                }
                window = w;
                if advanced {
                    miss_streak = 0;
                } else {
                    miss_streak = (miss_streak + 1).min(3);
                    cooldown = 1 << miss_streak;
                }
            }
        }
        t = t_next.min(opts.horizon);
    };
    if let Some(terminal) = terminal {
        // One termination covers every unresolved radius: the shared
        // minimum account is identical for all of them. The first cell
        // carries the run's remaining counter deltas in telemetry.
        for slot in slots.iter_mut().take(k + 1) {
            crate::telemetry::record(
                crate::telemetry::EnginePath::CompiledSoA,
                Some(&terminal),
                stats_delta(&stats, &recorded),
            );
            recorded = stats;
            *slot = Some(terminal);
        }
    }
    scratch.stats = stats;
    out.clear();
    out.extend(
        slots
            .into_iter()
            .map(|s| s.expect("the sweep ladder resolves every radius")),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::{first_contact_programs, EngineScratch};
    use crate::Stationary;
    use rvz_search::UniversalSearch;
    use rvz_trajectory::{Compile, CompileOptions, PathBuilder, ProgramSoA};

    fn soa<T: Compile + ?Sized>(t: &T, horizon: f64) -> ProgramSoA {
        ProgramSoA::from_program(&t.compile(&CompileOptions::to_horizon(horizon)).unwrap())
    }

    #[test]
    fn head_on_paths_hit_like_the_scalar_ladder() {
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .build();
        let b = PathBuilder::at(Vec2::new(10.0, 0.0))
            .line_to(Vec2::ZERO)
            .build();
        let opts = ContactOptions::default();
        let mut scratch = EngineScratch::new();
        let out = first_contact_soa(
            &soa(&a, opts.horizon),
            &soa(&b, opts.horizon),
            1.0,
            &opts,
            &mut scratch,
        );
        let t = out.contact_time().expect("contact");
        assert!((t - 4.5).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn kernel_matches_scalar_on_schedule_pairs() {
        let horizon = rvz_search::times::rounds_total(4);
        let opts = ContactOptions::with_horizon(horizon);
        let reference = UniversalSearch;
        let cases: Vec<(f64, f64)> = vec![
            (0.35, 1.9),
            (0.8, 0.6),
            (1.7, 3.2),
            (2.5, 0.05),
            (0.05, 7.0),
        ];
        let mut scratch = EngineScratch::new();
        for (i, (speed, offset)) in cases.into_iter().enumerate() {
            let partner = rvz_model::RobotAttributes::reference()
                .with_speed(speed)
                .frame_warp(UniversalSearch, Vec2::new(offset, -offset * 0.5));
            let pa = reference
                .compile(&CompileOptions::to_horizon(horizon))
                .unwrap();
            let pb = partner
                .compile(&CompileOptions::to_horizon(horizon))
                .unwrap();
            let sa = ProgramSoA::from_program(&pa);
            let sb = ProgramSoA::from_program(&pb);
            let scalar = first_contact_programs(&pa, &pb, 0.2, &opts, &mut scratch);
            let kernel = first_contact_soa(&sa, &sb, 0.2, &opts, &mut scratch);
            assert_eq!(
                kernel.classification(),
                scalar.classification(),
                "case {i}: {kernel:?} vs {scalar:?}"
            );
            if let (Some(tk), Some(ts)) = (kernel.contact_time(), scalar.contact_time()) {
                assert!(
                    (tk - ts).abs() <= 1e-9 * (1.0 + ts.abs()) + 1e-9,
                    "case {i}: contact {tk} vs {ts}"
                );
            }
        }
    }

    #[test]
    fn twins_disprove_with_lane_chunks_and_pruning() {
        let horizon = rvz_search::times::rounds_total(4);
        let a = UniversalSearch;
        let b = rvz_model::RobotAttributes::reference()
            .frame_warp(UniversalSearch, Vec2::new(0.0, 2.0));
        let sa = soa(&a, horizon);
        let sb = soa(&b, horizon);
        let opts = ContactOptions::with_horizon(horizon);
        let mut scratch = EngineScratch::new();
        let out = first_contact_soa(&sa, &sb, 0.1, &opts, &mut scratch);
        match out {
            SimOutcome::Horizon { min_distance, .. } => {
                assert!((min_distance - 2.0).abs() < 1e-9, "min {min_distance}");
            }
            other => panic!("twins met: {other:?}"),
        }
        assert!(scratch.last_stats().pruned_intervals > 0, "no pruning");
    }

    #[test]
    fn kernel_refuses_on_truncated_coverage() {
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(10.0, 0.0))
            .wait(100.0)
            .build();
        let truncated =
            ProgramSoA::from_program(&a.compile(&CompileOptions::to_horizon(6.0)).unwrap());
        let far = soa(&Stationary::new(Vec2::new(100.0, 0.0)), 50.0);
        let mut scratch = EngineScratch::new();
        assert_eq!(
            try_first_contact_soa(
                &truncated,
                &far,
                1.0,
                &ContactOptions::with_horizon(50.0),
                &mut scratch
            ),
            None
        );
        // An early contact still resolves on the covered prefix.
        let near = soa(&Stationary::new(Vec2::new(5.5, 0.0)), 50.0);
        let resolved = try_first_contact_soa(
            &truncated,
            &near,
            1.0,
            &ContactOptions::with_horizon(50.0),
            &mut scratch,
        )
        .expect("contact inside the covered span");
        assert!((resolved.contact_time().unwrap() - 4.5).abs() < 1e-6);
    }

    #[test]
    fn deep_affine_runs_register_lane_work() {
        // A zig-zag shadowed by a parallel straight runner: the pair
        // stays persistently near (conservative jumps are short) while
        // the zig-zag's boundaries arrive densely, so every step is
        // boundary-limited and must go through chunk scans.
        let mut builder = PathBuilder::at(Vec2::ZERO);
        for i in 0..100 {
            let x = (i + 1) as f64;
            let y = if i % 2 == 0 { 0.2 } else { -0.2 };
            builder = builder.line_to(Vec2::new(x, y));
        }
        let zig = builder.build();
        let runner = PathBuilder::at(Vec2::new(0.0, 1.0))
            .line_to(Vec2::new(100.0, 1.0))
            .build();
        let horizon = 50.0;
        let sa = soa(&zig, horizon);
        let sb = soa(&runner, horizon);
        let mut opts = ContactOptions::with_horizon(horizon);
        opts.prune = false; // force the stepping path
        let mut scratch = EngineScratch::new();
        let out = first_contact_soa(&sa, &sb, 0.5, &opts, &mut scratch);
        assert!(matches!(out, SimOutcome::Horizon { .. }), "{out:?}");
        let stats = scratch.last_stats();
        assert!(stats.lane_chunks > 0, "no lane chunks ran: {stats:?}");
        assert!(
            stats.lane_intervals >= stats.lane_chunks,
            "inconsistent lane stats: {stats:?}"
        );
    }
}
