//! A trajectory that never moves — the stationary search target.

use rvz_geometry::Vec2;
use rvz_trajectory::monotone::{Cursor, MonotoneTrajectory, Probe};
use rvz_trajectory::Trajectory;

/// A point that stays at `position` forever.
///
/// Used as the target of Section 2's search problem and as the "virtual
/// target" of the equivalent-search reduction.
///
/// # Example
///
/// ```
/// use rvz_sim::Stationary;
/// use rvz_trajectory::Trajectory;
/// use rvz_geometry::Vec2;
///
/// let t = Stationary::new(Vec2::new(1.0, 2.0));
/// assert_eq!(t.position(0.0), t.position(1e9));
/// assert_eq!(t.speed_bound(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stationary {
    position: Vec2,
}

impl Stationary {
    /// Creates a stationary point.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not finite.
    pub fn new(position: Vec2) -> Self {
        assert!(position.is_finite(), "position must be finite");
        Stationary { position }
    }

    /// The fixed location.
    pub fn location(&self) -> Vec2 {
        self.position
    }
}

impl Trajectory for Stationary {
    fn position(&self, t: f64) -> Vec2 {
        debug_assert!(t >= 0.0 && !t.is_nan(), "position requires t >= 0, got {t}");
        self.position
    }

    fn speed_bound(&self) -> f64 {
        0.0
    }

    fn duration(&self) -> Option<f64> {
        Some(0.0)
    }
}

/// The trivial cursor of a [`Stationary`] target: one permanent
/// zero-velocity piece, letting the engine treat searches for a fixed
/// target fully analytically whenever the searcher is on a line or wait.
#[derive(Debug, Clone, Copy)]
pub struct StationaryCursor {
    position: Vec2,
}

impl Cursor for StationaryCursor {
    fn probe(&mut self, _t: f64) -> Probe {
        Probe::resting(self.position)
    }

    fn speed_bound(&self) -> f64 {
        0.0
    }

    fn envelope(&mut self, _t0: f64, _t1: f64) -> rvz_geometry::Disk {
        // The tightest possible certificate: a point, for any interval.
        rvz_geometry::Disk::point(self.position)
    }
}

impl MonotoneTrajectory for Stationary {
    type Cursor<'a> = StationaryCursor;

    fn cursor(&self) -> StationaryCursor {
        StationaryCursor {
            position: self.position,
        }
    }
}

/// Lowers to a rest-only program (zero pieces): the cheapest possible
/// compiled partner for search-style queries.
impl rvz_trajectory::Compile for Stationary {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_moves() {
        let s = Stationary::new(Vec2::new(-2.0, 7.0));
        assert_eq!(s.position(0.0), Vec2::new(-2.0, 7.0));
        assert_eq!(s.position(12345.0), Vec2::new(-2.0, 7.0));
        assert_eq!(s.location(), Vec2::new(-2.0, 7.0));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan() {
        let _ = Stationary::new(Vec2::new(f64::NAN, 0.0));
    }
}
