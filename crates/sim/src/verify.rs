//! Dense-sampling oracle for cross-checking the advancement engine.
//!
//! Fixed-step sampling is *unsound* (it can step over a contact) but it
//! is simple and independent; where it does find a contact, the sound
//! engine must have found one no later. The property tests use this
//! one-sided relationship.

use rvz_trajectory::Trajectory;

/// First sampled time with `|a(t) − b(t)| ≤ radius`, scanning
/// `t = 0, dt, 2dt, … ≤ horizon`.
///
/// # Panics
///
/// Panics unless `dt > 0`, `horizon ≥ 0` and `radius > 0`.
pub fn first_contact_brute<A, B>(a: &A, b: &B, radius: f64, horizon: f64, dt: f64) -> Option<f64>
where
    A: Trajectory + ?Sized,
    B: Trajectory + ?Sized,
{
    assert!(dt > 0.0 && dt.is_finite(), "dt must be positive, got {dt}");
    assert!(horizon >= 0.0, "horizon must be >= 0");
    assert!(radius > 0.0, "radius must be positive");
    let steps = (horizon / dt).ceil() as u64;
    for i in 0..=steps {
        let t = (i as f64 * dt).min(horizon);
        if a.position(t).distance(b.position(t)) <= radius {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{first_contact, ContactOptions};
    use rvz_geometry::Vec2;
    use rvz_trajectory::FnTrajectory;

    #[test]
    fn brute_agrees_with_engine_on_head_on() {
        let a = FnTrajectory::new(|t| Vec2::new(t, 0.0), 1.0);
        let b = FnTrajectory::new(|t| Vec2::new(10.0 - t, 0.0), 1.0);
        let brute = first_contact_brute(&a, &b, 1.0, 20.0, 1e-4).unwrap();
        let engine = first_contact(&a, &b, 1.0, &ContactOptions::default())
            .contact_time()
            .unwrap();
        assert!((brute - engine).abs() < 2e-4, "{brute} vs {engine}");
        // One-sided soundness: the engine is never later than brute force.
        assert!(engine <= brute + 1e-9);
    }

    #[test]
    fn brute_returns_none_when_no_contact() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let b = FnTrajectory::new(|_| Vec2::new(5.0, 0.0), 0.0);
        assert_eq!(first_contact_brute(&a, &b, 1.0, 10.0, 0.1), None);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let a = FnTrajectory::new(|_| Vec2::ZERO, 0.0);
        let _ = first_contact_brute(&a, &a, 1.0, 1.0, 0.0);
    }
}
