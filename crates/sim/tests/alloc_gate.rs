//! The zero-allocation gate on the engine's steady-state query paths.
//!
//! Registers a counting global allocator for this test binary and
//! proves that, after a warm-up query, the compiled fast path
//! ([`first_contact_programs`] and the program-swarm gathering loop),
//! the type-erased cursor path ([`first_contact_dyn`]'s scoped stack
//! cursors), and the SoA lane kernel ([`first_contact_soa`]) perform
//! **zero** heap allocations per query. A positive control (an explicit
//! allocation observed by the counter) guards against the vacuous pass
//! where the allocator silently failed to register.
//!
//! Single-threaded by construction: the counter is process-wide, so
//! this binary holds exactly these serial tests.

use rvz_geometry::Vec2;
use rvz_model::RobotAttributes;
use rvz_search::UniversalSearch;
use rvz_sim::{
    first_contact_dyn, first_contact_programs, first_contact_soa,
    first_simultaneous_gathering_programs, ContactOptions, EngineScratch,
};
use rvz_trajectory::{Compile, CompileOptions, CompiledProgram, MonotoneDyn, ProgramSoA};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers to `System`; the counter has no safety impact.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: Counting = Counting;

fn allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let value = f();
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

/// The counter is process-wide, and the libtest harness's main thread
/// may allocate concurrently (result channels, output buffers). A real
/// engine regression allocates on *every* run, so the minimum over a
/// few attempts is a sound zero-allocation detector that ignores
/// unrelated one-off noise.
fn min_allocs(mut f: impl FnMut()) -> u64 {
    (0..5)
        .map(|_| {
            let (_, n) = allocs(&mut f);
            n
        })
        .min()
        .expect("non-empty attempts")
}

fn swarm(n: usize, horizon: f64) -> Vec<CompiledProgram> {
    let copts = CompileOptions::to_horizon(horizon);
    (0..n)
        .map(|i| {
            let angle = std::f64::consts::TAU * i as f64 / n as f64;
            RobotAttributes::reference()
                .with_speed(0.5 + 0.15 * i as f64)
                .frame_warp(UniversalSearch, Vec2::from_polar(2.5, angle))
                .compile(&copts)
                .expect("covers the horizon")
        })
        .collect()
}

#[test]
fn compiled_queries_allocate_nothing_after_warmup() {
    // Positive control first: the counter must actually observe heap
    // traffic, or a zero below would be meaningless.
    let (_, control) = allocs(|| std::hint::black_box(vec![0_u8; 4096]));
    assert!(control > 0, "counting allocator is not registered");

    let horizon = rvz_search::times::rounds_total(3);
    let opts = ContactOptions::with_horizon(horizon);
    let programs = swarm(4, horizon);
    let mut scratch = EngineScratch::new();

    // Warm-up: first queries may lazily size scratch buffers.
    for i in 0..programs.len() {
        for j in (i + 1)..programs.len() {
            first_contact_programs(&programs[i], &programs[j], 0.1, &opts, &mut scratch);
        }
    }

    // The gate: a full pairwise pass, zero allocation calls.
    let during = min_allocs(|| {
        for i in 0..programs.len() {
            for j in (i + 1)..programs.len() {
                std::hint::black_box(first_contact_programs(
                    &programs[i],
                    &programs[j],
                    0.1,
                    &opts,
                    &mut scratch,
                ));
            }
        }
    });
    assert_eq!(during, 0, "compiled pair queries allocated {during} times");

    // Gathering reuses the scratch's swarm buffers after its warm-up.
    first_simultaneous_gathering_programs(&programs, 0.1, &opts, &mut scratch);
    let gather = min_allocs(|| {
        std::hint::black_box(first_simultaneous_gathering_programs(
            &programs,
            0.1,
            &opts,
            &mut scratch,
        ));
    });
    assert_eq!(gather, 0, "gathering allocated {gather} times after warmup");
}

#[test]
fn cursor_dyn_queries_allocate_nothing() {
    let (_, control) = allocs(|| std::hint::black_box(vec![0_u8; 4096]));
    assert!(control > 0, "counting allocator is not registered");

    let horizon = rvz_search::times::rounds_total(3);
    let opts = ContactOptions::with_horizon(horizon);
    let a = UniversalSearch;
    let b = RobotAttributes::reference()
        .with_speed(0.7)
        .frame_warp(UniversalSearch, Vec2::new(1.5, -0.5));
    let da: &dyn MonotoneDyn = &a;
    let db: &dyn MonotoneDyn = &b;

    first_contact_dyn(da, db, 0.1, &opts);
    let during = min_allocs(|| {
        std::hint::black_box(first_contact_dyn(da, db, 0.1, &opts));
    });
    assert_eq!(during, 0, "dyn cursor queries allocated {during} times");
}

#[test]
fn soa_kernel_queries_allocate_nothing_after_warmup() {
    let (_, control) = allocs(|| std::hint::black_box(vec![0_u8; 4096]));
    assert!(control > 0, "counting allocator is not registered");

    let horizon = rvz_search::times::rounds_total(3);
    let opts = ContactOptions::with_horizon(horizon);
    let arenas: Vec<ProgramSoA> = swarm(4, horizon)
        .iter()
        .map(ProgramSoA::from_program)
        .collect();
    let mut scratch = EngineScratch::new();

    for i in 0..arenas.len() {
        for j in (i + 1)..arenas.len() {
            first_contact_soa(&arenas[i], &arenas[j], 0.1, &opts, &mut scratch);
        }
    }
    let during = min_allocs(|| {
        for i in 0..arenas.len() {
            for j in (i + 1)..arenas.len() {
                std::hint::black_box(first_contact_soa(
                    &arenas[i],
                    &arenas[j],
                    0.1,
                    &opts,
                    &mut scratch,
                ));
            }
        }
    });
    assert_eq!(during, 0, "SoA kernel queries allocated {during} times");
}
