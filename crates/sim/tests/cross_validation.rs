//! Cross-validation of the three independent first-contact computations:
//!
//! 1. the conservative-advancement engine (`rvz-sim`),
//! 2. the closed-form analytic discovery oracle (`rvz-search`),
//! 3. dense brute-force sampling.
//!
//! Agreement of (1) and (2) on the search problem is the strongest
//! correctness evidence in the workspace: they share no code beyond the
//! schedule formulas.

use proptest::prelude::*;
use rvz_geometry::Vec2;
use rvz_model::SearchInstance;
use rvz_search::{first_discovery, UniversalSearch};
use rvz_sim::{first_contact, simulate_search, ContactOptions, SimOutcome};
use rvz_trajectory::PathBuilder;

#[test]
fn engine_matches_analytic_discovery_on_fixed_grid() {
    let targets = [
        Vec2::new(0.0, 0.8),
        Vec2::new(-0.5, 0.5),
        Vec2::new(0.7, 0.1),
        Vec2::new(-1.4, -0.9),
        Vec2::new(0.2, -1.9),
        Vec2::new(0.52, 0.0),
    ];
    for p in targets {
        for r in [0.2, 0.05, 0.01] {
            let inst = SearchInstance::new(p, r).unwrap();
            let analytic = first_discovery(&inst, 16).expect("analytic finds target");
            let opts = ContactOptions::with_horizon(analytic.time * 2.0 + 10.0)
                .tolerance(r * 1e-9);
            let out = simulate_search(UniversalSearch, &inst, &opts);
            let simulated = out.contact_time().unwrap_or_else(|| {
                panic!("engine missed contact for p={p}, r={r}: {out}")
            });
            // The engine declares at distance ≤ r + tol, so it can be
            // early by at most tol / speed; it can never be late.
            assert!(
                simulated <= analytic.time + 1e-6,
                "p={p} r={r}: engine late ({simulated} vs {})",
                analytic.time
            );
            assert!(
                analytic.time - simulated <= 1e-3 * (1.0 + analytic.time),
                "p={p} r={r}: engine too early ({simulated} vs {})",
                analytic.time
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random targets: analytic and engine agree.
    #[test]
    fn engine_matches_analytic_discovery_random(
        x in -2.0..2.0f64,
        y in -2.0..2.0f64,
        rexp in -7.0..-2.0f64,
    ) {
        let p = Vec2::new(x, y);
        prop_assume!(p.norm() > 1e-3);
        let r = rexp.exp2();
        prop_assume!(p.norm() > r);
        let inst = SearchInstance::new(p, r).unwrap();
        let analytic = first_discovery(&inst, 16).expect("found");
        let opts = ContactOptions::with_horizon(analytic.time + 10.0).tolerance(r * 1e-9);
        let out = simulate_search(UniversalSearch, &inst, &opts);
        let simulated = out.contact_time().expect("engine contact");
        prop_assert!(simulated <= analytic.time + 1e-6);
        prop_assert!(analytic.time - simulated <= 1e-3 * (1.0 + analytic.time));
    }

    /// The engine is never later than brute-force sampling on random
    /// piecewise paths (soundness property of conservative advancement).
    #[test]
    fn engine_never_later_than_brute_force(
        ax in -3.0..3.0f64, ay in -3.0..3.0f64,
        bx in -3.0..3.0f64, by in -3.0..3.0f64,
        cx in -3.0..3.0f64, cy in -3.0..3.0f64,
        offx in -4.0..4.0f64, offy in -4.0..4.0f64,
        radius in 0.05..0.8f64,
    ) {
        let a = PathBuilder::at(Vec2::ZERO)
            .line_to(Vec2::new(ax, ay))
            .line_to(Vec2::new(bx, by))
            .build();
        let b = PathBuilder::at(Vec2::new(offx, offy))
            .line_to(Vec2::new(offx + cx, offy + cy))
            .build();
        let horizon = a.duration().max(b.duration().max(1.0)) + 1.0;
        let brute = rvz_sim::first_contact_brute(&a, &b, radius, horizon, 1e-3);
        let engine = first_contact(&a, &b, radius, &ContactOptions::with_horizon(horizon));
        if let Some(bt) = brute {
            // Engine must have found a contact, no later than brute force.
            match engine {
                SimOutcome::Contact { time, .. } => prop_assert!(time <= bt + 1e-9),
                other => prop_assert!(false, "brute found {bt} but engine reported {other}"),
            }
        }
    }
}
