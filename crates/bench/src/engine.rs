//! The first-contact engine benchmark: seed engine vs. cursor fast path
//! vs. the compiled-program engine.
//!
//! One canonical set of cases is shared by the `first_contact_throughput`
//! bench binary (human-readable table) and the `rvz bench-engine`
//! subcommand (machine-readable `BENCH_engine.json`), so the perf
//! trajectory of the hottest loop in the workspace is tracked by one
//! artifact from PR to PR.
//!
//! Each case runs the *same* trajectory pair through
//! [`rvz_sim::first_contact_generic`] (the seed conservative-advancement
//! loop), through the cursor engine
//! ([`rvz_sim::first_contact_cursors`] over boxed
//! [`MonotoneDyn`] cursors), and — when the
//! pair lowers under the piece budget — through the monomorphic
//! compiled-program engine ([`rvz_sim::first_contact_programs`]),
//! recording wall time, advancement steps, lowering cost (eager
//! `compile_eager_ns` to the horizon vs streaming `compile_lazy_ns` to
//! the query's resolution depth, plus `pieces` and the certified
//! `approx_eps` for curved sources) and per-query allocation counts for
//! each. Recording steps and allocations alongside time is what makes a
//! speedup attributable: fewer queries (analytic jumps), cheaper
//! queries (flat arenas), or removed allocator traffic show up in
//! different columns.
//!
//! The **batch workloads** are the throughput acceptance metric: a
//! warm-cache batch (compile each scenario once, query it many times —
//! the `rvz serve` shape) and a swarm batch (compile `n` robots once,
//! run all `n(n−1)/2` pairwise queries — the `multi` shape). Both
//! amortize lowering exactly the way the production callers do.

use rvz_baselines::ArchimedeanSpiral;
use rvz_core::{completion_time, WaitAndSearch};
use rvz_geometry::Vec2;
use rvz_model::RobotAttributes;
use rvz_search::UniversalSearch;
use rvz_sim::{
    first_contact_cursors_instrumented, first_contact_generic, pairwise_meetings,
    pairwise_meetings_programs, simulate_rendezvous_by_ref, sweep_contacts_soa, ContactOptions,
    EngineScratch, EngineStats, SimOutcome, KERNEL_LANES,
};
use rvz_trajectory::{
    Compile, CompileOptions, CompiledProgram, MonotoneDyn, PathBuilder, ProgramSoA,
};
use std::time::Instant;

/// Default piece budget for per-case lowering attempts: generous enough
/// for the moderate-horizon cases. Cases whose horizons hold more
/// segments (the deep-round disproof) or whose sources are curved (the
/// spiral, lowered through certified chords) override it per case —
/// since the streaming-lowering PR every committed case produces a
/// compiled sample.
pub const CASE_PIECE_BUDGET: usize = 1 << 19;

/// One benchmark scenario: a trajectory pair plus engine options.
pub struct EngineCase {
    /// Stable machine-readable identifier.
    pub name: &'static str,
    /// What the case stresses.
    pub description: &'static str,
    /// Contact radius.
    pub radius: f64,
    /// Engine options.
    pub opts: ContactOptions,
    /// The two trajectories, behind the object-safe compile + cursor
    /// facade.
    pub a: Box<dyn Compile>,
    /// Second trajectory.
    pub b: Box<dyn Compile>,
    /// Piece budget for this case's lowering ([`CASE_PIECE_BUDGET`]
    /// unless the case needs more).
    pub piece_budget: usize,
    /// Certified-approximation tolerance for curved sources (`None`
    /// for exactly piecewise pairs; the engine folds the realized
    /// bound into its contact threshold).
    pub approx_tolerance: Option<f64>,
}

impl EngineCase {
    /// Runs the seed conservative-advancement engine.
    pub fn run_generic(&self) -> SimOutcome {
        first_contact_generic(&*self.a, &*self.b, self.radius, &self.opts)
    }

    /// Runs the monotone-cursor engine through
    /// [`MonotoneDyn::with_cursor`]'s scoped stack cursors (the
    /// heterogeneous swarm path since the SoA PR — virtual dispatch per
    /// probe, zero allocation per query), returning the pruning-layer
    /// work counters alongside the outcome.
    pub fn run_cursor(&self) -> (SimOutcome, EngineStats) {
        let mut out = None;
        self.a.with_cursor(&mut |ca| {
            self.b.with_cursor(&mut |cb| {
                out = Some(first_contact_cursors_instrumented(
                    ca,
                    cb,
                    self.radius,
                    &self.opts,
                ));
            });
        });
        out.expect("with_cursor always invokes its closure")
    }

    /// The case's lowering options: horizon and piece budget plus the
    /// certified-approximation tolerance when the case declares one.
    pub fn compile_options(&self) -> CompileOptions {
        let copts = CompileOptions::to_horizon(self.opts.horizon).max_pieces(self.piece_budget);
        match self.approx_tolerance {
            Some(eps) => copts.approx_tolerance(eps),
            None => copts,
        }
    }

    /// Lowers the pair for the compiled engine; `None` when either side
    /// refuses (an uncertifiable curved source). The caller separately
    /// checks that the query resolves within the (possibly truncated)
    /// coverage.
    pub fn lower(&self) -> Option<(CompiledProgram, CompiledProgram)> {
        let copts = self.compile_options();
        let a = self.a.compile(&copts).ok()?;
        let b = self.b.compile(&copts).ok()?;
        Some((a, b))
    }
}

/// The canonical case set.
///
/// `quick` shrinks the grazing spans so a smoke run (CI) finishes in
/// well under a second while still exercising every engine branch;
/// `prune` toggles the cursor engine's envelope layer (the
/// `rvz bench-engine --no-prune` A/B).
pub fn engine_cases(quick: bool, prune: bool) -> Vec<EngineCase> {
    let span = if quick { 2.0 } else { 50.0 };
    let tol = 1e-9;
    let mut cases = Vec::new();

    // Grazing near-miss: a straight pass whose closest approach sits
    // half a tolerance *above* the declaration threshold. The seed
    // engine's step shrinks to tolerance scale near the graze (the
    // ulp-floor crawl); the cursor engine proves non-contact per piece in
    // closed form.
    let h = 1.0 + 1.5 * tol;
    cases.push(EngineCase {
        name: "grazing_near_miss",
        description: "straight pass, closest approach tolerance/2 above threshold",
        radius: 1.0,
        opts: ContactOptions::with_horizon(4.0 * span).tolerance(tol),
        a: Box::new(
            PathBuilder::at(Vec2::new(-span, h))
                .line_to(Vec2::new(span, h))
                .build(),
        ),
        b: Box::new(rvz_sim::Stationary::new(Vec2::ZERO)),
        piece_budget: CASE_PIECE_BUDGET,
        approx_tolerance: None,
    });

    // Grazing contact: the same pass dipping half a tolerance *below*
    // the threshold — the seed engine crawls to the crossing, the cursor
    // engine solves the quadratic.
    let h = 1.0 + 0.5 * tol;
    cases.push(EngineCase {
        name: "grazing_contact",
        description: "straight pass dipping tolerance/2 below threshold",
        radius: 1.0,
        opts: ContactOptions::with_horizon(4.0 * span).tolerance(tol),
        a: Box::new(
            PathBuilder::at(Vec2::new(-span, h))
                .line_to(Vec2::new(span, h))
                .build(),
        ),
        b: Box::new(rvz_sim::Stationary::new(Vec2::ZERO)),
        piece_budget: CASE_PIECE_BUDGET,
        approx_tolerance: None,
    });

    // Near-approach rendezvous: a typical feasible sweep scenario under
    // Algorithm 7 (speed asymmetry), dominated by long waits and lines.
    let attrs = RobotAttributes::reference().with_speed(0.5);
    cases.push(EngineCase {
        name: "algorithm7_feasible",
        description: "Algorithm 7 rendezvous, v = 0.5, d = 0.9",
        radius: 0.05,
        opts: ContactOptions::with_horizon(completion_time(if quick { 6 } else { 9 }))
            .tolerance(tol),
        a: Box::new(WaitAndSearch),
        b: Box::new(attrs.frame_warp(WaitAndSearch, Vec2::new(0.3, 0.85))),
        piece_budget: CASE_PIECE_BUDGET,
        approx_tolerance: None,
    });

    // Infeasible twins under Algorithm 4: the engine must disprove
    // contact all the way to the horizon — the step-budget-bound workload
    // of feasibility maps.
    cases.push(EngineCase {
        name: "universal_twins_horizon",
        description: "exact twins under Algorithm 4, horizon-bound disproof",
        radius: 0.1,
        opts: ContactOptions {
            tolerance: tol,
            horizon: completion_time(if quick { 4 } else { 5 }),
            max_steps: 2_000_000,
            ..ContactOptions::default()
        },
        a: Box::new(UniversalSearch),
        b: Box::new(RobotAttributes::reference().frame_warp(UniversalSearch, Vec2::new(0.0, 2.0))),
        piece_budget: CASE_PIECE_BUDGET,
        approx_tolerance: None,
    });

    // Spiral search: a fully curved trajectory — measures the cursor
    // layer's warm-started Newton inversion, and the compiled stack's
    // certified-chord lowering (the spiral's closed-form curvature
    // bound drives adaptive subdivision; the realized ε is folded into
    // the engine's contact threshold, so the compiled column is a
    // certificate at radius ± ε, not a guess).
    let r = 0.02;
    cases.push(EngineCase {
        name: "spiral_search",
        description: "Archimedean spiral vs stationary target (curved path)",
        radius: r,
        opts: ContactOptions::with_horizon(1e5).tolerance(tol),
        a: Box::new(ArchimedeanSpiral::for_visibility(r)),
        b: Box::new(rvz_sim::Stationary::new(Vec2::new(
            if quick { 0.3 } else { 0.9 },
            0.4,
        ))),
        piece_budget: CASE_PIECE_BUDGET,
        // radius × 1e-4: far below the contact tolerance scale that
        // matters at r = 0.02, cheap enough to stay under the budget.
        approx_tolerance: Some(r * 1e-4),
    });

    // Deep-round twins: the same disproof workload pushed into rounds
    // where a single `Search(k)` holds millions of segments — the
    // envelope hierarchy must skip the sub-`d` sweeps wholesale or
    // drown. The Θ(4ⁿ)-segment rounds need a raised piece budget for
    // the horizon disproof to stay on the compiled path.
    cases.push(EngineCase {
        name: "universal_deep_twins",
        description: "exact twins under Algorithm 4, deep-round disproof",
        radius: 0.1,
        opts: ContactOptions {
            tolerance: tol,
            horizon: completion_time(if quick { 5 } else { 6 }),
            max_steps: 5_000_000,
            ..ContactOptions::default()
        },
        a: Box::new(UniversalSearch),
        b: Box::new(RobotAttributes::reference().frame_warp(UniversalSearch, Vec2::new(0.0, 2.0))),
        piece_budget: 1 << 21,
        approx_tolerance: None,
    });

    // Far-apart Algorithm 7 pair: the searches spend whole rounds
    // sweeping radii far below the separation, so round/sub-round
    // certificates dominate; contact eventually happens when the sweeps
    // reach d.
    let far = RobotAttributes::reference().with_speed(0.5);
    cases.push(EngineCase {
        name: "algorithm7_far_pair",
        description: "Algorithm 7 rendezvous, v = 0.5, d = 10",
        radius: 0.1,
        opts: ContactOptions::with_horizon(completion_time(if quick { 7 } else { 9 }))
            .tolerance(tol),
        a: Box::new(WaitAndSearch),
        b: Box::new(far.frame_warp(WaitAndSearch, Vec2::new(8.0, 6.0))),
        piece_budget: CASE_PIECE_BUDGET,
        approx_tolerance: None,
    });

    for case in &mut cases {
        case.opts.prune = prune;
    }
    cases
}

/// Wall time and work counters for one engine on one case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSample {
    /// Nanoseconds per run (best of the measured iterations).
    pub ns_per_run: f64,
    /// Advancement steps reported by the outcome.
    pub steps: u64,
    /// Position queries issued (2 per engine iteration, derived as
    /// `2·(steps + 1)`).
    pub queries: u64,
    /// Outcome classification (`contact` / `horizon` / `step-budget`).
    pub outcome: &'static str,
    /// Intervals skipped by envelope separation certificates (cursor
    /// engine only; always 0 for the seed engine).
    pub pruned_intervals: u64,
    /// `envelope(t0, t1)` queries issued (cursor engine only).
    pub envelope_queries: u64,
    /// Heap allocation calls per query, observed by the counting
    /// allocator (0 when the allocator is not registered — the `rvz`
    /// binary registers it; library tests read "not measured").
    pub allocs_per_query: u64,
}

/// The compiled engine's sample plus its lowering cost, eager and
/// streaming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompiledSample {
    /// Query-time sample (lowering excluded — the amortized view lives
    /// in the batch workloads).
    pub sample: EngineSample,
    /// Nanoseconds to eagerly lower both trajectories to the horizon
    /// (what a cold cache pays up front).
    pub compile_eager_ns: f64,
    /// Nanoseconds for the streaming path to materialize only the span
    /// this query actually visited ([`rvz_trajectory::LazyProgram`]
    /// construction plus `drive_to` the resolution time) — the
    /// lowering tax a single cold query pays under streaming.
    pub compile_lazy_ns: f64,
    /// Certified approximation bound the engine folded into its contact
    /// threshold (the larger of the two arenas'; `0` for exactly
    /// piecewise pairs).
    pub approx_eps: f64,
    /// Total pieces across both arenas.
    pub pieces: u64,
}

/// The SoA lane kernel's sample: the kernel-vs-scalar comparison row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoaSample {
    /// Query-time sample (arena build excluded, reported alongside).
    pub sample: EngineSample,
    /// Nanoseconds to build both arenas from the already-lowered
    /// programs (`ProgramSoA::from_program` — the extra cost the SoA
    /// path pays over the compiled path on a cold cache).
    pub build_ns: f64,
    /// Lane chunks evaluated per query.
    pub lane_chunks: u64,
    /// Whole merged intervals certified or localized by lane chunks.
    pub lane_intervals: u64,
}

/// The measured comparison for one case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseMeasurement {
    /// Case identifier.
    pub name: &'static str,
    /// Case description.
    pub description: &'static str,
    /// Timed iterations per engine.
    pub iters: u32,
    /// The seed engine's sample.
    pub generic: EngineSample,
    /// The cursor engine's sample.
    pub cursor: EngineSample,
    /// The compiled engine's sample, when the pair lowers under the
    /// budget (null for curved trajectories and over-budget horizons).
    pub compiled: Option<CompiledSample>,
    /// The SoA lane kernel's sample, measured whenever the compiled
    /// sample exists (arenas are built from the same programs).
    pub soa: Option<SoaSample>,
}

impl CaseMeasurement {
    /// Wall-clock speedup of the cursor engine over the seed engine.
    pub fn speedup(&self) -> f64 {
        self.generic.ns_per_run / self.cursor.ns_per_run
    }

    /// Wall-clock speedup of the compiled engine over the cursor engine
    /// (query time only), when compiled.
    pub fn compiled_speedup(&self) -> Option<f64> {
        self.compiled
            .as_ref()
            .map(|c| self.cursor.ns_per_run / c.sample.ns_per_run)
    }

    /// Wall-clock speedup of the lane kernel over the cursor engine
    /// (query time only), when measured.
    pub fn soa_speedup(&self) -> Option<f64> {
        self.soa
            .as_ref()
            .map(|s| self.cursor.ns_per_run / s.sample.ns_per_run)
    }

    /// Kernel-vs-scalar ratio: scalar compiled ns over lane-kernel ns
    /// (> 1 means the kernel is faster on this case).
    pub fn kernel_vs_scalar(&self) -> Option<f64> {
        match (&self.compiled, &self.soa) {
            (Some(c), Some(s)) => Some(c.sample.ns_per_run / s.sample.ns_per_run),
            _ => None,
        }
    }
}

fn sample<F: FnMut() -> (SimOutcome, EngineStats)>(mut run: F, iters: u32) -> EngineSample {
    let (outcome, stats) = run(); // warm-up, and the steps/stats source
    let (_, allocs_per_query) = crate::alloc::count(&mut run);
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let (out, _) = std::hint::black_box(run());
        let ns = start.elapsed().as_nanos() as f64;
        debug_assert_eq!(out.classification(), outcome.classification());
        best = best.min(ns);
    }
    EngineSample {
        ns_per_run: best,
        steps: outcome.steps(),
        queries: 2 * (outcome.steps() + 1),
        outcome: outcome.classification(),
        pruned_intervals: stats.pruned_intervals,
        envelope_queries: stats.envelope_queries,
        allocs_per_query,
    }
}

/// Measures one case on all engines and cross-checks the outcome
/// classifications.
///
/// # Panics
///
/// Panics if any two engines disagree on the outcome classification —
/// a benchmark that silently compared different work would be
/// meaningless.
pub fn measure_case(case: &EngineCase, iters: u32) -> CaseMeasurement {
    let generic = sample(|| (case.run_generic(), EngineStats::default()), iters);
    let cursor = sample(|| case.run_cursor(), iters);
    assert_eq!(
        generic.outcome, cursor.outcome,
        "engines disagree on `{}`",
        case.name
    );
    let mut soa = None;
    let compiled = {
        // Time the eager lowering alone; the resolvability probe below
        // is a full engine query and must not inflate the compile cost.
        let compile_start = Instant::now();
        let lowered = case.lower();
        let compile_eager_ns = compile_start.elapsed().as_nanos() as f64;
        let resolvable = lowered.filter(|(a, b)| {
            rvz_sim::try_first_contact_programs(
                a,
                b,
                case.radius,
                &case.opts,
                &mut EngineScratch::new(),
            )
            .is_some()
        });
        resolvable.map(|(a, b)| {
            let pieces = (a.pieces().len() + b.pieces().len()) as u64;
            let approx_eps = a.approx_eps().max(b.approx_eps());
            let mut scratch = EngineScratch::new();
            let s = sample(
                || {
                    let out = rvz_sim::try_first_contact_programs(
                        &a,
                        &b,
                        case.radius,
                        &case.opts,
                        &mut scratch,
                    )
                    .expect("lower() proved the query resolves");
                    (out, scratch.last_stats())
                },
                iters,
            );
            assert_eq!(
                s.outcome, cursor.outcome,
                "compiled engine disagrees on `{}`",
                case.name
            );
            // The streaming cost: materialize exactly as deep as this
            // query went (a contact stops the stream at the contact
            // time; a disproof must still reach the horizon).
            let resolved = match s.outcome {
                "contact" => rvz_sim::try_first_contact_programs(
                    &a,
                    &b,
                    case.radius,
                    &case.opts,
                    &mut scratch,
                )
                .and_then(|o| o.contact_time())
                .unwrap_or(case.opts.horizon),
                _ => case.opts.horizon,
            };
            let copts = case.compile_options();
            let lazy_start = Instant::now();
            let la = rvz_trajectory::LazyProgram::new(&*case.a, copts);
            let lb = rvz_trajectory::LazyProgram::new(&*case.b, copts);
            la.drive_to(resolved);
            lb.drive_to(resolved);
            let compile_lazy_ns = lazy_start.elapsed().as_nanos() as f64;
            std::hint::black_box((&la, &lb));

            // The lane-kernel row over arenas built from the same
            // programs — the kernel-vs-scalar comparison on identical
            // work.
            let build_start = Instant::now();
            let sa = ProgramSoA::from_program(&a);
            let sb = ProgramSoA::from_program(&b);
            let build_ns = build_start.elapsed().as_nanos() as f64;
            let mut lane_chunks = 0;
            let mut lane_intervals = 0;
            let soa_sample = sample(
                || {
                    let out = rvz_sim::try_first_contact_soa(
                        &sa,
                        &sb,
                        case.radius,
                        &case.opts,
                        &mut scratch,
                    )
                    .expect("arena coverage equals program coverage");
                    let stats = scratch.last_stats();
                    lane_chunks = stats.lane_chunks;
                    lane_intervals = stats.lane_intervals;
                    (out, stats)
                },
                iters,
            );
            assert_eq!(
                soa_sample.outcome, cursor.outcome,
                "SoA kernel disagrees on `{}`",
                case.name
            );
            soa = Some(SoaSample {
                sample: soa_sample,
                build_ns,
                lane_chunks,
                lane_intervals,
            });

            CompiledSample {
                sample: s,
                compile_eager_ns,
                compile_lazy_ns,
                approx_eps,
                pieces,
            }
        })
    };
    CaseMeasurement {
        name: case.name,
        description: case.description,
        iters,
        generic,
        cursor,
        compiled,
        soa,
    }
}

/// Runs the whole case set (`prune` toggles the envelope layer for the
/// cursor engine — the A/B the CLI exposes as `--no-prune`).
pub fn measure_all(quick: bool, prune: bool) -> Vec<CaseMeasurement> {
    let iters = if quick { 2 } else { 7 };
    engine_cases(quick, prune)
        .iter()
        .map(|case| measure_case(case, iters))
        .collect()
}

/// The case names (if any) on which the cursor engine took more
/// advancement steps than the seed engine — the regression the
/// `rvz bench-engine --enforce-steps` CI smoke rejects.
pub fn step_regressions(measurements: &[CaseMeasurement]) -> Vec<&'static str> {
    measurements
        .iter()
        .filter(|m| m.cursor.steps > m.generic.steps)
        .map(|m| m.name)
        .collect()
}

// ------------------------------------------------------------------
// Batch workloads: the amortized-lowering throughput metric.
// ------------------------------------------------------------------

/// One batch workload measured on the cursor path and the compiled path.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMeasurement {
    /// Stable identifier.
    pub name: &'static str,
    /// What the batch models.
    pub description: &'static str,
    /// Queries per run of either arm.
    pub queries: u64,
    /// Cursor-path nanoseconds per query.
    pub cursor_ns_per_query: f64,
    /// Cursor-path allocation calls per query.
    pub cursor_allocs_per_query: u64,
    /// Compiled-path nanoseconds per query **including** the amortized
    /// lowering cost.
    pub compiled_ns_per_query: f64,
    /// Nanoseconds spent lowering per run (amortized into the above).
    pub compile_ns: f64,
    /// The amortized lowering tax: `compile_ns / queries` — the number
    /// the streaming-lowering acceptance holds under one query's engine
    /// time.
    pub compile_ns_per_query: f64,
    /// Total pieces across the lowered programs.
    pub pieces: u64,
    /// Compiled-path allocation calls per query after warmup (the
    /// zero-allocation claim; 0 also when the allocator is absent — the
    /// `alloc_gate` test provides the positive control).
    pub allocs_per_query: u64,
    /// SoA lane-kernel nanoseconds per query **including** the
    /// amortized lowering and arena-build cost.
    pub soa_ns_per_query: f64,
    /// SoA-path allocation calls per query after warmup.
    pub soa_allocs_per_query: u64,
}

impl BatchMeasurement {
    /// Batch throughput speedup: cursor path over compiled path, with
    /// lowering amortized.
    pub fn speedup(&self) -> f64 {
        self.cursor_ns_per_query / self.compiled_ns_per_query
    }

    /// Batch throughput speedup of the SoA lane kernel over the cursor
    /// path, with lowering and arena builds amortized.
    pub fn soa_speedup(&self) -> f64 {
        self.cursor_ns_per_query / self.soa_ns_per_query
    }
}

/// Best-of-`iters` wall time of `f`, in nanoseconds.
fn best_ns<F: FnMut()>(mut f: F, iters: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// The warm-cache batch: `rvz serve`'s steady state. A family of
/// rendezvous scenarios is queried over and over; the compiled arm
/// lowers each trajectory once (reference shared across the whole
/// family) and reuses one scratch, the cursor arm rebuilds its cursors
/// per query exactly as `simulate_rendezvous_by_ref` does today.
pub fn measure_warm_batch(quick: bool) -> BatchMeasurement {
    let rounds = if quick { 3 } else { 4 };
    let horizon = rvz_search::times::rounds_total(rounds);
    let opts = ContactOptions::with_horizon(horizon);
    let reps: u64 = if quick { 32 } else { 256 };
    let speeds = [0.5, 0.6, 0.75, 0.9, 1.1, 1.25];
    let instances: Vec<rvz_model::RendezvousInstance> = speeds
        .iter()
        .map(|&v| {
            rvz_model::RendezvousInstance::new(
                Vec2::new(0.3, 0.85),
                0.05,
                RobotAttributes::reference().with_speed(v),
            )
            .expect("valid instance")
        })
        .collect();
    let queries = reps * instances.len() as u64;
    let iters = if quick { 3 } else { 13 };

    // Cursor arm: cursors rebuilt per query (the status quo).
    let run_cursor = || {
        for _ in 0..reps {
            for inst in &instances {
                std::hint::black_box(simulate_rendezvous_by_ref(&UniversalSearch, inst, &opts));
            }
        }
    };
    run_cursor(); // warm-up
    let (_, cursor_allocs) = crate::alloc::count(|| {
        let inst = &instances[0];
        std::hint::black_box(simulate_rendezvous_by_ref(&UniversalSearch, inst, &opts));
    });

    // Compiled arm: lower once, query many times.
    let copts = CompileOptions::to_horizon(horizon).max_pieces(CASE_PIECE_BUDGET);
    let compile_start = Instant::now();
    let reference = UniversalSearch.compile(&copts).expect("covers the horizon");
    let partners: Vec<CompiledProgram> = instances
        .iter()
        .map(|inst| {
            rvz_sim::compile_rendezvous_partner(&UniversalSearch, inst, &copts)
                .expect("covers the horizon")
        })
        .collect();
    let compile_ns = compile_start.elapsed().as_nanos() as f64;
    let pieces = (reference.pieces().len()
        + partners.iter().map(|p| p.pieces().len()).sum::<usize>()) as u64;
    let mut scratch = EngineScratch::new();
    let run_compiled = |scratch: &mut EngineScratch| {
        for _ in 0..reps {
            for (inst, partner) in instances.iter().zip(&partners) {
                std::hint::black_box(rvz_sim::first_contact_programs(
                    &reference,
                    partner,
                    inst.visibility(),
                    &opts,
                    scratch,
                ));
            }
        }
    };
    run_compiled(&mut scratch); // warm-up
    let (_, allocs) = crate::alloc::count(|| {
        std::hint::black_box(rvz_sim::first_contact_programs(
            &reference,
            &partners[0],
            instances[0].visibility(),
            &opts,
            &mut scratch,
        ));
    });

    // SoA arm: the same lower-once programs converted to arenas once,
    // queried through the lane kernel (the serve stack's batch route).
    let build_start = Instant::now();
    let soa_reference = ProgramSoA::from_program(&reference);
    let soa_partners: Vec<ProgramSoA> = partners.iter().map(ProgramSoA::from_program).collect();
    let arena_ns = build_start.elapsed().as_nanos() as f64;
    let run_soa = |scratch: &mut EngineScratch| {
        for _ in 0..reps {
            for (inst, partner) in instances.iter().zip(&soa_partners) {
                std::hint::black_box(rvz_sim::first_contact_soa(
                    &soa_reference,
                    partner,
                    inst.visibility(),
                    &opts,
                    scratch,
                ));
            }
        }
    };
    run_soa(&mut scratch); // warm-up
    let (_, soa_allocs) = crate::alloc::count(|| {
        std::hint::black_box(rvz_sim::first_contact_soa(
            &soa_reference,
            &soa_partners[0],
            instances[0].visibility(),
            &opts,
            &mut scratch,
        ));
    });

    // Interleaved rounds: one cursor/compiled/SoA sample per round, so
    // transient machine interference lands on every arm instead of
    // skewing whichever arm happened to be measured during the spike.
    let (mut cursor_total, mut compiled_total, mut soa_total) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        cursor_total = cursor_total.min(best_ns(&run_cursor, 1));
        compiled_total = compiled_total.min(best_ns(|| run_compiled(&mut scratch), 1));
        soa_total = soa_total.min(best_ns(|| run_soa(&mut scratch), 1));
    }

    // Cross-check: all three arms classify every scenario identically.
    for (inst, (partner, arena)) in instances.iter().zip(partners.iter().zip(&soa_partners)) {
        let cursor_out = simulate_rendezvous_by_ref(&UniversalSearch, inst, &opts);
        let compiled_out = rvz_sim::first_contact_programs(
            &reference,
            partner,
            inst.visibility(),
            &opts,
            &mut scratch,
        );
        let soa_out = rvz_sim::first_contact_soa(
            &soa_reference,
            arena,
            inst.visibility(),
            &opts,
            &mut scratch,
        );
        assert_eq!(
            cursor_out.classification(),
            compiled_out.classification(),
            "warm batch arms disagree at v = {}",
            inst.attributes().speed()
        );
        assert_eq!(
            compiled_out.classification(),
            soa_out.classification(),
            "warm batch SoA arm disagrees at v = {}",
            inst.attributes().speed()
        );
    }

    BatchMeasurement {
        name: "warm_batch_universal",
        description: "6 Algorithm 4 rendezvous scenarios queried repeatedly (serve shape)",
        queries,
        cursor_ns_per_query: cursor_total / queries as f64,
        cursor_allocs_per_query: cursor_allocs,
        compiled_ns_per_query: (compiled_total + compile_ns) / queries as f64,
        compile_ns,
        compile_ns_per_query: compile_ns / queries as f64,
        pieces,
        allocs_per_query: allocs,
        soa_ns_per_query: (soa_total + compile_ns + arena_ns) / queries as f64,
        soa_allocs_per_query: soa_allocs,
    }
}

/// The swarm batch: `n` robots lowered once, all `n(n−1)/2` pairwise
/// first-contact queries — the `pairwise_meetings` shape, where the
/// cursor arm boxes two `dyn` cursors per pair.
pub fn measure_swarm_batch(quick: bool) -> BatchMeasurement {
    // A shallow horizon keeps per-robot lowering cheap; the swarm's
    // amortization argument is Θ(n²) queries over Θ(n) lowerings.
    let horizon = rvz_search::times::rounds_total(3);
    let opts = ContactOptions::with_horizon(horizon);
    let radii = [0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1];
    let n = if quick { 8 } else { 12 };
    let robots: Vec<_> = (0..n)
        .map(|i| {
            let angle = std::f64::consts::TAU * i as f64 / n as f64;
            RobotAttributes::reference()
                .with_speed(0.5 + 0.1 * i as f64)
                .frame_warp(UniversalSearch, Vec2::from_polar(3.0, angle))
        })
        .collect();
    let queries = (radii.len() * n * (n - 1) / 2) as u64;
    let iters = if quick { 3 } else { 13 };

    let dyn_refs: Vec<&dyn MonotoneDyn> = robots.iter().map(|r| r as &dyn MonotoneDyn).collect();
    let run_cursor = || {
        for radius in radii {
            std::hint::black_box(pairwise_meetings(&dyn_refs, radius, &opts));
        }
    };
    run_cursor();
    let (_, cursor_allocs_total) = crate::alloc::count(run_cursor);

    let copts = CompileOptions::to_horizon(horizon).max_pieces(CASE_PIECE_BUDGET);
    let compile_start = Instant::now();
    let programs: Vec<CompiledProgram> = robots
        .iter()
        .map(|r| r.compile(&copts).expect("covers the horizon"))
        .collect();
    let compile_ns = compile_start.elapsed().as_nanos() as f64;
    let pieces = programs.iter().map(|p| p.pieces().len()).sum::<usize>() as u64;
    let mut scratch = EngineScratch::new();
    let run_compiled = |scratch: &mut EngineScratch| {
        for radius in radii {
            std::hint::black_box(pairwise_meetings_programs(
                &programs, radius, &opts, scratch,
            ));
        }
    };
    run_compiled(&mut scratch);
    // Per-pair allocations after warmup: a single pair query (the table
    // rows allocate in both arms; the engine itself must not).
    let (_, allocs) = crate::alloc::count(|| {
        std::hint::black_box(rvz_sim::first_contact_programs(
            &programs[0],
            &programs[1],
            radii[0],
            &opts,
            &mut scratch,
        ));
    });

    // SoA arm: arenas built once, the whole radius grid resolved in one
    // sweep — per-robot window tables built once, one gap profile per
    // pair prices every radius, and the surviving radii share a single
    // multi-threshold ladder run per pair.
    let build_start = Instant::now();
    let arenas: Vec<ProgramSoA> = programs.iter().map(ProgramSoA::from_program).collect();
    let arena_ns = build_start.elapsed().as_nanos() as f64;
    let run_soa = |scratch: &mut EngineScratch| {
        std::hint::black_box(rvz_sim::pairwise_sweep_soa(&arenas, &radii, &opts, scratch));
    };
    run_soa(&mut scratch);
    let (_, soa_allocs) = crate::alloc::count(|| {
        std::hint::black_box(rvz_sim::first_contact_soa(
            &arenas[0],
            &arenas[1],
            radii[0],
            &opts,
            &mut scratch,
        ));
    });

    // Interleaved rounds (see `measure_warm_batch`).
    let (mut cursor_total, mut compiled_total, mut soa_total) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        cursor_total = cursor_total.min(best_ns(&run_cursor, 1));
        compiled_total = compiled_total.min(best_ns(|| run_compiled(&mut scratch), 1));
        soa_total = soa_total.min(best_ns(|| run_soa(&mut scratch), 1));
    }

    let cursor_table = pairwise_meetings(&dyn_refs, radii[0], &opts);
    let sweep_tables = rvz_sim::pairwise_sweep_soa(&arenas, &radii, &opts, &mut scratch);
    for (r, &radius) in radii.iter().enumerate() {
        let compiled_table = pairwise_meetings_programs(&programs, radius, &opts, &mut scratch);
        for i in 0..n {
            for j in (i + 1)..n {
                if r == 0 {
                    assert_eq!(
                        cursor_table[i][j].is_some(),
                        compiled_table[i][j].is_some(),
                        "swarm arms disagree on pair ({i}, {j})"
                    );
                }
                assert_eq!(
                    compiled_table[i][j].is_some(),
                    sweep_tables[r][i][j].is_some(),
                    "swarm SoA sweep disagrees on pair ({i}, {j}) at radius {radius}"
                );
            }
        }
    }

    BatchMeasurement {
        name: "swarm_pairwise",
        description:
            "warped Algorithm 4 swarm, pairwise meetings over a radius sweep (multi shape)",
        queries,
        cursor_ns_per_query: cursor_total / queries as f64,
        cursor_allocs_per_query: cursor_allocs_total / queries,
        compiled_ns_per_query: (compiled_total + compile_ns) / queries as f64,
        compile_ns,
        compile_ns_per_query: compile_ns / queries as f64,
        pieces,
        allocs_per_query: allocs,
        soa_ns_per_query: (soa_total + compile_ns + arena_ns) / queries as f64,
        soa_allocs_per_query: soa_allocs,
    }
}

/// The many-vs-many batch: one reference program against `n` partners
/// over a radius grid — the `/sweep` shape, where the SoA arm streams
/// the shared reference arena once through
/// [`sweep_contacts_soa`] (window tables built once, reused for every
/// `(radius, partner)` cell) while the scalar arms pay each query from
/// scratch.
pub fn measure_many_vs_many_batch(quick: bool) -> BatchMeasurement {
    let horizon = rvz_search::times::rounds_total(3);
    let opts = ContactOptions::with_horizon(horizon);
    // A feasibility-map-density radius grid: wide enough that the SoA
    // arm's one-table-build-one-ladder-run amortization is the story,
    // exactly as `/sweep` requests run it.
    let radii = [
        0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1, 0.11, 0.12, 0.135, 0.15,
    ];
    let n = if quick { 10 } else { 18 };
    // Half the partners start within reach, half far outside the search
    // envelope — the far half is what the window prefilter earns its
    // keep on, exactly as in a feasibility-map sweep.
    let partners_src: Vec<_> = (0..n)
        .map(|i| {
            let angle = std::f64::consts::TAU * i as f64 / n as f64;
            let dist = if i % 2 == 0 { 1.2 } else { 40.0 };
            RobotAttributes::reference()
                .with_speed(0.5 + 0.07 * i as f64)
                .frame_warp(UniversalSearch, Vec2::from_polar(dist, angle))
        })
        .collect();
    let queries = (radii.len() * n) as u64;
    let iters = if quick { 3 } else { 13 };

    // Cursor arm: scoped stack cursors per query, as `pairwise_meetings`
    // runs them.
    let reference_robot = UniversalSearch;
    let run_cursor = || {
        for radius in radii {
            for partner in &partners_src {
                std::hint::black_box(rvz_sim::first_contact_dyn(
                    &reference_robot,
                    partner,
                    radius,
                    &opts,
                ));
            }
        }
    };
    run_cursor();
    let (_, cursor_allocs_total) = crate::alloc::count(run_cursor);

    // Compiled arm: per-pair scalar ladder over lowered programs.
    let copts = CompileOptions::to_horizon(horizon).max_pieces(CASE_PIECE_BUDGET);
    let compile_start = Instant::now();
    let reference = UniversalSearch.compile(&copts).expect("covers the horizon");
    let programs: Vec<CompiledProgram> = partners_src
        .iter()
        .map(|r| r.compile(&copts).expect("covers the horizon"))
        .collect();
    let compile_ns = compile_start.elapsed().as_nanos() as f64;
    let pieces = (reference.pieces().len()
        + programs.iter().map(|p| p.pieces().len()).sum::<usize>()) as u64;
    let mut scratch = EngineScratch::new();
    let run_compiled = |scratch: &mut EngineScratch| {
        for radius in radii {
            for program in &programs {
                std::hint::black_box(rvz_sim::first_contact_programs(
                    &reference, program, radius, &opts, scratch,
                ));
            }
        }
    };
    run_compiled(&mut scratch);
    let (_, allocs) = crate::alloc::count(|| {
        std::hint::black_box(rvz_sim::first_contact_programs(
            &reference,
            &programs[0],
            radii[0],
            &opts,
            &mut scratch,
        ));
    });

    // SoA arm: the whole grid in one streaming call.
    let build_start = Instant::now();
    let soa_reference = ProgramSoA::from_program(&reference);
    let arenas: Vec<ProgramSoA> = programs.iter().map(ProgramSoA::from_program).collect();
    let arena_ns = build_start.elapsed().as_nanos() as f64;
    let run_soa = |scratch: &mut EngineScratch| {
        std::hint::black_box(sweep_contacts_soa(
            &soa_reference,
            &arenas,
            &radii,
            &opts,
            scratch,
        ));
    };
    run_soa(&mut scratch);
    let (_, soa_allocs_total) = crate::alloc::count(|| run_soa(&mut scratch));

    // Interleaved rounds (see `measure_warm_batch`).
    let (mut cursor_total, mut compiled_total, mut soa_total) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..iters {
        cursor_total = cursor_total.min(best_ns(&run_cursor, 1));
        compiled_total = compiled_total.min(best_ns(|| run_compiled(&mut scratch), 1));
        soa_total = soa_total.min(best_ns(|| run_soa(&mut scratch), 1));
    }

    // Cross-check every cell: classification agreement across arms.
    let sweep = sweep_contacts_soa(&soa_reference, &arenas, &radii, &opts, &mut scratch);
    for (r, &radius) in radii.iter().enumerate() {
        for (k, program) in programs.iter().enumerate() {
            let scalar =
                rvz_sim::first_contact_programs(&reference, program, radius, &opts, &mut scratch);
            let soa_out = sweep[r][k].as_ref().expect("covered arenas resolve");
            assert_eq!(
                scalar.classification(),
                soa_out.classification(),
                "many-vs-many arms disagree at radius {radius}, partner {k}"
            );
        }
    }

    BatchMeasurement {
        name: "swarm_many_vs_many",
        description: "one Algorithm 4 reference vs 10+ partners over a radius grid (/sweep shape)",
        queries,
        cursor_ns_per_query: cursor_total / queries as f64,
        cursor_allocs_per_query: cursor_allocs_total / queries,
        compiled_ns_per_query: (compiled_total + compile_ns) / queries as f64,
        compile_ns,
        compile_ns_per_query: compile_ns / queries as f64,
        pieces,
        allocs_per_query: allocs,
        soa_ns_per_query: (soa_total + compile_ns + arena_ns) / queries as f64,
        soa_allocs_per_query: soa_allocs_total / queries,
    }
}

/// All batch workloads.
pub fn measure_batches(quick: bool) -> Vec<BatchMeasurement> {
    vec![
        measure_warm_batch(quick),
        measure_swarm_batch(quick),
        measure_many_vs_many_batch(quick),
    ]
}

// ------------------------------------------------------------------
// Rendering.
// ------------------------------------------------------------------

fn json_sample(sample: &EngineSample) -> String {
    format!(
        "{{\"ns_per_run\": {:.0}, \"steps\": {}, \"queries\": {}, \"pruned_intervals\": {}, \"envelope_queries\": {}, \"allocs_per_query\": {}, \"outcome\": \"{}\"}}",
        sample.ns_per_run,
        sample.steps,
        sample.queries,
        sample.pruned_intervals,
        sample.envelope_queries,
        sample.allocs_per_query,
        sample.outcome
    )
}

fn json_compiled(compiled: &Option<CompiledSample>) -> String {
    match compiled {
        None => "null".to_string(),
        Some(c) => format!(
            "{{\"ns_per_run\": {:.0}, \"steps\": {}, \"compile_eager_ns\": {:.0}, \"compile_lazy_ns\": {:.0}, \"approx_eps\": {:e}, \"pieces\": {}, \"allocs_per_query\": {}, \"outcome\": \"{}\"}}",
            c.sample.ns_per_run,
            c.sample.steps,
            c.compile_eager_ns,
            c.compile_lazy_ns,
            c.approx_eps,
            c.pieces,
            c.sample.allocs_per_query,
            c.sample.outcome
        ),
    }
}

fn json_soa(soa: &Option<SoaSample>) -> String {
    match soa {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"ns_per_run\": {:.0}, \"steps\": {}, \"build_ns\": {:.0}, \"lane_chunks\": {}, \"lane_intervals\": {}, \"allocs_per_query\": {}, \"outcome\": \"{}\"}}",
            s.sample.ns_per_run,
            s.sample.steps,
            s.build_ns,
            s.lane_chunks,
            s.lane_intervals,
            s.sample.allocs_per_query,
            s.sample.outcome
        ),
    }
}

fn json_batch(b: &BatchMeasurement) -> String {
    format!(
        concat!(
            "{{\"name\": \"{}\", \"description\": \"{}\", \"queries\": {}, ",
            "\"cursor_ns_per_query\": {:.0}, \"cursor_allocs_per_query\": {}, ",
            "\"compiled_ns_per_query\": {:.0}, \"compile_ns\": {:.0}, ",
            "\"compile_ns_per_query\": {:.0}, \"pieces\": {}, ",
            "\"allocs_per_query\": {}, \"speedup\": {:.2}, ",
            "\"soa_ns_per_query\": {:.0}, \"soa_allocs_per_query\": {}, ",
            "\"soa_speedup\": {:.2}}}"
        ),
        b.name,
        b.description,
        b.queries,
        b.cursor_ns_per_query,
        b.cursor_allocs_per_query,
        b.compiled_ns_per_query,
        b.compile_ns,
        b.compile_ns_per_query,
        b.pieces,
        b.allocs_per_query,
        b.speedup(),
        b.soa_ns_per_query,
        b.soa_allocs_per_query,
        b.soa_speedup(),
    )
}

/// Renders the measurements as the `BENCH_engine.json` document
/// (schema v5: the v4 per-case eager/lazy compile costs and certified
/// ε, plus the SoA lane-kernel rows — per-case `soa` samples with
/// arena build cost and lane counters, per-batch `soa_ns_per_query`
/// throughput, and the top-level `lane_width`).
///
/// Hand-rolled JSON (the workspace is dependency-free); the schema is
/// versioned so future PRs can extend it without breaking consumers.
pub fn render_json(
    measurements: &[CaseMeasurement],
    batches: &[BatchMeasurement],
    quick: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"rvz-bench-engine/v5\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str(&format!("  \"lane_width\": {KERNEL_LANES},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"description\": \"{}\", \"iters\": {}, \"generic\": {}, \"cursor\": {}, \"compiled\": {}, \"soa\": {}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.description,
            m.iters,
            json_sample(&m.generic),
            json_sample(&m.cursor),
            json_compiled(&m.compiled),
            json_soa(&m.soa),
            m.speedup(),
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"batches\": [\n");
    for (i, b) in batches.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            json_batch(b),
            if i + 1 == batches.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The smallest wall-clock speedup among the grazing/near-approach
/// cases — the acceptance metric the fast path is held to (≥ 3x).
pub fn worst_grazing_speedup(measurements: &[CaseMeasurement]) -> f64 {
    measurements
        .iter()
        .filter(|m| m.name.starts_with("grazing"))
        .map(|m| m.speedup())
        .fold(f64::INFINITY, f64::min)
}

/// One-line summary of [`worst_grazing_speedup`] for bench output.
pub fn grazing_summary(measurements: &[CaseMeasurement]) -> String {
    format!(
        "worst grazing/near-approach speedup: {:.2}x (target: >= 3x)",
        worst_grazing_speedup(measurements)
    )
}

/// The sweep/batch acceptance metric: the warm-cache batch's
/// throughput speedup (compiled vs cursor, lowering amortized) — the
/// shape the sweep executor and `rvz serve` actually run. Held to
/// ≥ 2x. The swarm batch is reported alongside; its queries are short
/// enough that lowering amortizes over Θ(n²)/Θ(n) more slowly.
pub fn batch_acceptance_speedup(batches: &[BatchMeasurement]) -> f64 {
    batches
        .iter()
        .find(|b| b.name == "warm_batch_universal")
        .map_or(f64::NAN, BatchMeasurement::speedup)
}

/// One-line summary of the batch workloads for bench output.
pub fn batch_summary(batches: &[BatchMeasurement]) -> String {
    let detail: Vec<String> = batches
        .iter()
        .map(|b| {
            format!(
                "{} {:.2}x (soa {:.2}x)",
                b.name,
                b.speedup(),
                b.soa_speedup()
            )
        })
        .collect();
    format!(
        "sweep/batch workload speedup: {:.2}x (target: >= 2x; {})",
        batch_acceptance_speedup(batches),
        detail.join(", ")
    )
}

/// Renders the measurements as a fixed-width table (the bench binary's
/// output).
pub fn render_table(measurements: &[CaseMeasurement]) -> String {
    let mut table = crate::Table::new(&[
        "case",
        "outcome",
        "seed ns/run",
        "seed steps",
        "cursor ns/run",
        "cursor steps",
        "pruned",
        "env queries",
        "compiled ns",
        "pieces",
        "soa ns",
        "chunks",
        "allocs",
        "speedup",
    ]);
    for m in measurements {
        let (compiled_ns, pieces, allocs) = match &m.compiled {
            Some(c) => (
                format!("{:.0}", c.sample.ns_per_run),
                c.pieces.to_string(),
                c.sample.allocs_per_query.to_string(),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let (soa_ns, chunks) = match &m.soa {
            Some(s) => (
                format!("{:.0}", s.sample.ns_per_run),
                s.lane_chunks.to_string(),
            ),
            None => ("-".into(), "-".into()),
        };
        table.row_owned(vec![
            m.name.to_string(),
            m.generic.outcome.to_string(),
            format!("{:.0}", m.generic.ns_per_run),
            m.generic.steps.to_string(),
            format!("{:.0}", m.cursor.ns_per_run),
            m.cursor.steps.to_string(),
            m.cursor.pruned_intervals.to_string(),
            m.cursor.envelope_queries.to_string(),
            compiled_ns,
            pieces,
            soa_ns,
            chunks,
            allocs,
            format!("{:.2}x", m.speedup()),
        ]);
    }
    table.render()
}

/// Renders the batch workloads as a fixed-width table.
pub fn render_batch_table(batches: &[BatchMeasurement]) -> String {
    let mut table = crate::Table::new(&[
        "batch",
        "queries",
        "cursor ns/q",
        "compiled ns/q",
        "soa ns/q",
        "compile ns",
        "pieces",
        "allocs/q",
        "speedup",
        "soa speedup",
    ]);
    for b in batches {
        table.row_owned(vec![
            b.name.to_string(),
            b.queries.to_string(),
            format!("{:.0}", b.cursor_ns_per_query),
            format!("{:.0}", b.compiled_ns_per_query),
            format!("{:.0}", b.soa_ns_per_query),
            format!("{:.0}", b.compile_ns),
            b.pieces.to_string(),
            b.allocs_per_query.to_string(),
            format!("{:.2}x", b.speedup()),
            format!("{:.2}x", b.soa_speedup()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cases_run_and_agree() {
        let measurements = measure_all(true, true);
        assert_eq!(measurements.len(), 7);
        for m in &measurements {
            assert_eq!(m.generic.outcome, m.cursor.outcome, "{}", m.name);
            assert!(m.generic.ns_per_run > 0.0 && m.cursor.ns_per_run > 0.0);
            if let Some(c) = &m.compiled {
                assert_eq!(c.sample.outcome, m.cursor.outcome, "{}", m.name);
                assert!(c.pieces > 0 || c.sample.outcome == "horizon");
            }
        }
        // The grazing cases are the ones the fast path exists for: the
        // cursor engine must use orders of magnitude fewer steps.
        for name in ["grazing_near_miss", "grazing_contact"] {
            let m = measurements.iter().find(|m| m.name == name).unwrap();
            assert!(
                m.cursor.steps * 100 < m.generic.steps.max(100),
                "{name}: cursor {} vs generic {} steps",
                m.cursor.steps,
                m.generic.steps
            );
        }
        // Since the certified-chord PR *every* case must produce a
        // compiled sample — no `"compiled": null` rows in the artifact.
        for m in &measurements {
            assert!(m.compiled.is_some(), "{} must run compiled", m.name);
        }
        // The spiral lowers through certified chords: a real ε within
        // the declared tolerance, exact cases report exactly zero.
        let spiral = measurements
            .iter()
            .find(|m| m.name == "spiral_search")
            .unwrap();
        let c = spiral.compiled.as_ref().unwrap();
        assert!(
            c.approx_eps > 0.0 && c.approx_eps <= 0.02 * 1e-4,
            "spiral eps {} out of range",
            c.approx_eps
        );
        for m in &measurements {
            if m.name != "spiral_search" {
                assert_eq!(m.compiled.as_ref().unwrap().approx_eps, 0.0, "{}", m.name);
            }
        }
        // The step-fix satellite: the cursor engine must never take more
        // steps than the seed loop, with or without pruning.
        assert!(step_regressions(&measurements).is_empty());
        let unpruned = measure_all(true, false);
        assert!(step_regressions(&unpruned).is_empty());
        for m in &unpruned {
            assert_eq!(m.cursor.pruned_intervals, 0, "{}", m.name);
            assert_eq!(m.cursor.envelope_queries, 0, "{}", m.name);
        }
        // The twin disproof cases are what the envelope layer exists
        // for: pruning must actually fire there.
        for name in ["universal_twins_horizon", "universal_deep_twins"] {
            let m = measurements.iter().find(|m| m.name == name).unwrap();
            assert!(m.cursor.pruned_intervals > 0, "{name} pruned nothing");
        }
    }

    #[test]
    fn batch_workloads_run_and_cross_check() {
        let batches = measure_batches(true);
        assert_eq!(batches.len(), 3);
        for b in &batches {
            assert!(b.queries > 0);
            assert!(b.cursor_ns_per_query > 0.0 && b.compiled_ns_per_query > 0.0);
            assert!(b.soa_ns_per_query > 0.0, "{} has no SoA arm", b.name);
            assert!(b.pieces > 0);
            assert!(b.speedup().is_finite());
            assert!(b.soa_speedup().is_finite());
            // The alloc satellites: the steady-state per-query loops
            // stay off the heap on every arm.
            assert_eq!(b.allocs_per_query, 0, "{} compiled arm allocates", b.name);
            assert_eq!(b.soa_allocs_per_query, 0, "{} SoA arm allocates", b.name);
        }
        assert!(batches.iter().any(|b| b.name == "swarm_many_vs_many"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let sample = EngineSample {
            ns_per_run: 10.0,
            steps: 5,
            queries: 12,
            outcome: "contact",
            pruned_intervals: 0,
            envelope_queries: 0,
            allocs_per_query: 4,
        };
        let measurements = vec![
            CaseMeasurement {
                name: "x",
                description: "y",
                iters: 1,
                generic: sample,
                cursor: EngineSample {
                    ns_per_run: 5.0,
                    steps: 1,
                    queries: 4,
                    outcome: "contact",
                    pruned_intervals: 3,
                    envelope_queries: 8,
                    allocs_per_query: 2,
                },
                compiled: Some(CompiledSample {
                    sample: EngineSample {
                        ns_per_run: 2.0,
                        steps: 1,
                        queries: 4,
                        outcome: "contact",
                        pruned_intervals: 3,
                        envelope_queries: 8,
                        allocs_per_query: 0,
                    },
                    compile_eager_ns: 100.0,
                    compile_lazy_ns: 25.0,
                    approx_eps: 2e-6,
                    pieces: 42,
                }),
                soa: Some(SoaSample {
                    sample: EngineSample {
                        ns_per_run: 1.0,
                        steps: 1,
                        queries: 4,
                        outcome: "contact",
                        pruned_intervals: 3,
                        envelope_queries: 8,
                        allocs_per_query: 0,
                    },
                    build_ns: 77.0,
                    lane_chunks: 3,
                    lane_intervals: 19,
                }),
            },
            CaseMeasurement {
                name: "curved",
                description: "z",
                iters: 1,
                generic: sample,
                cursor: sample,
                compiled: None,
                soa: None,
            },
        ];
        let batches = vec![BatchMeasurement {
            name: "warm",
            description: "w",
            queries: 48,
            cursor_ns_per_query: 1000.0,
            cursor_allocs_per_query: 7,
            compiled_ns_per_query: 400.0,
            compile_ns: 5000.0,
            compile_ns_per_query: 104.0,
            pieces: 1234,
            allocs_per_query: 0,
            soa_ns_per_query: 250.0,
            soa_allocs_per_query: 0,
        }];
        let json = render_json(&measurements, &batches, true);
        assert!(json.contains("\"schema\": \"rvz-bench-engine/v5\""));
        assert!(json.contains(&format!("\"lane_width\": {KERNEL_LANES}")));
        assert!(json.contains("\"compile_eager_ns\": 100"));
        assert!(json.contains("\"compile_lazy_ns\": 25"));
        assert!(json.contains("\"approx_eps\": 2e-6"));
        assert!(json.contains("\"compile_ns_per_query\": 104"));
        assert!(json.contains("\"pieces\": 42"));
        assert!(json.contains("\"allocs_per_query\": 0"));
        assert!(json.contains("\"compiled\": null"));
        assert!(json.contains("\"soa\": null"));
        assert!(json.contains("\"build_ns\": 77"));
        assert!(json.contains("\"lane_chunks\": 3"));
        assert!(json.contains("\"lane_intervals\": 19"));
        assert!(json.contains("\"batches\""));
        assert!(json.contains("\"speedup\": 2.50"));
        assert!(json.contains("\"soa_ns_per_query\": 250"));
        assert!(json.contains("\"soa_speedup\": 4.00"));
        assert!(json.contains("\"mode\": \"quick\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
    }

    #[test]
    fn table_lists_every_case() {
        let m = measure_all(true, true);
        let table = render_table(&m);
        for case in engine_cases(true, true) {
            assert!(table.contains(case.name));
        }
        let batches = measure_batches(true);
        let batch_table = render_batch_table(&batches);
        assert!(batch_table.contains("warm_batch_universal"));
        assert!(batch_table.contains("swarm_pairwise"));
        assert!(batch_table.contains("swarm_many_vs_many"));
    }
}
