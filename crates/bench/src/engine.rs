//! The first-contact engine benchmark: seed engine vs. cursor fast path.
//!
//! One canonical set of cases is shared by the `first_contact_throughput`
//! bench binary (human-readable table) and the `rvz bench-engine`
//! subcommand (machine-readable `BENCH_engine.json`), so the perf
//! trajectory of the hottest loop in the workspace is tracked by one
//! artifact from PR to PR.
//!
//! Each case runs the *same* trajectory pair through
//! [`rvz_sim::first_contact_generic`] (the seed conservative-advancement
//! loop) and through the cursor engine
//! ([`rvz_sim::first_contact_cursors`] over boxed [`MonotoneDyn`]
//! cursors), records wall time *and* advancement steps / position-query
//! counts for both, and cross-checks that the two engines classify the
//! outcome identically. Recording steps alongside time is what makes a
//! speedup attributable: fewer queries (analytic jumps) versus cheaper
//! queries (cursor caching) show up in different columns.

use rvz_baselines::ArchimedeanSpiral;
use rvz_core::{completion_time, WaitAndSearch};
use rvz_geometry::Vec2;
use rvz_model::RobotAttributes;
use rvz_search::UniversalSearch;
use rvz_sim::{
    first_contact_cursors_instrumented, first_contact_generic, ContactOptions, EngineStats,
    SimOutcome, Stationary,
};
use rvz_trajectory::{MonotoneDyn, PathBuilder};
use std::time::Instant;

/// One benchmark scenario: a trajectory pair plus engine options.
pub struct EngineCase {
    /// Stable machine-readable identifier.
    pub name: &'static str,
    /// What the case stresses.
    pub description: &'static str,
    /// Contact radius.
    pub radius: f64,
    /// Engine options.
    pub opts: ContactOptions,
    /// The two trajectories, behind the object-safe cursor facade.
    pub a: Box<dyn MonotoneDyn>,
    /// Second trajectory.
    pub b: Box<dyn MonotoneDyn>,
}

impl EngineCase {
    /// Runs the seed conservative-advancement engine.
    pub fn run_generic(&self) -> SimOutcome {
        first_contact_generic(&*self.a, &*self.b, self.radius, &self.opts)
    }

    /// Runs the monotone-cursor engine (through boxed cursors, as the
    /// heterogeneous swarm path does), returning the pruning-layer work
    /// counters alongside the outcome.
    pub fn run_cursor(&self) -> (SimOutcome, EngineStats) {
        first_contact_cursors_instrumented(
            &mut self.a.dyn_cursor(),
            &mut self.b.dyn_cursor(),
            self.radius,
            &self.opts,
        )
    }
}

/// The canonical case set.
///
/// `quick` shrinks the grazing spans so a smoke run (CI) finishes in
/// well under a second while still exercising every engine branch;
/// `prune` toggles the cursor engine's envelope layer (the
/// `rvz bench-engine --no-prune` A/B).
pub fn engine_cases(quick: bool, prune: bool) -> Vec<EngineCase> {
    let span = if quick { 2.0 } else { 50.0 };
    let tol = 1e-9;
    let mut cases = Vec::new();

    // Grazing near-miss: a straight pass whose closest approach sits
    // half a tolerance *above* the declaration threshold. The seed
    // engine's step shrinks to tolerance scale near the graze (the
    // ulp-floor crawl); the cursor engine proves non-contact per piece in
    // closed form.
    let h = 1.0 + 1.5 * tol;
    cases.push(EngineCase {
        name: "grazing_near_miss",
        description: "straight pass, closest approach tolerance/2 above threshold",
        radius: 1.0,
        opts: ContactOptions::with_horizon(4.0 * span).tolerance(tol),
        a: Box::new(
            PathBuilder::at(Vec2::new(-span, h))
                .line_to(Vec2::new(span, h))
                .build(),
        ),
        b: Box::new(Stationary::new(Vec2::ZERO)),
    });

    // Grazing contact: the same pass dipping half a tolerance *below*
    // the threshold — the seed engine crawls to the crossing, the cursor
    // engine solves the quadratic.
    let h = 1.0 + 0.5 * tol;
    cases.push(EngineCase {
        name: "grazing_contact",
        description: "straight pass dipping tolerance/2 below threshold",
        radius: 1.0,
        opts: ContactOptions::with_horizon(4.0 * span).tolerance(tol),
        a: Box::new(
            PathBuilder::at(Vec2::new(-span, h))
                .line_to(Vec2::new(span, h))
                .build(),
        ),
        b: Box::new(Stationary::new(Vec2::ZERO)),
    });

    // Near-approach rendezvous: a typical feasible sweep scenario under
    // Algorithm 7 (speed asymmetry), dominated by long waits and lines.
    let attrs = RobotAttributes::reference().with_speed(0.5);
    cases.push(EngineCase {
        name: "algorithm7_feasible",
        description: "Algorithm 7 rendezvous, v = 0.5, d = 0.9",
        radius: 0.05,
        opts: ContactOptions::with_horizon(completion_time(if quick { 6 } else { 9 }))
            .tolerance(tol),
        a: Box::new(WaitAndSearch),
        b: Box::new(attrs.frame_warp(WaitAndSearch, Vec2::new(0.3, 0.85))),
    });

    // Infeasible twins under Algorithm 4: the engine must disprove
    // contact all the way to the horizon — the step-budget-bound workload
    // of feasibility maps.
    cases.push(EngineCase {
        name: "universal_twins_horizon",
        description: "exact twins under Algorithm 4, horizon-bound disproof",
        radius: 0.1,
        opts: ContactOptions {
            tolerance: tol,
            horizon: completion_time(if quick { 4 } else { 5 }),
            max_steps: 2_000_000,
            ..ContactOptions::default()
        },
        a: Box::new(UniversalSearch),
        b: Box::new(RobotAttributes::reference().frame_warp(UniversalSearch, Vec2::new(0.0, 2.0))),
    });

    // Spiral search: a fully curved trajectory — measures the cursor
    // layer's warm-started Newton inversion rather than analytic jumps.
    let r = 0.02;
    cases.push(EngineCase {
        name: "spiral_search",
        description: "Archimedean spiral vs stationary target (curved path)",
        radius: r,
        opts: ContactOptions::with_horizon(1e5).tolerance(tol),
        a: Box::new(ArchimedeanSpiral::for_visibility(r)),
        b: Box::new(Stationary::new(Vec2::new(
            if quick { 0.3 } else { 0.9 },
            0.4,
        ))),
    });

    // Deep-round twins: the same disproof workload pushed into rounds
    // where a single `Search(k)` holds millions of segments — the
    // envelope hierarchy must skip the sub-`d` sweeps wholesale or
    // drown.
    cases.push(EngineCase {
        name: "universal_deep_twins",
        description: "exact twins under Algorithm 4, deep-round disproof",
        radius: 0.1,
        opts: ContactOptions {
            tolerance: tol,
            horizon: completion_time(if quick { 5 } else { 6 }),
            max_steps: 5_000_000,
            ..ContactOptions::default()
        },
        a: Box::new(UniversalSearch),
        b: Box::new(RobotAttributes::reference().frame_warp(UniversalSearch, Vec2::new(0.0, 2.0))),
    });

    // Far-apart Algorithm 7 pair: the searches spend whole rounds
    // sweeping radii far below the separation, so round/sub-round
    // certificates dominate; contact eventually happens when the sweeps
    // reach d.
    let far = RobotAttributes::reference().with_speed(0.5);
    cases.push(EngineCase {
        name: "algorithm7_far_pair",
        description: "Algorithm 7 rendezvous, v = 0.5, d = 10",
        radius: 0.1,
        opts: ContactOptions::with_horizon(completion_time(if quick { 7 } else { 9 }))
            .tolerance(tol),
        a: Box::new(WaitAndSearch),
        b: Box::new(far.frame_warp(WaitAndSearch, Vec2::new(8.0, 6.0))),
    });

    for case in &mut cases {
        case.opts.prune = prune;
    }
    cases
}

/// Wall time and work counters for one engine on one case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSample {
    /// Nanoseconds per run (best of the measured iterations).
    pub ns_per_run: f64,
    /// Advancement steps reported by the outcome.
    pub steps: u64,
    /// Position queries issued (2 per engine iteration, derived as
    /// `2·(steps + 1)`).
    pub queries: u64,
    /// Outcome classification (`contact` / `horizon` / `step-budget`).
    pub outcome: &'static str,
    /// Intervals skipped by envelope separation certificates (cursor
    /// engine only; always 0 for the seed engine).
    pub pruned_intervals: u64,
    /// `envelope(t0, t1)` queries issued (cursor engine only).
    pub envelope_queries: u64,
}

/// The measured comparison for one case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseMeasurement {
    /// Case identifier.
    pub name: &'static str,
    /// Case description.
    pub description: &'static str,
    /// Timed iterations per engine.
    pub iters: u32,
    /// The seed engine's sample.
    pub generic: EngineSample,
    /// The cursor engine's sample.
    pub cursor: EngineSample,
}

impl CaseMeasurement {
    /// Wall-clock speedup of the cursor engine over the seed engine.
    pub fn speedup(&self) -> f64 {
        self.generic.ns_per_run / self.cursor.ns_per_run
    }
}

fn sample<F: Fn() -> (SimOutcome, EngineStats)>(run: F, iters: u32) -> EngineSample {
    let (outcome, stats) = run(); // warm-up, and the steps/stats source
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let (out, _) = std::hint::black_box(run());
        let ns = start.elapsed().as_nanos() as f64;
        debug_assert_eq!(out.classification(), outcome.classification());
        best = best.min(ns);
    }
    EngineSample {
        ns_per_run: best,
        steps: outcome.steps(),
        queries: 2 * (outcome.steps() + 1),
        outcome: outcome.classification(),
        pruned_intervals: stats.pruned_intervals,
        envelope_queries: stats.envelope_queries,
    }
}

/// Measures one case on both engines and cross-checks the outcome
/// classification.
///
/// # Panics
///
/// Panics if the two engines disagree on the outcome classification —
/// a benchmark that silently compared different work would be
/// meaningless.
pub fn measure_case(case: &EngineCase, iters: u32) -> CaseMeasurement {
    let generic = sample(|| (case.run_generic(), EngineStats::default()), iters);
    let cursor = sample(|| case.run_cursor(), iters);
    assert_eq!(
        generic.outcome, cursor.outcome,
        "engines disagree on `{}`",
        case.name
    );
    CaseMeasurement {
        name: case.name,
        description: case.description,
        iters,
        generic,
        cursor,
    }
}

/// Runs the whole case set (`prune` toggles the envelope layer for the
/// cursor engine — the A/B the CLI exposes as `--no-prune`).
pub fn measure_all(quick: bool, prune: bool) -> Vec<CaseMeasurement> {
    let iters = if quick { 2 } else { 7 };
    engine_cases(quick, prune)
        .iter()
        .map(|case| measure_case(case, iters))
        .collect()
}

/// The case names (if any) on which the cursor engine took more
/// advancement steps than the seed engine — the regression the
/// `rvz bench-engine --enforce-steps` CI smoke rejects.
pub fn step_regressions(measurements: &[CaseMeasurement]) -> Vec<&'static str> {
    measurements
        .iter()
        .filter(|m| m.cursor.steps > m.generic.steps)
        .map(|m| m.name)
        .collect()
}

fn json_sample(sample: &EngineSample) -> String {
    format!(
        "{{\"ns_per_run\": {:.0}, \"steps\": {}, \"queries\": {}, \"pruned_intervals\": {}, \"envelope_queries\": {}, \"outcome\": \"{}\"}}",
        sample.ns_per_run,
        sample.steps,
        sample.queries,
        sample.pruned_intervals,
        sample.envelope_queries,
        sample.outcome
    )
}

/// Renders the measurements as the `BENCH_engine.json` document.
///
/// Hand-rolled JSON (the workspace is dependency-free); the schema is
/// versioned so future PRs can extend it without breaking consumers.
pub fn render_json(measurements: &[CaseMeasurement], quick: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"rvz-bench-engine/v2\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"cases\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"description\": \"{}\", \"iters\": {}, \"generic\": {}, \"cursor\": {}, \"speedup\": {:.2}}}{}\n",
            m.name,
            m.description,
            m.iters,
            json_sample(&m.generic),
            json_sample(&m.cursor),
            m.speedup(),
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The smallest wall-clock speedup among the grazing/near-approach
/// cases — the acceptance metric the fast path is held to (≥ 3x).
pub fn worst_grazing_speedup(measurements: &[CaseMeasurement]) -> f64 {
    measurements
        .iter()
        .filter(|m| m.name.starts_with("grazing"))
        .map(|m| m.speedup())
        .fold(f64::INFINITY, f64::min)
}

/// One-line summary of [`worst_grazing_speedup`] for bench output.
pub fn grazing_summary(measurements: &[CaseMeasurement]) -> String {
    format!(
        "worst grazing/near-approach speedup: {:.2}x (target: >= 3x)",
        worst_grazing_speedup(measurements)
    )
}

/// Renders the measurements as a fixed-width table (the bench binary's
/// output).
pub fn render_table(measurements: &[CaseMeasurement]) -> String {
    let mut table = crate::Table::new(&[
        "case",
        "outcome",
        "seed ns/run",
        "seed steps",
        "cursor ns/run",
        "cursor steps",
        "pruned",
        "env queries",
        "speedup",
    ]);
    for m in measurements {
        table.row_owned(vec![
            m.name.to_string(),
            m.generic.outcome.to_string(),
            format!("{:.0}", m.generic.ns_per_run),
            m.generic.steps.to_string(),
            format!("{:.0}", m.cursor.ns_per_run),
            m.cursor.steps.to_string(),
            m.cursor.pruned_intervals.to_string(),
            m.cursor.envelope_queries.to_string(),
            format!("{:.2}x", m.speedup()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cases_run_and_agree() {
        let measurements = measure_all(true, true);
        assert_eq!(measurements.len(), 7);
        for m in &measurements {
            assert_eq!(m.generic.outcome, m.cursor.outcome, "{}", m.name);
            assert!(m.generic.ns_per_run > 0.0 && m.cursor.ns_per_run > 0.0);
        }
        // The grazing cases are the ones the fast path exists for: the
        // cursor engine must use orders of magnitude fewer steps.
        for name in ["grazing_near_miss", "grazing_contact"] {
            let m = measurements.iter().find(|m| m.name == name).unwrap();
            assert!(
                m.cursor.steps * 100 < m.generic.steps.max(100),
                "{name}: cursor {} vs generic {} steps",
                m.cursor.steps,
                m.generic.steps
            );
        }
        // The step-fix satellite: the cursor engine must never take more
        // steps than the seed loop, with or without pruning.
        assert!(step_regressions(&measurements).is_empty());
        let unpruned = measure_all(true, false);
        assert!(step_regressions(&unpruned).is_empty());
        for m in &unpruned {
            assert_eq!(m.cursor.pruned_intervals, 0, "{}", m.name);
            assert_eq!(m.cursor.envelope_queries, 0, "{}", m.name);
        }
        // The twin disproof cases are what the envelope layer exists
        // for: pruning must actually fire there.
        for name in ["universal_twins_horizon", "universal_deep_twins"] {
            let m = measurements.iter().find(|m| m.name == name).unwrap();
            assert!(m.cursor.pruned_intervals > 0, "{name} pruned nothing");
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let measurements = vec![CaseMeasurement {
            name: "x",
            description: "y",
            iters: 1,
            generic: EngineSample {
                ns_per_run: 10.0,
                steps: 5,
                queries: 12,
                outcome: "contact",
                pruned_intervals: 0,
                envelope_queries: 0,
            },
            cursor: EngineSample {
                ns_per_run: 5.0,
                steps: 1,
                queries: 4,
                outcome: "contact",
                pruned_intervals: 3,
                envelope_queries: 8,
            },
        }];
        let json = render_json(&measurements, true);
        assert!(json.contains("\"schema\": \"rvz-bench-engine/v2\""));
        assert!(json.contains("\"pruned_intervals\": 3"));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("\"speedup\": 2.00"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
    }

    #[test]
    fn table_lists_every_case() {
        let m = measure_all(true, true);
        let table = render_table(&m);
        for case in engine_cases(true, true) {
            assert!(table.contains(case.name));
        }
    }
}
