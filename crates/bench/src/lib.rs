//! # rvz-bench
//!
//! Shared helpers for the Criterion benches that regenerate the paper's
//! tables and figures (see `DESIGN.md` §6 and `EXPERIMENTS.md`).
//!
//! Every bench is `harness = false`: its `main` first prints the
//! paper-reproduction table (so `cargo bench` output *is* the artifact),
//! then runs Criterion measurements of the underlying computation.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod alloc;
pub mod engine;
pub mod serve;

/// Minimal fixed-width table printer for bench output.
///
/// # Example
///
/// ```
/// use rvz_bench::Table;
///
/// let mut t = Table::new(&["d", "r", "measured", "bound"]);
/// t.row(&["1.0", "0.01", "123.4", "456.7"]);
/// let s = t.render();
/// assert!(s.contains("measured"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics when the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for i in 0..ncols {
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
                line.push_str(" | ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| format!("|{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "|";
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout with a heading.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
        println!();
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1", "2"]);
        t.row(&["333333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same display width.
        let w = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == w));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.5), "1.5000");
        assert_eq!(fnum(123.456), "123.5");
        assert!(fnum(1e9).contains('e'));
        assert!(fnum(1e-9).contains('e'));
    }
}
