//! A counting global allocator: the measurement behind the
//! `allocs_per_query` column of `BENCH_engine.json` and the
//! zero-allocation test gate on the compiled engine.
//!
//! [`CountingAlloc`] wraps the system allocator and bumps a process-wide
//! counter on every `alloc`/`realloc`/`alloc_zeroed`. It only observes
//! anything when *registered* as the binary's `#[global_allocator]` (the
//! `rvz` binary and the `alloc_gate` test do); in any other binary
//! [`count`] reports zero, which callers must treat as "not measured",
//! not "allocation-free".

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocation calls.
///
/// # Example
///
/// ```text
/// #[global_allocator]
/// static ALLOC: rvz_bench::alloc::CountingAlloc = rvz_bench::alloc::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`, which upholds the
// `GlobalAlloc` contract; the counter update has no safety impact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// Total allocation calls observed so far (0 unless [`CountingAlloc`] is
/// the registered global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result plus the allocation calls it made.
///
/// The count is process-wide, so run measurements single-threaded. A
/// zero can mean "no allocations" *or* "allocator not registered" —
/// pair a zero with a positive control (see the `alloc_gate` test).
pub fn count<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = allocations();
    let value = f();
    (value, allocations() - before)
}
