//! The `rvz loadtest` harness: a closed-loop client generator against an
//! in-process `rvz serve` instance, A/B-ing the symmetry-canonicalized
//! cache against `--no-cache`.
//!
//! The workload is deliberately **symmetric**: a handful of scenario
//! families, each queried under *both* of its role-swap descriptions, so
//! a caching server sees every family as one canonical orbit (first
//! touch misses, everything after hits) while the `--no-cache` arm pays
//! an engine run per request. The families are engine-heavy on purpose
//! — twin disproofs that must be pushed to the horizon — because that is
//! exactly the traffic a feasibility service is slowest on and exactly
//! where the orbit cache pays.
//!
//! Both arms run the same closed loop: `clients` persistent keep-alive
//! connections, each issuing `requests_per_client` `POST /first-contact`
//! queries back-to-back, per-request latency recorded client-side. The
//! cached arm includes its cold misses — "cache-warm" is earned inside
//! the measured window, not before it.

use rvz_experiments::{percentile, Json};
use rvz_obs::HistogramSnapshot;
use rvz_server::{client, ClientOptions, HttpClient, ServerOptions, Service, ServiceOptions};
use rvz_sim::ContactOptions;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Loadtest shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadtestConfig {
    /// Sub-second smoke variant for CI.
    pub quick: bool,
    /// Concurrent closed-loop clients (and server workers).
    pub clients: usize,
    /// Requests per client per arm.
    pub requests_per_client: usize,
    /// Scenario families (each contributes two orbit-mate descriptions).
    pub families: usize,
    /// Measured window per open-loop overload arm, in milliseconds.
    pub overload_duration_ms: u64,
    /// Client connect/read timeout (`--timeout-ms`), in milliseconds.
    pub timeout_ms: u64,
    /// `503` retries per closed-loop request (`--retries`). The
    /// overload arms never retry — they exist to *measure* shedding,
    /// and a retrying generator would hide it.
    pub retries: u32,
}

impl LoadtestConfig {
    /// The default configuration for a mode.
    pub fn new(quick: bool) -> Self {
        if quick {
            LoadtestConfig {
                quick,
                clients: 2,
                requests_per_client: 25,
                families: 4,
                overload_duration_ms: 400,
                timeout_ms: 30_000,
                retries: 0,
            }
        } else {
            LoadtestConfig {
                quick,
                clients: 4,
                requests_per_client: 150,
                families: 8,
                overload_duration_ms: 1_500,
                timeout_ms: 30_000,
                retries: 0,
            }
        }
    }

    /// The client timeouts both loops run under.
    fn client_options(&self) -> ClientOptions {
        ClientOptions::uniform(Duration::from_millis(self.timeout_ms.max(1)))
    }

    /// Engine options for the serving arms: horizons deep enough that a
    /// twin disproof is an *expensive* engine run (that is the workload
    /// the cache is for), shallower in quick mode.
    fn service_options(&self, no_cache: bool) -> ServiceOptions {
        let rounds = if self.quick { 7 } else { 10 };
        ServiceOptions {
            no_cache,
            sweep: rvz_experiments::SweepOptions {
                threads: 1,
                contact: ContactOptions {
                    horizon: rvz_core::completion_time(rounds),
                    max_steps: 500_000,
                    ..ContactOptions::default()
                },
                ..rvz_experiments::SweepOptions::default()
            },
            ..ServiceOptions::default()
        }
    }
}

/// One measured arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmReport {
    /// `"cached"` or `"no-cache"`.
    pub name: &'static str,
    /// Total requests issued.
    pub requests: u64,
    /// Wall-clock for the whole closed loop.
    pub wall_s: f64,
    /// Throughput, requests per second.
    pub rps: f64,
    /// Client-observed per-request latency `[p50, p90, p99, max]` in µs.
    pub latency_us: [f64; 4],
    /// The full client-observed latency distribution (µs, log-linear
    /// buckets) — percentiles summarize it, the histogram keeps the
    /// whole shape for offline comparison across runs.
    pub latency_histogram: HistogramSnapshot,
    /// Cache hits observed by the server.
    pub hits: u64,
    /// Cache misses (engine runs) observed by the server.
    pub misses: u64,
}

/// The request bodies of the symmetric workload: `families` scenario
/// families × two role-swap descriptions each, interleaved.
pub fn workload(families: usize) -> Vec<String> {
    let mut scenarios = Vec::new();
    for i in 0..families {
        let phase = i as f64 / families.max(1) as f64;
        let scenario = match i % 4 {
            // Mirror twins (infeasible): adversarial placement along the
            // invariant direction φ/2 forces a full horizon disproof.
            0 => {
                let phi = 0.4 + 1.1 * phase;
                format!(
                    concat!(
                        "{{\"algorithm\":\"alg7\",\"speed\":1,\"time_unit\":1,",
                        "\"orientation\":{phi},\"chirality\":\"-1\",\"distance\":1,",
                        "\"bearing\":{bearing},\"visibility\":0.05}}"
                    ),
                    phi = phi,
                    bearing = phi / 2.0,
                )
            }
            // Exact twins under Algorithm 4: the `universal_twins_horizon`
            // shape, the engine-heaviest disproof family.
            1 => format!(
                concat!(
                    "{{\"algorithm\":\"alg4\",\"speed\":1,\"time_unit\":1,\"orientation\":0,",
                    "\"chirality\":\"+1\",\"distance\":{d},\"bearing\":0,\"visibility\":0.05}}"
                ),
                d = 1.0 + 0.5 * phase,
            ),
            // Feasible far pair broken by clocks: a long Algorithm 7
            // chase before contact.
            2 => format!(
                concat!(
                    "{{\"algorithm\":\"alg7\",\"speed\":1,\"time_unit\":{tau},",
                    "\"orientation\":0,\"chirality\":\"+1\",\"distance\":{d},",
                    "\"bearing\":1.1,\"visibility\":0.05}}"
                ),
                tau = 0.5 + 0.25 * phase,
                d = 1.5 + phase,
            ),
            // Feasible speed-breaker pair.
            _ => format!(
                concat!(
                    "{{\"algorithm\":\"alg7\",\"speed\":{v},\"time_unit\":1,",
                    "\"orientation\":0,\"chirality\":\"+1\",\"distance\":1.2,",
                    "\"bearing\":0.7,\"visibility\":0.05}}"
                ),
                v = 0.5 + 0.3 * phase,
            ),
        };
        scenarios.push(scenario);
    }

    // Each family is queried under both orbit-mate descriptions.
    let mut bodies = Vec::with_capacity(scenarios.len() * 2);
    for body in &scenarios {
        let parsed = rvz_experiments::json::parse(body).expect("workload bodies are JSON");
        let scenario = rvz_experiments::scenario_from_json(&parsed).expect("workload is valid");
        let (twin, _) = scenario.role_swap();
        bodies.push(body.clone());
        bodies.push(format!(
            concat!(
                "{{\"algorithm\":\"{}\",\"speed\":{},\"time_unit\":{},\"orientation\":{},",
                "\"chirality\":\"{}\",\"distance\":{},\"bearing\":{},\"visibility\":{}}}"
            ),
            twin.algorithm,
            twin.speed,
            twin.time_unit,
            twin.orientation,
            twin.chirality,
            twin.distance,
            twin.bearing,
            twin.visibility,
        ));
    }
    bodies
}

/// Runs one arm: spawn a fresh in-process server, drive the closed
/// loop, collect the report.
///
/// # Panics
///
/// Panics when the server cannot bind, a request fails, or a response
/// is not `200` — a loadtest against a broken server is meaningless.
pub fn run_arm(name: &'static str, no_cache: bool, cfg: &LoadtestConfig) -> ArmReport {
    let service = Service::new(cfg.service_options(no_cache));
    let server = rvz_server::spawn("127.0.0.1:0", service, cfg.clients.max(1))
        .expect("bind an ephemeral loadtest port");
    let addr = server.addr().to_string();
    let bodies = workload(cfg.families);

    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let addr = &addr;
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut conn = HttpClient::connect_with(addr, &cfg.client_options())
                        .expect("loadtest client connects");
                    // Per-client jitter stream so synchronized retries
                    // de-correlate.
                    let policy = client::RetryPolicy {
                        seed: client as u64,
                        ..client::RetryPolicy::with_retries(cfg.retries)
                    };
                    let mut lat = Vec::with_capacity(cfg.requests_per_client);
                    for j in 0..cfg.requests_per_client {
                        // Interleave clients across the family list so
                        // the symmetric structure is visible early.
                        let body = &bodies[(client + j * cfg.clients) % bodies.len()];
                        let t0 = Instant::now();
                        let mut resp = conn
                            .request("POST", "/first-contact", Some(body))
                            .expect("loadtest request succeeds");
                        for attempt in 0..policy.retries {
                            if resp.status != 503 {
                                break;
                            }
                            // The server closes shed connections.
                            let hint = resp.header("retry-after").and_then(|v| v.parse().ok());
                            std::thread::sleep(policy.delay(attempt, hint));
                            conn = HttpClient::connect_with(addr, &cfg.client_options())
                                .expect("loadtest client reconnects");
                            resp = conn
                                .request("POST", "/first-contact", Some(body))
                                .expect("loadtest retry succeeds");
                        }
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(resp.status, 200, "loadtest got: {}", resp.body);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("loadtest client panicked"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let stats = server.service().cache_stats();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| percentile(&latencies, p).expect("non-empty latency sample");
    let requests = (cfg.clients * cfg.requests_per_client) as u64;
    ArmReport {
        name,
        requests,
        wall_s,
        rps: requests as f64 / wall_s,
        latency_us: [
            pct(50.0),
            pct(90.0),
            pct(99.0),
            *latencies.last().expect("non-empty"),
        ],
        latency_histogram: HistogramSnapshot::from_values(latencies.iter().map(|&l| l as u64)),
        hits: stats.hits,
        misses: stats.misses,
    }
}

/// Runs both arms (cached first, then `--no-cache`) and returns the
/// reports plus the throughput ratio `cached / no-cache`.
pub fn run_loadtest(cfg: &LoadtestConfig) -> (Vec<ArmReport>, f64) {
    let cached = run_arm("cached", false, cfg);
    let uncached = run_arm("no-cache", true, cfg);
    let speedup = cached.rps / uncached.rps;
    (vec![cached, uncached], speedup)
}

/// One open-loop overload arm: requests *offered* on a fixed schedule
/// regardless of how the server keeps up.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadArm {
    /// Offered-rate multiplier over the calibrated capacity (1×, 2×).
    pub multiplier: f64,
    /// The scheduled request rate, requests per second.
    pub offered_rps: f64,
    /// The rate the generator actually achieved (`sent / wall`).
    pub achieved_offered_rps: f64,
    /// Requests the generator attempted.
    pub sent: u64,
    /// `200` responses.
    pub accepted: u64,
    /// `503` responses (accept-queue or in-flight shedding).
    pub shed: u64,
    /// Transport failures (refused, reset, timed out).
    pub errors: u64,
    /// `shed / sent`.
    pub shed_rate: f64,
    /// `[p50, p99]` latency of *accepted* requests, µs.
    pub accepted_latency_us: [f64; 2],
}

/// The open-loop overload report: admission-control settings plus one
/// arm per offered-rate multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// Measured window per arm, ms.
    pub duration_ms: u64,
    /// Calibrated capacity (the closed-loop `no-cache` throughput).
    pub base_rps: f64,
    /// Connection-queue bound of the server under test.
    pub queue_depth: usize,
    /// Engine in-flight limit of the server under test.
    pub max_inflight: usize,
    /// Per-request engine deadline of the server under test, ms.
    pub deadline_ms: u64,
    /// One entry per multiplier, in order.
    pub arms: Vec<OverloadArm>,
}

/// Per-request engine deadline used by the overload server: generous —
/// it exists so no single query can pin a worker past the test, not to
/// shape latency.
const OVERLOAD_DEADLINE: Duration = Duration::from_secs(5);

/// Drives one open-loop arm at `multiplier × base_rps` against a fresh
/// admission-controlled server and collects the outcome counts.
///
/// The generator is *open-loop*: slot `i` is scheduled at
/// `i / offered_rps` and is sent (over a one-shot connection — the
/// worker pool is connection-granular, so persistent connections would
/// convert overload into client-side queueing instead of server-side
/// shedding) whether or not earlier requests have completed. A pool of
/// generator threads claims slots from an atomic counter and sleeps
/// until each slot's scheduled time.
///
/// # Panics
///
/// Panics when the server cannot bind or a response has an unexpected
/// status — shed must be an explicit `503`, not garbage.
pub fn run_overload_arm(multiplier: f64, base_rps: f64, cfg: &LoadtestConfig) -> OverloadArm {
    let mut service_opts = cfg.service_options(true);
    service_opts.deadline = Some(OVERLOAD_DEADLINE);
    service_opts.max_inflight = cfg.clients;
    let server_opts = ServerOptions {
        workers: cfg.clients * 2,
        queue_depth: cfg.clients,
        ..ServerOptions::default()
    };
    let server = rvz_server::spawn_with("127.0.0.1:0", Service::new(service_opts), &server_opts)
        .expect("bind an ephemeral overload port");
    let addr = server.addr().to_string();
    let bodies = workload(cfg.families);
    let client_opts = cfg.client_options();

    let offered_rps = (base_rps * multiplier).max(1.0);
    let duration = Duration::from_millis(cfg.overload_duration_ms.max(1));
    let total = ((offered_rps * duration.as_secs_f64()).ceil() as u64).max(1);
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let generators = (cfg.clients * 8).max(2);

    let slot = AtomicU64::new(0);
    let accepted = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..generators)
            .map(|_| {
                let (addr, bodies) = (&addr, &bodies);
                let (slot, accepted, shed, errors) = (&slot, &accepted, &shed, &errors);
                let client_opts = &client_opts;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    loop {
                        let i = slot.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            return lat;
                        }
                        // Open loop: hold to the schedule, never skip.
                        let sched = interval.mul_f64(i as f64);
                        if let Some(wait) = sched.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let body = &bodies[i as usize % bodies.len()];
                        let t0 = Instant::now();
                        match client::request_with(
                            addr,
                            "POST",
                            "/first-contact",
                            Some(body),
                            client_opts,
                        ) {
                            Ok(resp) if resp.status == 200 => {
                                lat.push(t0.elapsed().as_secs_f64() * 1e6);
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(resp) if resp.status == 503 => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(resp) => {
                                panic!("overload arm got unexpected status: {}", resp.status)
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("overload generator panicked"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| percentile(&latencies, p).unwrap_or(f64::NAN);
    let (accepted, shed, errors) = (
        accepted.into_inner(),
        shed.into_inner(),
        errors.into_inner(),
    );
    OverloadArm {
        multiplier,
        offered_rps,
        achieved_offered_rps: total as f64 / wall_s,
        sent: total,
        accepted,
        shed,
        errors,
        shed_rate: shed as f64 / total as f64,
        accepted_latency_us: [pct(50.0), pct(99.0)],
    }
}

/// Runs the open-loop overload arms (1× and 2× of `base_rps` — the
/// closed-loop `no-cache` throughput, i.e. the engine-bound capacity).
pub fn run_overload(cfg: &LoadtestConfig, base_rps: f64) -> OverloadReport {
    let arms = [1.0, 2.0]
        .into_iter()
        .map(|m| run_overload_arm(m, base_rps, cfg))
        .collect();
    OverloadReport {
        duration_ms: cfg.overload_duration_ms,
        base_rps,
        queue_depth: cfg.clients,
        max_inflight: cfg.clients,
        deadline_ms: OVERLOAD_DEADLINE.as_millis() as u64,
        arms,
    }
}

/// The shed-not-collapse gate behind `rvz loadtest --check-overload`:
/// at 2× offered load the server must shed explicitly (nonzero 503s),
/// keep answering (nonzero accepted), and hold the accepted p99 within
/// 5× of the 1× arm's.
///
/// # Errors
///
/// Returns a message naming the violated property.
pub fn check_overload(report: &OverloadReport) -> Result<(), String> {
    let arm = |m: f64| {
        report
            .arms
            .iter()
            .find(|a| a.multiplier == m)
            .ok_or_else(|| format!("overload report is missing the {m}x arm"))
    };
    let warm = arm(1.0)?;
    let over = arm(2.0)?;
    if over.shed == 0 {
        return Err(format!(
            "2x overload shed nothing ({} sent, {} accepted): load shedding is not engaging",
            over.sent, over.accepted
        ));
    }
    if over.accepted == 0 {
        return Err(
            "2x overload accepted nothing: the server collapsed instead of shedding".into(),
        );
    }
    let (warm_p99, over_p99) = (warm.accepted_latency_us[1], over.accepted_latency_us[1]);
    if !(warm_p99.is_finite() && over_p99.is_finite()) {
        return Err(format!(
            "accepted p99 is undefined (warm {warm_p99}, 2x {over_p99}): too few accepted requests"
        ));
    }
    if over_p99 > 5.0 * warm_p99 {
        return Err(format!(
            "2x overload accepted p99 {over_p99:.0}us exceeds 5x the warm p99 {warm_p99:.0}us"
        ));
    }
    Ok(())
}

/// The human-readable comparison table.
pub fn render_table(arms: &[ArmReport], speedup: f64) -> String {
    let mut table = crate::Table::new(&[
        "arm", "requests", "wall s", "req/s", "p50 µs", "p90 µs", "p99 µs", "max µs", "hits",
        "misses",
    ]);
    for arm in arms {
        table.row_owned(vec![
            arm.name.to_string(),
            arm.requests.to_string(),
            format!("{:.3}", arm.wall_s),
            format!("{:.0}", arm.rps),
            format!("{:.0}", arm.latency_us[0]),
            format!("{:.0}", arm.latency_us[1]),
            format!("{:.0}", arm.latency_us[2]),
            format!("{:.0}", arm.latency_us[3]),
            arm.hits.to_string(),
            arm.misses.to_string(),
        ]);
    }
    format!(
        "{}cache-warm symmetric workload speedup: {speedup:.1}× (cached vs no-cache)\n",
        table.render()
    )
}

/// The human-readable open-loop overload table.
pub fn render_overload_table(report: &OverloadReport) -> String {
    let mut table = crate::Table::new(&[
        "offered",
        "target r/s",
        "achieved r/s",
        "sent",
        "accepted",
        "shed",
        "errors",
        "shed %",
        "acc p50 µs",
        "acc p99 µs",
    ]);
    for arm in &report.arms {
        table.row_owned(vec![
            format!("{:.0}×", arm.multiplier),
            format!("{:.0}", arm.offered_rps),
            format!("{:.0}", arm.achieved_offered_rps),
            arm.sent.to_string(),
            arm.accepted.to_string(),
            arm.shed.to_string(),
            arm.errors.to_string(),
            format!("{:.1}", arm.shed_rate * 100.0),
            format!("{:.0}", arm.accepted_latency_us[0]),
            format!("{:.0}", arm.accepted_latency_us[1]),
        ]);
    }
    format!(
        "{}open loop vs capacity {:.0} r/s (queue {}, in-flight {}, deadline {} ms)\n",
        table.render(),
        report.base_rps,
        report.queue_depth,
        report.max_inflight,
        report.deadline_ms,
    )
}

/// The machine-readable `BENCH_serve.json` document (schema v3: the v2
/// closed-loop arms and open-loop `overload` object, plus each arm's
/// full latency histogram as `(bucket_upper_us, count)` pairs).
pub fn render_json(
    arms: &[ArmReport],
    speedup: f64,
    overload: &OverloadReport,
    cfg: &LoadtestConfig,
) -> String {
    let arm_json = |arm: &ArmReport| {
        Json::obj(vec![
            ("name", Json::Str(arm.name.to_string())),
            ("requests", Json::Num(arm.requests as f64)),
            ("wall_s", Json::Num((arm.wall_s * 1e6).round() / 1e6)),
            ("rps", Json::Num(arm.rps.round())),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::Num(arm.latency_us[0].round())),
                    ("p90", Json::Num(arm.latency_us[1].round())),
                    ("p99", Json::Num(arm.latency_us[2].round())),
                    ("max", Json::Num(arm.latency_us[3].round())),
                ]),
            ),
            (
                "latency_histogram",
                Json::obj(vec![
                    ("count", Json::Num(arm.latency_histogram.count as f64)),
                    (
                        "buckets",
                        Json::Arr(
                            arm.latency_histogram
                                .nonzero()
                                .into_iter()
                                .map(|(upper, count)| {
                                    Json::Arr(vec![
                                        Json::Num(upper as f64),
                                        Json::Num(count as f64),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Num(arm.hits as f64)),
                    ("misses", Json::Num(arm.misses as f64)),
                ]),
            ),
        ])
    };
    let overload_arm_json = |arm: &OverloadArm| {
        Json::obj(vec![
            ("multiplier", Json::Num(arm.multiplier)),
            ("offered_rps", Json::Num(arm.offered_rps.round())),
            (
                "achieved_offered_rps",
                Json::Num(arm.achieved_offered_rps.round()),
            ),
            ("sent", Json::Num(arm.sent as f64)),
            ("accepted", Json::Num(arm.accepted as f64)),
            ("shed", Json::Num(arm.shed as f64)),
            ("errors", Json::Num(arm.errors as f64)),
            ("shed_rate", Json::Num((arm.shed_rate * 1e4).round() / 1e4)),
            (
                "accepted_latency_us",
                Json::obj(vec![
                    ("p50", Json::Num(arm.accepted_latency_us[0].round())),
                    ("p99", Json::Num(arm.accepted_latency_us[1].round())),
                ]),
            ),
        ])
    };
    let doc = Json::obj(vec![
        ("schema", Json::Str("rvz-bench-serve/v3".to_string())),
        (
            "mode",
            Json::Str(if cfg.quick { "quick" } else { "full" }.to_string()),
        ),
        ("clients", Json::Num(cfg.clients as f64)),
        (
            "requests_per_client",
            Json::Num(cfg.requests_per_client as f64),
        ),
        ("families", Json::Num(cfg.families as f64)),
        ("arms", Json::Arr(arms.iter().map(arm_json).collect())),
        ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
        (
            "overload",
            Json::obj(vec![
                ("duration_ms", Json::Num(overload.duration_ms as f64)),
                ("base_rps", Json::Num(overload.base_rps.round())),
                ("queue_depth", Json::Num(overload.queue_depth as f64)),
                ("max_inflight", Json::Num(overload.max_inflight as f64)),
                ("deadline_ms", Json::Num(overload.deadline_ms as f64)),
                (
                    "arms",
                    Json::Arr(overload.arms.iter().map(overload_arm_json).collect()),
                ),
            ]),
        ),
    ]);
    // Pretty-ish: one arm per line for reviewable diffs.
    doc.render()
        .replace("{\"name\"", "\n  {\"name\"")
        .replace("],\"speedup\"", "\n ],\"speedup\"")
        .replace("{\"multiplier\"", "\n  {\"multiplier\"")
        .replace(",\"overload\"", ",\n \"overload\"")
        + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_experiments::DEFAULT_GRID;

    #[test]
    fn workload_families_pair_into_single_orbits() {
        let bodies = workload(8);
        assert_eq!(bodies.len(), 16);
        for pair in bodies.chunks(2) {
            let parse = |b: &str| {
                rvz_experiments::scenario_from_json(&rvz_experiments::json::parse(b).unwrap())
                    .unwrap()
            };
            let a = parse(&pair[0]).canonicalize(DEFAULT_GRID);
            let b = parse(&pair[1]).canonicalize(DEFAULT_GRID);
            assert_eq!(a.key, b.key, "workload pair split orbits: {pair:?}");
        }
        // Distinct families stay distinct orbits.
        let keys: std::collections::HashSet<_> = bodies
            .iter()
            .map(|b| {
                rvz_experiments::scenario_from_json(&rvz_experiments::json::parse(b).unwrap())
                    .unwrap()
                    .canonicalize(DEFAULT_GRID)
                    .key
            })
            .collect();
        assert_eq!(keys.len(), 8, "8 families, 8 orbits");
    }

    fn overload_fixture() -> OverloadReport {
        let warm = OverloadArm {
            multiplier: 1.0,
            offered_rps: 100.0,
            achieved_offered_rps: 99.0,
            sent: 40,
            accepted: 38,
            shed: 2,
            errors: 0,
            shed_rate: 0.05,
            accepted_latency_us: [900.0, 2_000.0],
        };
        let over = OverloadArm {
            multiplier: 2.0,
            offered_rps: 200.0,
            achieved_offered_rps: 195.0,
            sent: 80,
            accepted: 41,
            shed: 39,
            errors: 0,
            shed_rate: 0.4875,
            accepted_latency_us: [1_500.0, 6_000.0],
        };
        OverloadReport {
            duration_ms: 400,
            base_rps: 100.0,
            queue_depth: 2,
            max_inflight: 2,
            deadline_ms: 5_000,
            arms: vec![warm, over],
        }
    }

    #[test]
    fn renderers_cover_both_arms() {
        let arm = ArmReport {
            name: "cached",
            requests: 100,
            wall_s: 0.5,
            rps: 200.0,
            latency_us: [10.0, 20.0, 30.0, 40.0],
            latency_histogram: HistogramSnapshot::from_values([10, 20, 30, 40]),
            hits: 92,
            misses: 8,
        };
        let arms = vec![
            arm.clone(),
            ArmReport {
                name: "no-cache",
                ..arm
            },
        ];
        let table = render_table(&arms, 12.5);
        assert!(table.contains("cached") && table.contains("no-cache"));
        assert!(table.contains("12.5×"));
        let overload = overload_fixture();
        let overload_table = render_overload_table(&overload);
        assert!(overload_table.contains("1×") && overload_table.contains("2×"));
        let json = render_json(&arms, 12.5, &overload, &LoadtestConfig::new(true));
        let parsed = rvz_experiments::json::parse(json.trim()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("rvz-bench-serve/v3")
        );
        assert_eq!(parsed.get("speedup").and_then(Json::as_f64), Some(12.5));
        assert_eq!(
            parsed.get("arms").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
        let hist = parsed.get("arms").and_then(Json::as_array).unwrap()[0]
            .get("latency_histogram")
            .expect("v3 arms carry the full latency histogram");
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(4.0));
        let buckets = hist.get("buckets").and_then(Json::as_array).unwrap();
        assert!(!buckets.is_empty());
        // Each bucket is an [upper_bound_us, count] pair; the total of
        // the counts matches the histogram count.
        let total: f64 = buckets
            .iter()
            .map(|b| {
                let pair = b.as_array().expect("bucket pair");
                assert_eq!(pair.len(), 2);
                pair[1].as_f64().expect("count")
            })
            .sum();
        assert_eq!(total, 4.0);
        let over = parsed.get("overload").expect("v2 carries overload");
        assert_eq!(over.get("base_rps").and_then(Json::as_f64), Some(100.0));
        let over_arms = over.get("arms").and_then(Json::as_array).unwrap();
        assert_eq!(over_arms.len(), 2);
        assert_eq!(over_arms[1].get("shed").and_then(Json::as_f64), Some(39.0));
        assert_eq!(
            over_arms[1]
                .get("accepted_latency_us")
                .and_then(|l| l.get("p99"))
                .and_then(Json::as_f64),
            Some(6_000.0)
        );
    }

    #[test]
    fn check_overload_accepts_shed_not_collapse_and_names_violations() {
        let good = overload_fixture();
        assert!(check_overload(&good).is_ok());

        let mut no_shed = good.clone();
        no_shed.arms[1].shed = 0;
        assert!(check_overload(&no_shed)
            .unwrap_err()
            .contains("shed nothing"));

        let mut collapsed = good.clone();
        collapsed.arms[1].accepted = 0;
        assert!(check_overload(&collapsed)
            .unwrap_err()
            .contains("collapsed"));

        let mut slow = good.clone();
        slow.arms[1].accepted_latency_us[1] = 5.0 * good.arms[0].accepted_latency_us[1] + 1.0;
        assert!(check_overload(&slow).unwrap_err().contains("exceeds 5x"));

        let mut missing = good;
        missing.arms.truncate(1);
        assert!(check_overload(&missing)
            .unwrap_err()
            .contains("missing the 2x arm"));
    }
}
