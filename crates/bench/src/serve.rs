//! The `rvz loadtest` harness: a closed-loop client generator against an
//! in-process `rvz serve` instance, A/B-ing the symmetry-canonicalized
//! cache against `--no-cache`.
//!
//! The workload is deliberately **symmetric**: a handful of scenario
//! families, each queried under *both* of its role-swap descriptions, so
//! a caching server sees every family as one canonical orbit (first
//! touch misses, everything after hits) while the `--no-cache` arm pays
//! an engine run per request. The families are engine-heavy on purpose
//! — twin disproofs that must be pushed to the horizon — because that is
//! exactly the traffic a feasibility service is slowest on and exactly
//! where the orbit cache pays.
//!
//! Both arms run the same closed loop: `clients` persistent keep-alive
//! connections, each issuing `requests_per_client` `POST /first-contact`
//! queries back-to-back, per-request latency recorded client-side. The
//! cached arm includes its cold misses — "cache-warm" is earned inside
//! the measured window, not before it.

use rvz_experiments::{percentile, Json};
use rvz_server::{HttpClient, Service, ServiceOptions};
use rvz_sim::ContactOptions;
use std::time::Instant;

/// Loadtest shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadtestConfig {
    /// Sub-second smoke variant for CI.
    pub quick: bool,
    /// Concurrent closed-loop clients (and server workers).
    pub clients: usize,
    /// Requests per client per arm.
    pub requests_per_client: usize,
    /// Scenario families (each contributes two orbit-mate descriptions).
    pub families: usize,
}

impl LoadtestConfig {
    /// The default configuration for a mode.
    pub fn new(quick: bool) -> Self {
        if quick {
            LoadtestConfig {
                quick,
                clients: 2,
                requests_per_client: 25,
                families: 4,
            }
        } else {
            LoadtestConfig {
                quick,
                clients: 4,
                requests_per_client: 150,
                families: 8,
            }
        }
    }

    /// Engine options for the serving arms: horizons deep enough that a
    /// twin disproof is an *expensive* engine run (that is the workload
    /// the cache is for), shallower in quick mode.
    fn service_options(&self, no_cache: bool) -> ServiceOptions {
        let rounds = if self.quick { 7 } else { 10 };
        ServiceOptions {
            no_cache,
            sweep: rvz_experiments::SweepOptions {
                threads: 1,
                contact: ContactOptions {
                    horizon: rvz_core::completion_time(rounds),
                    max_steps: 500_000,
                    ..ContactOptions::default()
                },
                ..rvz_experiments::SweepOptions::default()
            },
            ..ServiceOptions::default()
        }
    }
}

/// One measured arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmReport {
    /// `"cached"` or `"no-cache"`.
    pub name: &'static str,
    /// Total requests issued.
    pub requests: u64,
    /// Wall-clock for the whole closed loop.
    pub wall_s: f64,
    /// Throughput, requests per second.
    pub rps: f64,
    /// Client-observed per-request latency `[p50, p90, p99, max]` in µs.
    pub latency_us: [f64; 4],
    /// Cache hits observed by the server.
    pub hits: u64,
    /// Cache misses (engine runs) observed by the server.
    pub misses: u64,
}

/// The request bodies of the symmetric workload: `families` scenario
/// families × two role-swap descriptions each, interleaved.
pub fn workload(families: usize) -> Vec<String> {
    let mut scenarios = Vec::new();
    for i in 0..families {
        let phase = i as f64 / families.max(1) as f64;
        let scenario = match i % 4 {
            // Mirror twins (infeasible): adversarial placement along the
            // invariant direction φ/2 forces a full horizon disproof.
            0 => {
                let phi = 0.4 + 1.1 * phase;
                format!(
                    concat!(
                        "{{\"algorithm\":\"alg7\",\"speed\":1,\"time_unit\":1,",
                        "\"orientation\":{phi},\"chirality\":\"-1\",\"distance\":1,",
                        "\"bearing\":{bearing},\"visibility\":0.05}}"
                    ),
                    phi = phi,
                    bearing = phi / 2.0,
                )
            }
            // Exact twins under Algorithm 4: the `universal_twins_horizon`
            // shape, the engine-heaviest disproof family.
            1 => format!(
                concat!(
                    "{{\"algorithm\":\"alg4\",\"speed\":1,\"time_unit\":1,\"orientation\":0,",
                    "\"chirality\":\"+1\",\"distance\":{d},\"bearing\":0,\"visibility\":0.05}}"
                ),
                d = 1.0 + 0.5 * phase,
            ),
            // Feasible far pair broken by clocks: a long Algorithm 7
            // chase before contact.
            2 => format!(
                concat!(
                    "{{\"algorithm\":\"alg7\",\"speed\":1,\"time_unit\":{tau},",
                    "\"orientation\":0,\"chirality\":\"+1\",\"distance\":{d},",
                    "\"bearing\":1.1,\"visibility\":0.05}}"
                ),
                tau = 0.5 + 0.25 * phase,
                d = 1.5 + phase,
            ),
            // Feasible speed-breaker pair.
            _ => format!(
                concat!(
                    "{{\"algorithm\":\"alg7\",\"speed\":{v},\"time_unit\":1,",
                    "\"orientation\":0,\"chirality\":\"+1\",\"distance\":1.2,",
                    "\"bearing\":0.7,\"visibility\":0.05}}"
                ),
                v = 0.5 + 0.3 * phase,
            ),
        };
        scenarios.push(scenario);
    }

    // Each family is queried under both orbit-mate descriptions.
    let mut bodies = Vec::with_capacity(scenarios.len() * 2);
    for body in &scenarios {
        let parsed = rvz_experiments::json::parse(body).expect("workload bodies are JSON");
        let scenario = rvz_experiments::scenario_from_json(&parsed).expect("workload is valid");
        let (twin, _) = scenario.role_swap();
        bodies.push(body.clone());
        bodies.push(format!(
            concat!(
                "{{\"algorithm\":\"{}\",\"speed\":{},\"time_unit\":{},\"orientation\":{},",
                "\"chirality\":\"{}\",\"distance\":{},\"bearing\":{},\"visibility\":{}}}"
            ),
            twin.algorithm,
            twin.speed,
            twin.time_unit,
            twin.orientation,
            twin.chirality,
            twin.distance,
            twin.bearing,
            twin.visibility,
        ));
    }
    bodies
}

/// Runs one arm: spawn a fresh in-process server, drive the closed
/// loop, collect the report.
///
/// # Panics
///
/// Panics when the server cannot bind, a request fails, or a response
/// is not `200` — a loadtest against a broken server is meaningless.
pub fn run_arm(name: &'static str, no_cache: bool, cfg: &LoadtestConfig) -> ArmReport {
    let service = Service::new(cfg.service_options(no_cache));
    let server = rvz_server::spawn("127.0.0.1:0", service, cfg.clients.max(1))
        .expect("bind an ephemeral loadtest port");
    let addr = server.addr().to_string();
    let bodies = workload(cfg.families);

    let start = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let addr = &addr;
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut conn = HttpClient::connect(addr).expect("loadtest client connects");
                    let mut lat = Vec::with_capacity(cfg.requests_per_client);
                    for j in 0..cfg.requests_per_client {
                        // Interleave clients across the family list so
                        // the symmetric structure is visible early.
                        let body = &bodies[(client + j * cfg.clients) % bodies.len()];
                        let t0 = Instant::now();
                        let resp = conn
                            .request("POST", "/first-contact", Some(body))
                            .expect("loadtest request succeeds");
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(resp.status, 200, "loadtest got: {}", resp.body);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("loadtest client panicked"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let stats = server.service().cache_stats();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| percentile(&latencies, p).expect("non-empty latency sample");
    let requests = (cfg.clients * cfg.requests_per_client) as u64;
    ArmReport {
        name,
        requests,
        wall_s,
        rps: requests as f64 / wall_s,
        latency_us: [
            pct(50.0),
            pct(90.0),
            pct(99.0),
            *latencies.last().expect("non-empty"),
        ],
        hits: stats.hits,
        misses: stats.misses,
    }
}

/// Runs both arms (cached first, then `--no-cache`) and returns the
/// reports plus the throughput ratio `cached / no-cache`.
pub fn run_loadtest(cfg: &LoadtestConfig) -> (Vec<ArmReport>, f64) {
    let cached = run_arm("cached", false, cfg);
    let uncached = run_arm("no-cache", true, cfg);
    let speedup = cached.rps / uncached.rps;
    (vec![cached, uncached], speedup)
}

/// The human-readable comparison table.
pub fn render_table(arms: &[ArmReport], speedup: f64) -> String {
    let mut table = crate::Table::new(&[
        "arm", "requests", "wall s", "req/s", "p50 µs", "p90 µs", "p99 µs", "max µs", "hits",
        "misses",
    ]);
    for arm in arms {
        table.row_owned(vec![
            arm.name.to_string(),
            arm.requests.to_string(),
            format!("{:.3}", arm.wall_s),
            format!("{:.0}", arm.rps),
            format!("{:.0}", arm.latency_us[0]),
            format!("{:.0}", arm.latency_us[1]),
            format!("{:.0}", arm.latency_us[2]),
            format!("{:.0}", arm.latency_us[3]),
            arm.hits.to_string(),
            arm.misses.to_string(),
        ]);
    }
    format!(
        "{}cache-warm symmetric workload speedup: {speedup:.1}× (cached vs no-cache)\n",
        table.render()
    )
}

/// The machine-readable `BENCH_serve.json` document.
pub fn render_json(arms: &[ArmReport], speedup: f64, cfg: &LoadtestConfig) -> String {
    let arm_json = |arm: &ArmReport| {
        Json::obj(vec![
            ("name", Json::Str(arm.name.to_string())),
            ("requests", Json::Num(arm.requests as f64)),
            ("wall_s", Json::Num((arm.wall_s * 1e6).round() / 1e6)),
            ("rps", Json::Num(arm.rps.round())),
            (
                "latency_us",
                Json::obj(vec![
                    ("p50", Json::Num(arm.latency_us[0].round())),
                    ("p90", Json::Num(arm.latency_us[1].round())),
                    ("p99", Json::Num(arm.latency_us[2].round())),
                    ("max", Json::Num(arm.latency_us[3].round())),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Num(arm.hits as f64)),
                    ("misses", Json::Num(arm.misses as f64)),
                ]),
            ),
        ])
    };
    let doc = Json::obj(vec![
        ("schema", Json::Str("rvz-bench-serve/v1".to_string())),
        (
            "mode",
            Json::Str(if cfg.quick { "quick" } else { "full" }.to_string()),
        ),
        ("clients", Json::Num(cfg.clients as f64)),
        (
            "requests_per_client",
            Json::Num(cfg.requests_per_client as f64),
        ),
        ("families", Json::Num(cfg.families as f64)),
        ("arms", Json::Arr(arms.iter().map(arm_json).collect())),
        ("speedup", Json::Num((speedup * 100.0).round() / 100.0)),
    ]);
    // Pretty-ish: one arm per line for reviewable diffs.
    doc.render()
        .replace("{\"name\"", "\n  {\"name\"")
        .replace("],\"speedup\"", "\n ],\"speedup\"")
        + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_experiments::DEFAULT_GRID;

    #[test]
    fn workload_families_pair_into_single_orbits() {
        let bodies = workload(8);
        assert_eq!(bodies.len(), 16);
        for pair in bodies.chunks(2) {
            let parse = |b: &str| {
                rvz_experiments::scenario_from_json(&rvz_experiments::json::parse(b).unwrap())
                    .unwrap()
            };
            let a = parse(&pair[0]).canonicalize(DEFAULT_GRID);
            let b = parse(&pair[1]).canonicalize(DEFAULT_GRID);
            assert_eq!(a.key, b.key, "workload pair split orbits: {pair:?}");
        }
        // Distinct families stay distinct orbits.
        let keys: std::collections::HashSet<_> = bodies
            .iter()
            .map(|b| {
                rvz_experiments::scenario_from_json(&rvz_experiments::json::parse(b).unwrap())
                    .unwrap()
                    .canonicalize(DEFAULT_GRID)
                    .key
            })
            .collect();
        assert_eq!(keys.len(), 8, "8 families, 8 orbits");
    }

    #[test]
    fn renderers_cover_both_arms() {
        let arm = ArmReport {
            name: "cached",
            requests: 100,
            wall_s: 0.5,
            rps: 200.0,
            latency_us: [10.0, 20.0, 30.0, 40.0],
            hits: 92,
            misses: 8,
        };
        let arms = vec![
            arm.clone(),
            ArmReport {
                name: "no-cache",
                ..arm
            },
        ];
        let table = render_table(&arms, 12.5);
        assert!(table.contains("cached") && table.contains("no-cache"));
        assert!(table.contains("12.5×"));
        let json = render_json(&arms, 12.5, &LoadtestConfig::new(true));
        let parsed = rvz_experiments::json::parse(json.trim()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("rvz-bench-serve/v1")
        );
        assert_eq!(parsed.get("speedup").and_then(Json::as_f64), Some(12.5));
        assert_eq!(
            parsed.get("arms").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
    }
}
