//! First-contact engine throughput: seed engine vs. monotone-cursor
//! fast path.
//!
//! ```text
//! cargo bench -p rvz-bench --bench first_contact_throughput [-- --quick]
//! ```
//!
//! Runs the canonical engine case set (see `rvz_bench::engine`) through
//! both engines and prints wall time, advancement steps and position
//! queries side by side, so a speedup is attributable to fewer queries
//! (analytic jumps) versus cheaper queries (cursor caching). The same
//! measurements back the machine-readable `BENCH_engine.json` emitted by
//! `rvz bench-engine`.

use rvz_bench::engine::{
    batch_summary, grazing_summary, measure_all, measure_batches, render_batch_table, render_table,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let prune = !std::env::args().any(|a| a == "--no-prune");
    println!(
        "first_contact_throughput ({} mode{}): seed engine vs cursor fast path vs compiled programs\n",
        if quick { "quick" } else { "full" },
        if prune { "" } else { ", pruning off" }
    );
    let measurements = measure_all(quick, prune);
    print!("{}", render_table(&measurements));
    println!("\n{}", grazing_summary(&measurements));
    let batches = measure_batches(quick);
    print!("\n{}", render_batch_table(&batches));
    println!("\n{}", batch_summary(&batches));
}
