//! E1 + E3 — Theorem 1 / Lemma 3: universal search time vs. the
//! `6(π+1)·log(d²/r)·d²/r` bound, across a `(d, r)` sweep.
//!
//! The printed table is the reproduction artifact; the Criterion group
//! then measures the cost of the analytic discovery oracle and of the
//! conservative-advancement simulation on a representative instance.

use criterion::{criterion_group, Criterion};
use rvz_bench::{fnum, Table};
use rvz_geometry::Vec2;
use rvz_model::SearchInstance;
use rvz_search::{coverage, first_discovery, UniversalSearch};
use rvz_sim::{simulate_search, ContactOptions};
use std::hint::black_box;
use std::time::Duration;

fn print_table() {
    let mut t = Table::new(&[
        "d", "r", "d²/r", "found round", "witness k", "measured T", "Thm-1 bound", "T/bound",
        "Lemma 3",
    ]);
    // Off-axis direction so discovery is via the circle sweep (Lemma 3's
    // regime); see EXPERIMENTS.md E3 for the on-axis caveat.
    let dir = Vec2::from_polar(1.0, 1.1);
    for &d in &[0.31, 0.9, 1.7, 3.3, 6.1, 13.0] {
        for rexp in [-6, -10, -14] {
            let r = (rexp as f64).exp2();
            let inst = SearchInstance::new(dir * d, r).unwrap();
            let found = first_discovery(&inst, 31).expect("within budget");
            let bound = coverage::theorem1_bound(d, r);
            let witness = coverage::lemma1_witness(d, r)
                .map(|w| w.round.to_string())
                .unwrap_or_else(|| "-".into());
            // Lemma 3's implicit hypotheses: the discovery sub-round has
            // d ≥ δ_{j,k} and r ≤ ρ_{j,k}. Outside that regime the
            // certificate may miss by a constant (see EXPERIMENTS.md E3).
            let in_regime = d >= rvz_search::times::inner_radius(found.round, found.subround)
                && r <= rvz_search::times::granularity(found.round, found.subround);
            let certified = inst.difficulty() >= coverage::lemma3_lower_bound(found.round);
            let lemma3_cell = match (in_regime, certified) {
                (true, true) => "holds".to_string(),
                (true, false) => "VIOLATED".to_string(),
                (false, c) => format!("n/a coarse-r ({})", if c { "holds" } else { "misses" }),
            };
            if in_regime {
                assert!(certified, "Lemma 3 violated in-regime at d={d}, r=2^{rexp}");
            }
            t.row_owned(vec![
                fnum(d),
                format!("2^{rexp}"),
                fnum(inst.difficulty()),
                found.round.to_string(),
                witness,
                fnum(found.time),
                fnum(bound),
                fnum(found.time / bound),
                lemma3_cell,
            ]);
            assert!(found.time < bound, "Theorem 1 violated at d={d}, r=2^{rexp}");
        }
    }
    t.print("E1/E3 — Theorem 1 search bound & Lemma 3 certificate (measured = analytic oracle)");
}

fn benches(c: &mut Criterion) {
    let inst = SearchInstance::new(Vec2::new(0.9, 1.3), 1e-4).unwrap();
    c.bench_function("search/analytic_discovery", |b| {
        b.iter(|| first_discovery(black_box(&inst), 31))
    });
    let easy = SearchInstance::new(Vec2::new(0.4, 0.7), 1e-2).unwrap();
    c.bench_function("search/simulated_discovery", |b| {
        b.iter(|| {
            simulate_search(
                UniversalSearch,
                black_box(&easy),
                &ContactOptions::with_horizon(1e6),
            )
        })
    });
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}

fn main() {
    print_table();
    group();
    Criterion::default().configure_from_args().final_summary();
}
