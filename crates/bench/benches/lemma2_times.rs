//! E2 — Lemma 2: the closed-form running times of Algorithms 1–4 against
//! the durations of the explicitly generated trajectories.

use criterion::{criterion_group, Criterion};
use rvz_bench::{fnum, Table};
use rvz_search::{search_annulus, search_circle, search_round, times, RoundSchedule};
use std::hint::black_box;
use std::time::Duration;

fn print_circle_table() {
    let mut t = Table::new(&["δ", "explicit path", "2(π+1)δ", "match"]);
    for &delta in &[0.125, 0.5, 1.0, 3.0, 17.0] {
        let explicit = search_circle(delta).duration();
        let closed = times::search_circle_duration(delta);
        t.row_owned(vec![
            fnum(delta),
            fnum(explicit),
            fnum(closed),
            ok(explicit, closed),
        ]);
    }
    t.print("E2a — Lemma 2: SearchCircle(δ) duration");
}

fn print_annulus_table() {
    let mut t = Table::new(&["δ₁", "δ₂", "ρ", "m", "explicit path", "2(π+1)(1+m)(δ₁+ρm)", "match"]);
    for &(d1, d2, rho) in &[
        (0.5, 1.0, 0.0625),
        (0.25, 0.5, 0.01),
        (1.0, 2.0, 0.125),
        (2.0, 4.0, 0.5),
        (0.1, 0.9, 0.07),
    ] {
        let explicit = search_annulus(d1, d2, rho).duration();
        let closed = times::search_annulus_duration(d1, d2, rho);
        t.row_owned(vec![
            fnum(d1),
            fnum(d2),
            fnum(rho),
            times::annulus_steps(d1, d2, rho).to_string(),
            fnum(explicit),
            fnum(closed),
            ok(explicit, closed),
        ]);
    }
    t.print("E2b — Lemma 2: SearchAnnulus(δ₁, δ₂, ρ) duration");
}

fn print_round_table() {
    let mut t = Table::new(&[
        "k",
        "explicit Search(k)",
        "3(π+1)(k+1)2^{k+1}",
        "first k rounds (stream)",
        "3(π+1)k·2^{k+2}",
        "match",
    ]);
    let mut acc = 0.0;
    for k in 1..=8u32 {
        // k ≤ 8 keeps the explicit stream small enough (≈ 4^k segments).
        let explicit: f64 = RoundSchedule::new(k).segments().map(|s| s.duration()).sum();
        let closed = times::round_duration(k);
        acc += explicit;
        let total_closed = times::rounds_total(k);
        let both = approx(explicit, closed) && approx(acc, total_closed);
        t.row_owned(vec![
            k.to_string(),
            fnum(explicit),
            fnum(closed),
            fnum(acc),
            fnum(total_closed),
            if both { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print("E2c — Lemma 2: Search(k) and Algorithm 4 cumulative durations");
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn ok(a: f64, b: f64) -> String {
    if approx(a, b) { "yes".into() } else { "NO".into() }
}

fn benches(c: &mut Criterion) {
    c.bench_function("lemma2/closed_form_round_duration", |b| {
        b.iter(|| times::round_duration(black_box(20)))
    });
    c.bench_function("lemma2/explicit_round_path_k4", |b| {
        b.iter(|| search_round(black_box(4)).duration())
    });
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}

fn main() {
    print_circle_table();
    print_annulus_table();
    print_round_table();
    group();
    Criterion::default().configure_from_args().final_summary();
}
