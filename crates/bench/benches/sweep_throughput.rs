//! Sweep throughput: instances/second of the parallel batch executor.
//!
//! ```text
//! cargo bench -p rvz-bench --bench sweep_throughput
//! ```
//!
//! Runs a fixed feasible-heavy attribute grid through
//! `rvz_experiments::run_sweep` at increasing thread counts and reports
//! wall-clock throughput plus the parallel speedup over one thread. The
//! harness is hand-rolled (`harness = false`, no Criterion dependency):
//! each configuration is run once warm after a discarded warm-up pass,
//! which is plenty to read scaling off a workload of thousands of
//! simulations.

use rvz_bench::Table;
use rvz_experiments::{run_sweep, ScenarioGrid, Summary, SweepOptions};
use rvz_model::Chirality;
use std::time::Instant;

fn grid() -> ScenarioGrid {
    // 5·4·4·2·4 = 640 scenarios, mostly feasible so the benchmark
    // measures simulation work rather than step-budget exhaustion.
    ScenarioGrid::new()
        .speeds(&[0.4, 0.6, 0.8, 1.2, 1.5])
        .clocks(&[0.5, 0.8, 1.25, 2.0])
        .orientations(&[0.0, 0.9, 1.8, 2.7])
        .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
        .distances(&[0.5, 0.8, 1.1, 1.4])
        .visibilities(&[0.1])
}

fn main() {
    let scenarios = grid().build();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "sweep_throughput: {} scenarios, {} CPUs available\n",
        scenarios.len(),
        available
    );

    // Warm-up (also sanity-checks the workload).
    let warm = run_sweep(
        &scenarios,
        &SweepOptions {
            threads: available,
            ..Default::default()
        },
    );
    let summary = Summary::from_records(&warm);
    println!("{}", summary.render());

    let mut table = Table::new(&[
        "threads",
        "wall [s]",
        "instances/s",
        "engine steps",
        "steps/s",
        "speedup",
    ]);
    let mut base = None;
    let mut threads = 1;
    while threads <= available {
        let start = Instant::now();
        let records = run_sweep(
            &scenarios,
            &SweepOptions {
                threads,
                ..Default::default()
            },
        );
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(records.len(), scenarios.len());
        // Total engine work, so a future throughput change is
        // attributable: fewer steps per instance (engine got smarter) vs
        // more steps per second (steps got cheaper).
        let total_steps: u64 = records.iter().map(|r| r.outcome.steps()).sum();
        let base_wall = *base.get_or_insert(wall);
        table.row_owned(vec![
            threads.to_string(),
            format!("{wall:.3}"),
            format!("{:.0}", scenarios.len() as f64 / wall),
            total_steps.to_string(),
            format!("{:.3e}", total_steps as f64 / wall),
            format!("{:.2}x", base_wall / wall),
        ]);
        threads *= 2;
    }
    println!("{}", table.render());
}
