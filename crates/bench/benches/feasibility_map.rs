//! E6 — Theorem 4: the feasibility characterization as a grid, each cell
//! confirmed by simulation (feasible ⇒ the universal algorithm meets;
//! infeasible ⇒ adversarial placement keeps the distance ≥ d forever).

use criterion::{criterion_group, Criterion};
use rvz_bench::Table;
use rvz_core::{completion_time, WaitAndSearch};
use rvz_geometry::Vec2;
use rvz_model::{feasibility, Chirality, Feasibility, RendezvousInstance, RobotAttributes};
use rvz_sim::{simulate_rendezvous, ContactOptions, SimOutcome};
use std::hint::black_box;
use std::time::Duration;

const R: f64 = 0.25;
const D: f64 = 0.9;

fn confirm(attrs: &RobotAttributes) -> (&'static str, String) {
    match feasibility(attrs) {
        Feasibility::Feasible(b) => {
            let inst = RendezvousInstance::new(Vec2::new(0.4, 0.8), R, *attrs).unwrap();
            let opts = ContactOptions::with_horizon(completion_time(10)).tolerance(R * 1e-6);
            match simulate_rendezvous(WaitAndSearch, &inst, &opts) {
                SimOutcome::Contact { time, .. } => {
                    ("feasible", format!("met at t={time:.1} via {b}"))
                }
                other => ("feasible", format!("NOT CONFIRMED: {other}")),
            }
        }
        Feasibility::Infeasible(reason) => {
            let dir = reason.invariant_direction();
            let inst = RendezvousInstance::new(dir * D, R, *attrs).unwrap();
            let opts = ContactOptions::with_horizon(5e4).tolerance(R * 1e-6);
            match simulate_rendezvous(WaitAndSearch, &inst, &opts) {
                SimOutcome::Horizon { min_distance, .. } if min_distance >= D - 1e-9 => {
                    ("infeasible", format!("distance pinned at {min_distance:.3}"))
                }
                other => ("infeasible", format!("NOT CONFIRMED: {other}")),
            }
        }
    }
}

fn print_table() {
    let mut t = Table::new(&["v", "τ", "φ", "χ", "Theorem 4", "simulation"]);
    let mut all_ok = true;
    for &v in &[0.5, 1.0] {
        for &tau in &[0.6, 1.0] {
            for &phi in &[0.0, 1.3] {
                for &chi in &[Chirality::Consistent, Chirality::Mirrored] {
                    let attrs = RobotAttributes::new(v, tau, phi, chi);
                    let (verdict, detail) = confirm(&attrs);
                    all_ok &= !detail.contains("NOT CONFIRMED");
                    t.row_owned(vec![
                        format!("{v}"),
                        format!("{tau}"),
                        format!("{phi}"),
                        chi.to_string(),
                        verdict.to_string(),
                        detail,
                    ]);
                }
            }
        }
    }
    t.print("E6 — Theorem 4 feasibility map (d = 0.9, r = 0.25, universal Algorithm 7)");
    assert!(all_ok, "some cells were not confirmed by simulation");
}

fn benches(c: &mut Criterion) {
    let grid: Vec<RobotAttributes> = [0.5, 1.0]
        .iter()
        .flat_map(|&v| {
            [0.6, 1.0].iter().map(move |&tau| {
                RobotAttributes::new(v, tau, 1.3, Chirality::Consistent)
            })
        })
        .collect();
    c.bench_function("theorem4/feasibility_predicate", |b| {
        b.iter(|| {
            grid.iter()
                .map(|a| feasibility(black_box(a)).is_feasible())
                .filter(|&f| f)
                .count()
        })
    });
    let attrs = RobotAttributes::reference().with_time_unit(0.6);
    let inst = RendezvousInstance::new(Vec2::new(0.4, 0.8), R, attrs).unwrap();
    c.bench_function("theorem4/universal_rendezvous_sim", |b| {
        b.iter(|| {
            simulate_rendezvous(
                WaitAndSearch,
                black_box(&inst),
                &ContactOptions::with_horizon(completion_time(10)),
            )
        })
    });
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}

fn main() {
    print_table();
    group();
    Criterion::default().configure_from_args().final_summary();
}
