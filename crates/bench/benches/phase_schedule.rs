//! E7 + E8 + E10 — Lemma 8 and Figures 1–3: the Algorithm 7 phase
//! schedule `I(n)`, `A(n)`, the structure of an active phase, and the
//! Lemma 9/10 overlap amounts vs. direct interval intersection.

use criterion::{criterion_group, Criterion};
use rvz_bench::{fnum, Table};
use rvz_core::{
    overlap::{lemma10_tau_range, lemma9_tau_range},
    overlap_lemma10, overlap_lemma9, PhaseSchedule, WaitAndSearch,
};
use rvz_search::times;
use std::hint::black_box;
use std::time::Duration;

/// E7 / Figure 1: the phase boundary closed forms, cross-checked against
/// stream accumulation for small n.
fn print_phase_table() {
    let mut t = Table::new(&[
        "n", "S(n)=12(π+1)n2ⁿ", "I(n) closed", "A(n) closed", "I(n) stream", "match",
    ]);
    let mut acc = 0.0;
    for n in 1..=10u32 {
        let s = PhaseSchedule::search_all_duration(n);
        let i_closed = PhaseSchedule::inactive_start(n);
        let a_closed = PhaseSchedule::active_start(n);
        let i_stream = acc;
        let matches = (i_closed - i_stream).abs() <= 1e-9 * (1.0 + i_stream)
            && (a_closed - (i_stream + 2.0 * s)).abs() <= 1e-9 * (1.0 + i_stream);
        t.row_owned(vec![
            n.to_string(),
            fnum(s),
            fnum(i_closed),
            fnum(a_closed),
            fnum(i_stream),
            if matches { "yes".into() } else { "NO".into() },
        ]);
        acc += 4.0 * s;
    }
    t.print("E7/Fig.1 — Lemma 8 phase boundaries I(n), A(n)");
}

/// E10 / Figure 2: segment-block decomposition of an active phase.
fn print_active_structure() {
    let n = 4u32;
    let mut t = Table::new(&["block", "Search(k)", "starts", "ends"]);
    let mut acc = PhaseSchedule::active_start(n);
    for (i, k) in (1..=n).chain((1..=n).rev()).enumerate() {
        let d = times::round_duration(k);
        t.row_owned(vec![
            format!("{}", i + 1),
            format!("Search({k})"),
            fnum(acc),
            fnum(acc + d),
        ]);
        acc += d;
    }
    assert!((acc - PhaseSchedule::round_end(n)).abs() < 1e-9 * acc);
    t.print("E10/Fig.2 — structure of round 4's active phase (SearchAll ‖ SearchAllRev)");
}

/// E8 / Figure 3: Lemma 9 and Lemma 10 overlap claims vs. computed
/// interval intersections across their hypothesis regions.
fn print_overlap_tables() {
    let mut t9 = Table::new(&["a", "k", "τ", "claimed", "computed", "min(claim, 2S(k))", "hyp"]);
    for a in 0..2u32 {
        for &k in &[2 * (a + 1), 3 * (a + 1), 10, 16] {
            let (lo, hi) = lemma9_tau_range(k, a);
            for frac in [0.0, 0.5, 1.0] {
                let tau = lo + frac * (hi - lo);
                let rep = overlap_lemma9(tau, k, a);
                let cap = rep.claimed.min(rep.reference_interval.1 - rep.reference_interval.0);
                t9.row_owned(vec![
                    a.to_string(),
                    k.to_string(),
                    fnum(tau),
                    fnum(rep.claimed),
                    fnum(rep.computed),
                    fnum(cap),
                    if rep.hypothesis_holds { "yes".into() } else { "no".into() },
                ]);
                if rep.hypothesis_holds {
                    assert!(
                        (rep.computed - cap).abs() <= 1e-6 * (1.0 + cap),
                        "Lemma 9 mismatch at a={a}, k={k}, τ={tau}"
                    );
                }
            }
        }
    }
    t9.print("E8/Fig.3a — Lemma 9 overlap: τ·A(k+1+a) − A(k) vs. interval intersection");

    let mut t10 = Table::new(&["a", "k", "τ", "claimed", "computed", "min(claim, 2S(k−1))", "hyp"]);
    for a in 0..2u32 {
        for &k in &[2 * (a + 1), 8, 14] {
            let (lo, hi) = lemma10_tau_range(k, a);
            for frac in [0.0, 1.0] {
                let tau = lo + frac * (hi - lo);
                let rep = overlap_lemma10(tau, k, a);
                let cap = rep.claimed.min(rep.reference_interval.1 - rep.reference_interval.0);
                t10.row_owned(vec![
                    a.to_string(),
                    k.to_string(),
                    fnum(tau),
                    fnum(rep.claimed),
                    fnum(rep.computed),
                    fnum(cap),
                    if rep.hypothesis_holds { "yes".into() } else { "no".into() },
                ]);
                if rep.hypothesis_holds {
                    assert!(
                        (rep.computed - cap).abs() <= 1e-6 * (1.0 + cap),
                        "Lemma 10 mismatch at a={a}, k={k}, τ={tau}"
                    );
                }
            }
        }
    }
    t10.print("E8/Fig.3b — Lemma 10 overlap: I(k) − τ·I(k+a) vs. interval intersection");
}

fn benches(c: &mut Criterion) {
    c.bench_function("phases/closed_form_boundary", |b| {
        b.iter(|| PhaseSchedule::active_start(black_box(20)))
    });
    use rvz_trajectory::Trajectory;
    let algo = WaitAndSearch;
    let t_deep = PhaseSchedule::active_start(12) + 12345.678;
    c.bench_function("phases/random_access_position_round12", |b| {
        b.iter(|| algo.position(black_box(t_deep)))
    });
    c.bench_function("phases/overlap_lemma9", |b| {
        b.iter(|| overlap_lemma9(black_box(0.55), 10, 0))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}

fn main() {
    print_phase_table();
    print_active_structure();
    print_overlap_tables();
    group();
    Criterion::default().configure_from_args().final_summary();
}
