//! E9 — Theorem 3 / Lemmas 11–13: rendezvous round with asymmetric
//! clocks vs. the Lemma 13 bound `k*`, measured two ways:
//!
//! * **analytic** — the first round whose active/inactive overlap is long
//!   enough for a complete stationary find (independent interval algebra);
//! * **simulated** — full two-robot conservative-advancement simulation
//!   (for the parameter cells where `k*` is small enough to be cheap).

use criterion::{criterion_group, Criterion};
use rvz_bench::{fnum, Table};
use rvz_core::{
    completion_time, first_sufficient_overlap_round, lemma13_round_bound,
    lemma14_time_expression, stationary_contact_time, tau_decomposition, PhaseSchedule,
    WaitAndSearch,
};
use rvz_geometry::Vec2;
use rvz_model::{RendezvousInstance, RobotAttributes};
use rvz_search::coverage;
use rvz_sim::{simulate_rendezvous, ContactOptions};
use std::hint::black_box;
use std::time::Duration;

const R: f64 = 0.25;
const D: Vec2 = Vec2 { x: 0.3, y: 0.8 };

fn print_table() {
    let mut t = Table::new(&[
        "τ", "a", "t", "n", "k* (Lemma 13)", "overlap round", "oracle time", "oracle round",
        "sim round", "sim time", "I(k*) (Lemma 14)",
    ]);
    let d = D.norm();
    let n = coverage::guaranteed_discovery_round(d, R).unwrap();
    for &tau in &[0.95, 0.9, 0.8, 0.7, 0.6, 0.51, 0.5, 0.4, 0.3, 0.25, 0.125] {
        let dec = tau_decomposition(tau);
        let k_star = lemma13_round_bound(tau, n);
        let analytic = first_sufficient_overlap_round(tau, n)
            .map(|k| k.to_string())
            .unwrap_or_else(|| "-".into());
        // The stationary-contact oracle reaches every cell, including the
        // ones where step simulation is prohibitive.
        let (oracle_time, oracle_round) =
            match stationary_contact_time(tau, D, R, k_star.min(30)) {
                Some(c) => {
                    assert!(
                        c.round <= k_star,
                        "τ={tau}: oracle round {} exceeds k* {k_star}",
                        c.round
                    );
                    (fnum(c.time), c.round.to_string())
                }
                None => ("-".into(), "-".into()),
            };
        // Simulate only the cheap cells (simulation cost grows with k*).
        let (sim_round, sim_time) = if k_star <= 10 {
            let attrs = RobotAttributes::reference().with_time_unit(tau);
            let inst = RendezvousInstance::new(D, R, attrs).unwrap();
            let opts =
                ContactOptions::with_horizon(completion_time(k_star)).tolerance(R * 1e-6);
            match simulate_rendezvous(WaitAndSearch, &inst, &opts).contact_time() {
                Some(time) => {
                    let round = PhaseSchedule::round_at(time);
                    assert!(round <= k_star, "τ={tau}: simulated round {round} > k* {k_star}");
                    (round.to_string(), fnum(time))
                }
                None => ("MISS".into(), "-".into()),
            }
        } else {
            ("(skipped)".into(), "-".into())
        };
        if let Some(a_round) = first_sufficient_overlap_round(tau, n) {
            assert!(
                a_round <= k_star,
                "τ={tau}: analytic round {a_round} exceeds k* = {k_star}"
            );
        }
        t.row_owned(vec![
            fnum(tau),
            dec.a.to_string(),
            fnum(dec.t),
            n.to_string(),
            k_star.to_string(),
            analytic,
            oracle_time,
            oracle_round,
            sim_round,
            sim_time,
            fnum(lemma14_time_expression(k_star.min(31))),
        ]);
    }
    t.print(&format!(
        "E9 — Theorem 3 / Lemma 13: rendezvous round vs k* (d = {:.3}, r = {R})",
        d
    ));
}

fn benches(c: &mut Criterion) {
    c.bench_function("theorem3/lemma13_bound", |b| {
        b.iter(|| lemma13_round_bound(black_box(0.7), 3))
    });
    c.bench_function("theorem3/analytic_overlap_round", |b| {
        b.iter(|| first_sufficient_overlap_round(black_box(0.7), 2))
    });
    c.bench_function("theorem3/stationary_contact_oracle", |b| {
        b.iter(|| stationary_contact_time(black_box(0.6), D, R, 12))
    });
    let attrs = RobotAttributes::reference().with_time_unit(0.6);
    let inst = RendezvousInstance::new(D, R, attrs).unwrap();
    c.bench_function("theorem3/simulate_wait_and_search", |b| {
        b.iter(|| {
            simulate_rendezvous(
                WaitAndSearch,
                black_box(&inst),
                &ContactOptions::with_horizon(completion_time(9)),
            )
        })
    });
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}

fn main() {
    print_table();
    group();
    Criterion::default().configure_from_args().final_summary();
}
