//! E12 — design ablation ◆: the paper's per-annulus granularity ladder
//! `ρ_{j,k} = δ²_{j,k}/2^{k+1}` vs. a uniform per-round granularity.
//! The ladder keeps round k at `Θ(k·2^k)`; uniform granularity pays
//! `Θ(2^{3k})` — the gap that justifies the design.

use criterion::{criterion_group, Criterion};
use rvz_baselines::{PaperSchedule, SearchScheduleModel, UniformGranularity};
use rvz_bench::{fnum, Table};
use std::hint::black_box;
use std::time::Duration;

fn print_round_cost_table() {
    let paper = PaperSchedule;
    let uniform = UniformGranularity;
    let mut t = Table::new(&["k", "paper round time", "uniform round time", "ratio"]);
    for k in [2u32, 4, 6, 8, 10, 12] {
        let p = paper.round_time(k);
        let u = uniform.round_time(k);
        t.row_owned(vec![k.to_string(), fnum(p), fnum(u), fnum(u / p)]);
    }
    t.print("E12a — per-round cost: Θ(k·2^k) ladder vs Θ(2^{3k}) uniform");
}

fn print_guaranteed_table() {
    let paper = PaperSchedule;
    let uniform = UniformGranularity;
    let mut t = Table::new(&[
        "d", "r", "paper round", "paper time", "uniform round", "uniform time", "slowdown",
    ]);
    // Non-dyadic distances: on exact powers of two the paper's sweep has a
    // circle at exactly radius d and wins trivially in round 1.
    for &d in &[0.77, 1.23, 2.9] {
        for rexp in [-6, -9, -12] {
            let r = (rexp as f64).exp2();
            let p = paper.guaranteed_search(d, r, 31).expect("paper in budget");
            match uniform.guaranteed_search(d, r, 31) {
                Some(u) => {
                    t.row_owned(vec![
                        fnum(d),
                        format!("2^{rexp}"),
                        p.round.to_string(),
                        fnum(p.time),
                        u.round.to_string(),
                        fnum(u.time),
                        fnum(u.time / p.time),
                    ]);
                    assert!(
                        u.time >= p.time,
                        "ablation unexpectedly beat the paper at d={d}, r=2^{rexp}"
                    );
                }
                None => t.row_owned(vec![
                    fnum(d),
                    format!("2^{rexp}"),
                    p.round.to_string(),
                    fnum(p.time),
                    "-".into(),
                    "out of budget".into(),
                    "∞".into(),
                ]),
            }
        }
    }
    t.print("E12b — guaranteed search time: paper schedule vs uniform-granularity ablation");
}

fn benches(c: &mut Criterion) {
    let paper = PaperSchedule;
    let uniform = UniformGranularity;
    c.bench_function("ablation/paper_guaranteed_search", |b| {
        b.iter(|| paper.guaranteed_search(black_box(1.0), 1e-3, 31))
    });
    c.bench_function("ablation/uniform_guaranteed_search", |b| {
        b.iter(|| uniform.guaranteed_search(black_box(1.0), 1e-3, 31))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}

fn main() {
    print_round_cost_table();
    print_guaranteed_table();
    group();
    Criterion::default().configure_from_args().final_summary();
}
