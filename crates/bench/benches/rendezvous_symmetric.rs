//! E4 + E5 — Theorem 2: rendezvous time with symmetric clocks across
//! speed/orientation sweeps for both chiralities, vs. the paper's bounds
//!
//! ```text
//! χ = +1:  T < 6(π+1)·log(d²/(µr))·d²/(µr),  µ = √(v²−2v·cosφ+1)
//! χ = −1:  T < 6(π+1)·log(d²/((1−v)r))·d²/((1−v)r)
//! ```

use criterion::{criterion_group, Criterion};
use rvz_bench::{fnum, Table};
use rvz_core::{theorem2_bound, EquivalentSearch, Theorem2Bound};
use rvz_geometry::Vec2;
use rvz_model::{Chirality, RendezvousInstance, RobotAttributes};
use rvz_search::UniversalSearch;
use rvz_sim::{simulate_rendezvous, ContactOptions};
use std::hint::black_box;
use std::time::Duration;

const R: f64 = 0.02;
const D: Vec2 = Vec2 { x: 0.33, y: 0.81 };

fn measure(attrs: RobotAttributes, bound: f64) -> f64 {
    let inst = RendezvousInstance::new(D, R, attrs).unwrap();
    let opts = ContactOptions::with_horizon(bound * 1.05).tolerance(R * 1e-9);
    simulate_rendezvous(UniversalSearch, &inst, &opts)
        .contact_time()
        .expect("feasible instance must rendezvous within the bound")
}

fn print_consistent_table() {
    let mut t = Table::new(&["v", "φ", "µ", "measured T", "Thm-2 bound", "T/bound"]);
    for &v in &[0.25, 0.5, 0.75, 0.9, 1.0] {
        for &phi in &[0.0, 0.8, 1.6, std::f64::consts::PI, 4.7] {
            let attrs = RobotAttributes::reference().with_speed(v).with_orientation(phi);
            let inst = RendezvousInstance::new(D, R, attrs).unwrap();
            match theorem2_bound(&inst) {
                Theorem2Bound::Finite { time: bound, factor, .. } => {
                    let measured = measure(attrs, bound);
                    t.row_owned(vec![
                        fnum(v),
                        fnum(phi),
                        fnum(factor),
                        fnum(measured),
                        fnum(bound),
                        fnum(measured / bound),
                    ]);
                    assert!(measured < bound, "Theorem 2 violated at v={v}, φ={phi}");
                }
                Theorem2Bound::Infeasible => {
                    t.row_owned(vec![
                        fnum(v),
                        fnum(phi),
                        "0".into(),
                        "-".into(),
                        "infeasible".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    t.print("E4 — Theorem 2, χ = +1 (µ-scaled bound); d = 0.874, r = 0.02");
}

fn print_mirrored_table() {
    let mut t = Table::new(&["v", "φ", "1−v", "measured T", "Thm-2 bound", "T/bound"]);
    for &v in &[0.25, 0.5, 0.75, 1.0] {
        for &phi in &[0.0, 1.2, 2.9] {
            let attrs = RobotAttributes::reference()
                .with_speed(v)
                .with_orientation(phi)
                .with_chirality(Chirality::Mirrored);
            let inst = RendezvousInstance::new(D, R, attrs).unwrap();
            match theorem2_bound(&inst) {
                Theorem2Bound::Finite { time: bound, factor, .. } => {
                    let measured = measure(attrs, bound);
                    t.row_owned(vec![
                        fnum(v),
                        fnum(phi),
                        fnum(factor),
                        fnum(measured),
                        fnum(bound),
                        fnum(measured / bound),
                    ]);
                    assert!(measured < bound, "Theorem 2 (χ=−1) violated at v={v}, φ={phi}");
                }
                Theorem2Bound::Infeasible => {
                    t.row_owned(vec![
                        fnum(v),
                        fnum(phi),
                        "0".into(),
                        "-".into(),
                        "infeasible".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    t.print("E5 — Theorem 2, χ = −1 ((1−v)-scaled bound); d = 0.874, r = 0.02");
}

fn benches(c: &mut Criterion) {
    let attrs = RobotAttributes::reference().with_speed(0.5);
    let inst = RendezvousInstance::new(D, R, attrs).unwrap();
    c.bench_function("theorem2/simulate_rendezvous_v05", |b| {
        b.iter(|| {
            simulate_rendezvous(
                UniversalSearch,
                black_box(&inst),
                &ContactOptions::with_horizon(1e7),
            )
        })
    });
    c.bench_function("theorem2/equivalent_search_reduction", |b| {
        b.iter(|| EquivalentSearch::new(black_box(&attrs)).qr())
    });
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}

fn main() {
    print_consistent_table();
    print_mirrored_table();
    group();
    Criterion::default().configure_from_args().final_summary();
}
