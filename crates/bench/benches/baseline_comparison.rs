//! E11 — universal search vs. the omniscient spiral: the measured price
//! of knowing nothing is the paper's `Θ(log(d²/r))` factor.

use criterion::{criterion_group, Criterion};
use rvz_baselines::ArchimedeanSpiral;
use rvz_bench::{fnum, Table};
use rvz_geometry::Vec2;
use rvz_model::SearchInstance;
use rvz_search::first_discovery;
use rvz_sim::{first_contact, ContactOptions, Stationary};
use std::hint::black_box;
use std::time::Duration;

fn spiral_time(target: Vec2, r: f64, budget: f64) -> f64 {
    let spiral = ArchimedeanSpiral::for_visibility(r);
    first_contact(
        &spiral,
        &Stationary::new(target),
        r,
        &ContactOptions::with_horizon(budget),
    )
    .contact_time()
    .expect("spiral always finds within its swept disk")
}

fn print_table() {
    let mut t = Table::new(&[
        "d", "r", "d²/r", "log(d²/r)", "universal T", "spiral T", "overhead", "overhead/log",
    ]);
    // Generic (non-dyadic) direction and distance to avoid alignment luck.
    let dir = Vec2::from_polar(1.0, 2.0);
    for &d in &[0.67, 1.37, 2.83] {
        for rexp in [-6, -8, -10] {
            let r = (rexp as f64).exp2();
            let target = dir * d;
            let inst = SearchInstance::new(target, r).unwrap();
            let universal = first_discovery(&inst, 31).unwrap().time;
            let spiral = ArchimedeanSpiral::for_visibility(r);
            let budget = universal.max(spiral.search_time_estimate(d)) * 3.0 + 100.0;
            let s_time = spiral_time(target, r, budget);
            let overhead = universal / s_time;
            let log_difficulty = inst.difficulty().log2();
            t.row_owned(vec![
                fnum(d),
                format!("2^{rexp}"),
                fnum(inst.difficulty()),
                fnum(log_difficulty),
                fnum(universal),
                fnum(s_time),
                fnum(overhead),
                fnum(overhead / log_difficulty),
            ]);
        }
    }
    t.print(
        "E11 — universal (knows nothing) vs Archimedean spiral (knows r): \
         overhead ≈ c·log(d²/r)",
    );
}

fn benches(c: &mut Criterion) {
    let inst = SearchInstance::new(Vec2::new(0.8, 0.9), 1e-2).unwrap();
    c.bench_function("baseline/universal_analytic", |b| {
        b.iter(|| first_discovery(black_box(&inst), 31))
    });
    let spiral = ArchimedeanSpiral::for_visibility(1e-2);
    c.bench_function("baseline/spiral_simulated", |b| {
        b.iter(|| {
            first_contact(
                &spiral,
                &Stationary::new(black_box(inst.target())),
                1e-2,
                &ContactOptions::with_horizon(1e6),
            )
        })
    });
    use rvz_trajectory::Trajectory;
    c.bench_function("baseline/spiral_position_eval", |b| {
        b.iter(|| spiral.position(black_box(12345.6)))
    });
}

criterion_group! {
    name = group;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    targets = benches
}

fn main() {
    print_table();
    group();
    Criterion::default().configure_from_args().final_summary();
}
