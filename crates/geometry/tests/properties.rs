//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rvz_geometry::{angle, normalize_angle, Mat2, Vec2, TAU};

fn finite_vec() -> impl Strategy<Value = Vec2> {
    ((-1e6..1e6f64), (-1e6..1e6f64)).prop_map(|(x, y)| Vec2::new(x, y))
}

fn small_mat() -> impl Strategy<Value = Mat2> {
    (
        (-10.0..10.0f64),
        (-10.0..10.0f64),
        (-10.0..10.0f64),
        (-10.0..10.0f64),
    )
        .prop_map(|(a, b, c, d)| Mat2::new(a, b, c, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Triangle inequality and norm homogeneity.
    #[test]
    fn vector_norm_axioms(a in finite_vec(), b in finite_vec(), s in -100.0..100.0f64) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-6);
        let scaled = (a * s).norm();
        prop_assert!((scaled - s.abs() * a.norm()).abs() <= 1e-9 * (1.0 + scaled));
    }

    /// The Cauchy–Schwarz inequality.
    #[test]
    fn cauchy_schwarz(a in finite_vec(), b in finite_vec()) {
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() * (1.0 + 1e-12) + 1e-12);
    }

    /// dot² + cross² = |a|²·|b|² (Lagrange identity in 2-D).
    #[test]
    fn lagrange_identity(a in finite_vec(), b in finite_vec()) {
        let lhs = a.dot(b).powi(2) + a.cross(b).powi(2);
        let rhs = a.norm_squared() * b.norm_squared();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
    }

    /// Rotation preserves norms and composes additively.
    #[test]
    fn rotations_are_isometries(v in finite_vec(), t1 in 0.0..TAU, t2 in 0.0..TAU) {
        let r = v.rotated(t1);
        prop_assert!((r.norm() - v.norm()).abs() <= 1e-9 * (1.0 + v.norm()));
        let composed = v.rotated(t1).rotated(t2);
        let direct = v.rotated(t1 + t2);
        prop_assert!(composed.distance(direct) <= 1e-7 * (1.0 + v.norm()));
    }

    /// perp is rotation by 90° and reverses cross sign.
    #[test]
    fn perp_properties(v in finite_vec()) {
        prop_assert!(v.perp().dot(v).abs() <= 1e-9 * (1.0 + v.norm_squared()));
        prop_assert!((v.perp().norm() - v.norm()).abs() <= 1e-9 * (1.0 + v.norm()));
    }

    /// Matrix multiplication is associative and respects determinants.
    #[test]
    fn matrix_algebra(m in small_mat(), n in small_mat(), p in small_mat()) {
        let left = (m * n) * p;
        let right = m * (n * p);
        prop_assert!((left - right).frobenius_norm() <= 1e-6);
        let det_prod = (m * n).det();
        prop_assert!((det_prod - m.det() * n.det()).abs() <= 1e-6 * (1.0 + det_prod.abs()));
    }

    /// Inverse (when it exists) really inverts.
    #[test]
    fn inverse_roundtrip(m in small_mat()) {
        prop_assume!(m.det().abs() > 1e-3);
        let inv = m.inverse().unwrap();
        let eye = m * inv;
        prop_assert!((eye - Mat2::IDENTITY).frobenius_norm() <= 1e-6);
    }

    /// QR: Q orthogonal rotation, R upper triangular, Q·R reconstructs.
    #[test]
    fn qr_factorization_properties(m in small_mat()) {
        let f = m.qr();
        prop_assert!(f.q.is_orthogonal(1e-9));
        prop_assert!((f.q.det() - 1.0).abs() <= 1e-9);
        prop_assert_eq!(f.r.c, 0.0);
        prop_assert!(f.r.a >= 0.0);
        prop_assert!(((f.q * f.r) - m).frobenius_norm() <= 1e-7 * (1.0 + m.frobenius_norm()));
    }

    /// The operator norm really bounds |Mv|/|v| and is attained within 1%.
    #[test]
    fn operator_norm_is_tight_bound(m in small_mat()) {
        let bound = m.operator_norm();
        let mut attained: f64 = 0.0;
        let mut theta = 0.0;
        while theta < TAU {
            let v = Vec2::from_polar(1.0, theta);
            let len = (m * v).norm();
            prop_assert!(len <= bound * (1.0 + 1e-9) + 1e-12);
            attained = attained.max(len);
            theta += 0.01;
        }
        prop_assert!(attained >= bound * 0.99);
    }

    /// normalize_angle lands in [0, 2π) and preserves the angle mod 2π.
    #[test]
    fn angle_normalization(a in -1e4..1e4f64) {
        let n = normalize_angle(a);
        prop_assert!((0.0..TAU).contains(&n));
        // sin/cos agree ⇒ same angle modulo 2π.
        prop_assert!((n.sin() - a.sin()).abs() < 1e-7);
        prop_assert!((n.cos() - a.cos()).abs() < 1e-7);
    }

    /// Angular distance is a metric on the circle (symmetry + triangle).
    #[test]
    fn angular_distance_metric(a in 0.0..TAU, b in 0.0..TAU, c in 0.0..TAU) {
        let dab = angle::angular_distance(a, b);
        let dba = angle::angular_distance(b, a);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab <= std::f64::consts::PI + 1e-12);
        let dac = angle::angular_distance(a, c);
        let dcb = angle::angular_distance(c, b);
        prop_assert!(dab <= dac + dcb + 1e-9);
    }
}
