//! Two-dimensional Euclidean vectors.
//!
//! [`Vec2`] doubles as a *point* (a position in the plane) and a
//! *displacement*; the paper's trajectories `S(t)` are curves of points
//! while its symmetry-breaking analysis works with displacement vectors
//! such as `d⃗` (the vector from one robot's start to the other's).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A vector (or point) in the Euclidean plane, stored as `f64` components.
///
/// All operations are plain component arithmetic; no hidden normalization is
/// performed. The type is `Copy` and cheap everywhere.
///
/// # Example
///
/// ```
/// use rvz_geometry::Vec2;
///
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a.dot(Vec2::UNIT_X), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector (also used as "the origin").
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };
    /// The unit vector along `+x`.
    pub const UNIT_X: Vec2 = Vec2 { x: 1.0, y: 0.0 };
    /// The unit vector along `+y`.
    pub const UNIT_Y: Vec2 = Vec2 { x: 0.0, y: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Creates the vector `r·(cos θ, sin θ)` — polar coordinates.
    ///
    /// ```
    /// use rvz_geometry::Vec2;
    /// let v = Vec2::from_polar(2.0, std::f64::consts::PI);
    /// assert!((v.x + 2.0).abs() < 1e-15 && v.y.abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(radius: f64, angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Vec2::new(radius * c, radius * s)
    }

    /// Euclidean norm `√(x² + y²)`.
    ///
    /// Uses [`f64::hypot`] for robustness against overflow/underflow.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm `x² + y²` (avoids the square root).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Inner product with `other`.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The scalar cross product (z-component of the 3-D cross product).
    ///
    /// Positive when `other` lies counter-clockwise of `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_squared(self, other: Vec2) -> f64 {
        (self - other).norm_squared()
    }

    /// The angle `atan2(y, x)` of this vector, in `(−π, π]`.
    ///
    /// Returns `0.0` for the zero vector (matching `atan2(0, 0)`).
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Returns this vector scaled to unit length, or `None` if it is too
    /// short to normalize reliably.
    ///
    /// ```
    /// use rvz_geometry::Vec2;
    /// assert!(Vec2::ZERO.normalized().is_none());
    /// let u = Vec2::new(0.0, -3.0).normalized().unwrap();
    /// assert!((u.y + 1.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < f64::MIN_POSITIVE.sqrt() {
            None
        } else {
            Some(self / n)
        }
    }

    /// Rotates this vector counter-clockwise by `angle` radians.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Rotates this vector counter-clockwise by 90° exactly (no trig).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Reflects this vector about the x-axis (`y ↦ −y`).
    ///
    /// This is exactly the effect of opposite chirality (`χ = −1`) on a
    /// trajectory in the paper's model.
    #[inline]
    pub fn mirrored_x(self) -> Vec2 {
        Vec2::new(self.x, -self.y)
    }

    /// Linear interpolation: `self + s·(other − self)`.
    ///
    /// `s = 0` yields `self`; `s = 1` yields `other`. `s` outside `[0, 1]`
    /// extrapolates.
    #[inline]
    pub fn lerp(self, other: Vec2, s: f64) -> Vec2 {
        self + (other - self) * s
    }

    /// `true` when both components are finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec2 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl DivAssign<f64> for Vec2 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Sum for Vec2 {
    fn sum<I: Iterator<Item = Vec2>>(iter: I) -> Vec2 {
        iter.fold(Vec2::ZERO, Add::add)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Vec2 {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    #[inline]
    fn from(v: Vec2) -> (f64, f64) {
        (v.x, v.y)
    }
}

impl From<[f64; 2]> for Vec2 {
    #[inline]
    fn from([x, y]: [f64; 2]) -> Vec2 {
        Vec2::new(x, y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_eq;

    #[test]
    fn constants() {
        assert_eq!(Vec2::ZERO, Vec2::new(0.0, 0.0));
        assert_eq!(Vec2::UNIT_X.norm(), 1.0);
        assert_eq!(Vec2::UNIT_Y.norm(), 1.0);
        assert_eq!(Vec2::UNIT_X.dot(Vec2::UNIT_Y), 0.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(-3.0, 4.5);
        assert_eq!(a + b, Vec2::new(-2.0, 6.5));
        assert_eq!(a - b, Vec2::new(4.0, -2.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
    }

    #[test]
    fn compound_assignment() {
        let mut v = Vec2::new(1.0, 1.0);
        v += Vec2::UNIT_X;
        v -= Vec2::UNIT_Y;
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec2::new(3.0, 0.0));
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec2::new(3.0, -4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_squared(), 25.0);
        assert_eq!(v.distance(Vec2::ZERO), 5.0);
        assert_eq!(v.distance_squared(Vec2::new(3.0, 0.0)), 16.0);
    }

    #[test]
    fn norm_is_robust_to_extreme_magnitudes() {
        // hypot avoids overflow where sqrt(x² + y²) would return inf.
        let v = Vec2::new(1e200, 1e200);
        assert!(v.norm().is_finite());
        // ... and underflow.
        let w = Vec2::new(1e-200, 1e-200);
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(2.0, 0.0);
        let b = Vec2::new(0.0, 3.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 6.0);
        assert_eq!(b.cross(a), -6.0);
    }

    #[test]
    fn polar_roundtrip() {
        let v = Vec2::from_polar(2.5, 1.2);
        assert!(approx_eq(v.norm(), 2.5));
        assert!(approx_eq(v.angle(), 1.2));
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(0.0, 5.0).normalized().unwrap();
        assert!(approx_eq(n.norm(), 1.0));
        assert!(approx_eq(n.y, 1.0));
    }

    #[test]
    fn rotation_quarter_turn() {
        let v = Vec2::UNIT_X.rotated(std::f64::consts::FRAC_PI_2);
        assert!((v - Vec2::UNIT_Y).norm() < 1e-15);
        // perp is the exact quarter turn.
        assert_eq!(Vec2::UNIT_X.perp(), Vec2::UNIT_Y);
        assert_eq!(Vec2::UNIT_Y.perp(), -Vec2::UNIT_X);
    }

    #[test]
    fn mirror_is_chirality_flip() {
        let v = Vec2::new(1.0, 2.0);
        assert_eq!(v.mirrored_x(), Vec2::new(1.0, -2.0));
        assert_eq!(v.mirrored_x().mirrored_x(), v);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn conversions() {
        let v: Vec2 = (1.0, 2.0).into();
        assert_eq!(v, Vec2::new(1.0, 2.0));
        let w: Vec2 = [3.0, 4.0].into();
        assert_eq!(w, Vec2::new(3.0, 4.0));
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn sum_of_vectors() {
        let total: Vec2 = [Vec2::UNIT_X, Vec2::UNIT_Y, Vec2::new(1.0, 1.0)]
            .into_iter()
            .sum();
        assert_eq!(total, Vec2::new(2.0, 2.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_formats_components() {
        assert_eq!(Vec2::new(1.5, -2.0).to_string(), "(1.5, -2)");
    }
}
