//! Tolerant floating-point comparison helpers.
//!
//! Simulation and closed-form analysis produce values that agree only up to
//! rounding; these helpers centralize the comparison policy (mixed
//! absolute/relative tolerance) so every crate in the workspace uses the
//! same notion of "equal enough".

use crate::vec2::Vec2;

/// Default absolute/relative tolerance used by [`approx_eq`].
pub const DEFAULT_EPS: f64 = 1e-9;

/// Compares with mixed absolute and relative tolerance `eps`.
///
/// Returns `true` when `|a − b| ≤ eps · max(1, |a|, |b|)`. This behaves
/// like an absolute comparison near zero and a relative one for large
/// magnitudes — appropriate for the time values in this workspace, which
/// span from `1e-6` to `1e12`.
///
/// # Example
///
/// ```
/// use rvz_geometry::approx_eq_eps;
/// assert!(approx_eq_eps(1e12, 1e12 + 1.0, 1e-9));
/// assert!(!approx_eq_eps(1.0, 1.1, 1e-9));
/// ```
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    if a == b {
        return true; // handles infinities of equal sign
    }
    if !a.is_finite() || !b.is_finite() {
        return false; // unequal infinities, or NaN
    }
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= eps * scale
}

/// [`approx_eq_eps`] with [`DEFAULT_EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, DEFAULT_EPS)
}

/// Types comparable up to a tolerance.
///
/// Implemented for `f64` and [`Vec2`]; downstream crates implement it for
/// their own aggregates where useful.
pub trait ApproxEq {
    /// Returns `true` when `self` and `other` agree within `eps` under the
    /// mixed absolute/relative policy of [`approx_eq_eps`].
    fn approx_eq_eps(&self, other: &Self, eps: f64) -> bool;

    /// [`ApproxEq::approx_eq_eps`] with [`DEFAULT_EPS`].
    fn approx_eq(&self, other: &Self) -> bool {
        self.approx_eq_eps(other, DEFAULT_EPS)
    }
}

impl ApproxEq for f64 {
    fn approx_eq_eps(&self, other: &Self, eps: f64) -> bool {
        approx_eq_eps(*self, *other, eps)
    }
}

impl ApproxEq for Vec2 {
    fn approx_eq_eps(&self, other: &Self, eps: f64) -> bool {
        approx_eq_eps(self.x, other.x, eps) && approx_eq_eps(self.y, other.y, eps)
    }
}

/// Asserts that two `f64` values are approximately equal, with a helpful
/// message on failure.
///
/// # Example
///
/// ```
/// rvz_geometry::assert_approx_eq!(2.0_f64.sqrt() * 2.0_f64.sqrt(), 2.0);
/// ```
#[macro_export]
macro_rules! assert_approx_eq {
    ($a:expr, $b:expr) => {
        $crate::assert_approx_eq!($a, $b, $crate::approx::DEFAULT_EPS)
    };
    ($a:expr, $b:expr, $eps:expr) => {{
        let (a, b) = (&$a, &$b);
        assert!(
            $crate::approx::approx_eq_eps(*a as f64, *b as f64, $eps),
            "assert_approx_eq failed: {} vs {} (eps {})",
            a,
            b,
            $eps
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_equality_short_circuits() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY));
    }

    #[test]
    fn nan_is_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_eq(f64::NAN, 0.0));
    }

    #[test]
    fn absolute_near_zero() {
        assert!(approx_eq(0.0, 1e-12));
        assert!(!approx_eq(0.0, 1e-3));
    }

    #[test]
    fn relative_for_large_values() {
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10)));
        assert!(!approx_eq(1e12, 1e12 * 1.01));
    }

    #[test]
    fn vec2_componentwise() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(1.0 + 1e-12, 2.0 - 1e-12);
        assert!(a.approx_eq(&b));
        assert!(!a.approx_eq(&Vec2::new(1.0, 2.1)));
    }

    #[test]
    fn macro_passes_and_supports_custom_eps() {
        assert_approx_eq!(0.1 + 0.2, 0.3);
        assert_approx_eq!(100.0, 101.0, 0.02);
    }

    #[test]
    #[should_panic(expected = "assert_approx_eq failed")]
    fn macro_fails_loudly() {
        assert_approx_eq!(1.0, 2.0);
    }
}
