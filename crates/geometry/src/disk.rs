//! Closed disks — the currency of swept-envelope pruning.
//!
//! The simulator's coarse-to-fine contact engine reasons about *sets* of
//! positions: "robot A stays inside this disk for the whole interval
//! `[t₀, t₁]`". A [`Disk`] is that certificate. The only operation the
//! engine needs is [`Disk::gap`] — the distance between two disks as
//! point sets — because `gap > radius` proves the two robots cannot come
//! within `radius` of each other while both certificates hold.
//!
//! Disks are deliberately permissive: a radius of `∞` is a valid
//! (useless) certificate whose gap to anything is `−∞`, so sound
//! fallbacks degrade gracefully instead of erroring.

use crate::vec2::Vec2;
use std::fmt;

/// A closed disk `{p : |p − center| ≤ radius}`.
///
/// # Example
///
/// ```
/// use rvz_geometry::{Disk, Vec2};
///
/// let a = Disk::new(Vec2::ZERO, 1.0);
/// let b = Disk::new(Vec2::new(5.0, 0.0), 2.0);
/// assert_eq!(a.gap(&b), 2.0); // 5 − 1 − 2
/// assert!(a.contains(Vec2::new(0.6, 0.6), 1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disk {
    /// Center of the disk.
    pub center: Vec2,
    /// Radius (≥ 0; `∞` is allowed and means "no information").
    pub radius: f64,
}

impl Disk {
    /// Creates a disk.
    ///
    /// Debug builds assert that `center` is finite and `radius` is
    /// non-negative (`∞` is allowed); release builds accept the values
    /// unchecked — this sits on the contact engine's hot path.
    pub fn new(center: Vec2, radius: f64) -> Self {
        debug_assert!(center.is_finite(), "disk center must be finite");
        debug_assert!(radius >= 0.0, "disk radius must be >= 0, got {radius}");
        Disk { center, radius }
    }

    /// The degenerate disk holding a single point.
    pub fn point(center: Vec2) -> Self {
        Disk::new(center, 0.0)
    }

    /// The distance between the two disks as point sets:
    /// `|c₁ − c₂| − r₁ − r₂`.
    ///
    /// Negative when the disks overlap; `−∞` when either radius is `∞`.
    /// This is the separation certificate the contact engine tests
    /// against `radius + tolerance`.
    #[inline]
    pub fn gap(&self, other: &Disk) -> f64 {
        self.center.distance(other.center) - self.radius - other.radius
    }

    /// `true` when `p` lies inside the disk, allowing `slack` of
    /// floating-point leakage.
    pub fn contains(&self, p: Vec2, slack: f64) -> bool {
        self.center.distance(p) <= self.radius + slack
    }

    /// The disk grown by `margin` (a sound way to absorb floating-point
    /// noise in an envelope computation).
    pub fn expanded(&self, margin: f64) -> Disk {
        debug_assert!(margin >= 0.0, "margin must be >= 0, got {margin}");
        Disk {
            center: self.center,
            radius: self.radius + margin,
        }
    }

    /// The smallest disk containing the straight segment from `a` to `b`.
    pub fn spanning(a: Vec2, b: Vec2) -> Disk {
        Disk::new(a.lerp(b, 0.5), 0.5 * a.distance(b))
    }

    /// A tight disk containing the circular-arc chunk of `radius` around
    /// `center` from `start_angle` through the signed angle `sweep`.
    ///
    /// For sweeps under a half turn this is the chord-midpoint disk of
    /// radius `R·sin(|sweep|/2)` (the endpoints attain the bound);
    /// beyond a half turn — or for a non-finite sweep — the full
    /// circle's disk is the smallest sound answer. Shared by the
    /// segment-level and motion-level swept envelopes.
    pub fn arc_chunk(center: Vec2, radius: f64, start_angle: f64, sweep: f64) -> Disk {
        let span = sweep.abs();
        if !span.is_finite() || span >= std::f64::consts::PI {
            return Disk::new(center, radius);
        }
        let mid = start_angle + sweep * 0.5;
        let half = span * 0.5;
        Disk::new(
            center + Vec2::from_polar(radius * half.cos(), mid),
            radius * half.sin(),
        )
    }

    /// The smallest disk containing both disks.
    ///
    /// Exact: when one disk contains the other the larger one is
    /// returned; otherwise the result is the disk whose diameter spans
    /// the two far sides.
    pub fn union(&self, other: &Disk) -> Disk {
        let d = self.center.distance(other.center);
        if d + other.radius <= self.radius {
            return *self;
        }
        if d + self.radius <= other.radius {
            return *other;
        }
        let radius = 0.5 * (d + self.radius + other.radius);
        // Center sits on the segment between the centers, `radius − r₁`
        // past `c₁` toward `c₂`.
        let t = if d > 0.0 {
            (radius - self.radius) / d
        } else {
            0.0
        };
        Disk::new(self.center.lerp(other.center, t), radius)
    }
}

impl fmt::Display for Disk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D({}, r={})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_set_distance() {
        let a = Disk::new(Vec2::ZERO, 1.0);
        let b = Disk::new(Vec2::new(4.0, 3.0), 1.5);
        assert!((a.gap(&b) - 2.5).abs() < 1e-12);
        // Symmetric.
        assert_eq!(a.gap(&b), b.gap(&a));
        // Overlapping disks have a negative gap.
        assert!(a.gap(&Disk::new(Vec2::new(0.5, 0.0), 1.0)) < 0.0);
    }

    #[test]
    fn infinite_radius_never_separates() {
        let unknown = Disk::new(Vec2::ZERO, f64::INFINITY);
        let far = Disk::point(Vec2::new(1e9, 0.0));
        assert_eq!(unknown.gap(&far), f64::NEG_INFINITY);
    }

    #[test]
    fn contains_with_slack() {
        let d = Disk::new(Vec2::ZERO, 1.0);
        assert!(d.contains(Vec2::new(1.0, 0.0), 0.0));
        assert!(!d.contains(Vec2::new(1.0 + 1e-9, 0.0), 0.0));
        assert!(d.contains(Vec2::new(1.0 + 1e-9, 0.0), 1e-8));
    }

    #[test]
    fn spanning_covers_both_endpoints() {
        let a = Vec2::new(-1.0, 2.0);
        let b = Vec2::new(3.0, -4.0);
        let d = Disk::spanning(a, b);
        assert!(d.contains(a, 1e-12));
        assert!(d.contains(b, 1e-12));
        assert!((d.radius - 0.5 * a.distance(b)).abs() < 1e-12);
    }

    #[test]
    fn union_is_exact_and_covers() {
        let a = Disk::new(Vec2::ZERO, 1.0);
        let b = Disk::new(Vec2::new(4.0, 0.0), 2.0);
        let u = a.union(&b);
        // Far sides: −1 and 6 on the x-axis.
        assert!((u.radius - 3.5).abs() < 1e-12);
        assert!((u.center - Vec2::new(2.5, 0.0)).norm() < 1e-12);
        assert!(u.contains(Vec2::new(-1.0, 0.0), 1e-12));
        assert!(u.contains(Vec2::new(6.0, 0.0), 1e-12));
        // Containment cases return the bigger disk unchanged.
        let small = Disk::new(Vec2::new(0.1, 0.0), 0.2);
        assert_eq!(a.union(&small), a);
        assert_eq!(small.union(&a), a);
        // Concentric disks.
        let c = Disk::new(Vec2::ZERO, 2.0);
        assert_eq!(a.union(&c), c);
    }

    #[test]
    fn arc_chunk_contains_the_arc_and_degrades_past_half_turn() {
        let center = Vec2::new(1.0, -2.0);
        let radius = 3.0;
        for &(start, sweep) in &[(0.3_f64, 1.1_f64), (2.0, -0.7), (0.0, 3.0)] {
            let disk = Disk::arc_chunk(center, radius, start, sweep);
            for i in 0..=40 {
                let a = start + sweep * i as f64 / 40.0;
                let p = center + Vec2::from_polar(radius, a);
                assert!(disk.contains(p, 1e-9), "sweep {sweep}: missed angle {a}");
            }
            if sweep.abs() < std::f64::consts::PI {
                assert!(disk.radius < radius, "chunk disk not tight");
            }
        }
        // ≥ π sweeps and non-finite sweeps fall back to the circle disk.
        assert_eq!(Disk::arc_chunk(center, radius, 0.0, 4.0).radius, radius);
        assert_eq!(
            Disk::arc_chunk(center, radius, 0.0, f64::INFINITY).center,
            center
        );
    }

    #[test]
    fn expanded_grows_radius_only() {
        let d = Disk::new(Vec2::new(1.0, 1.0), 2.0).expanded(0.5);
        assert_eq!(d.center, Vec2::new(1.0, 1.0));
        assert_eq!(d.radius, 2.5);
    }

    #[test]
    fn display_is_compact() {
        let d = Disk::point(Vec2::ZERO);
        assert!(d.to_string().starts_with("D("));
    }
}
