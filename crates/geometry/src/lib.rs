//! # rvz-geometry
//!
//! Planar geometry substrate for the `plane-rendezvous` workspace.
//!
//! The rendezvous algorithms of Czyzowicz, Gąsieniec, Killick and Kranakis
//! (PODC 2019) are phrased entirely in terms of elementary planar geometry:
//! points and vectors in the Euclidean plane, rotations, reflections, and the
//! 2×2 matrix algebra used by the *equivalent search trajectory* reduction
//! (Lemmas 4 and 5 of the paper). This crate provides exactly those
//! primitives, implemented from scratch with no external dependencies so that
//! every numerical property relied upon by the proofs is visible and testable
//! in this repository.
//!
//! ## Modules
//!
//! * [`vec2`] — two-dimensional vectors ([`Vec2`]) with the usual inner
//!   product space operations.
//! * [`mat2`] — 2×2 matrices ([`Mat2`]), rotation/reflection constructors and
//!   the QR factorization used by Lemma 5.
//! * [`disk`] — closed disks ([`Disk`]) and the set-distance (`gap`)
//!   operation behind the simulator's swept-envelope pruning.
//! * [`angle`] — angle normalization helpers on `[0, 2π)`.
//! * [`approx`] — tolerant floating-point comparisons used throughout the
//!   workspace's tests and the simulator's contact detection.
//!
//! ## Example
//!
//! ```
//! use rvz_geometry::{Vec2, Mat2};
//!
//! // Rotating the unit x vector by 90° lands on the unit y vector.
//! let r = Mat2::rotation(std::f64::consts::FRAC_PI_2);
//! let v = r * Vec2::UNIT_X;
//! assert!((v - Vec2::UNIT_Y).norm() < 1e-15);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod aabb;
pub mod angle;
pub mod approx;
pub mod disk;
pub mod mat2;
pub mod vec2;

pub use aabb::Aabb;
pub use angle::{normalize_angle, TAU};
pub use approx::{approx_eq, approx_eq_eps, ApproxEq};
pub use disk::Disk;
pub use mat2::{Mat2, QrFactors};
pub use vec2::Vec2;
