//! Angle helpers on the half-open interval `[0, 2π)`.
//!
//! The paper's orientation attribute is `φ ∈ [0, 2π)`; these helpers
//! normalize arbitrary radian values into that canonical range.

/// The full turn, `2π`.
pub const TAU: f64 = std::f64::consts::TAU;

/// Normalizes `angle` (radians) into `[0, 2π)`.
///
/// Values that are an exact multiple of `2π` map to `0.0`. Non-finite
/// inputs are returned unchanged so callers can detect them.
///
/// # Example
///
/// ```
/// use rvz_geometry::normalize_angle;
/// use std::f64::consts::PI;
///
/// assert_eq!(normalize_angle(-PI), PI);
/// assert_eq!(normalize_angle(5.0 * PI), PI);
/// assert_eq!(normalize_angle(0.0), 0.0);
/// ```
pub fn normalize_angle(angle: f64) -> f64 {
    if !angle.is_finite() {
        return angle;
    }
    let mut a = angle % TAU;
    if a < 0.0 {
        a += TAU;
    }
    // `a` can still equal TAU after the addition when `angle % TAU` is a
    // tiny negative number; fold it back to 0.
    if a >= TAU {
        a = 0.0;
    }
    a
}

/// The smallest absolute angular difference between two angles, in `[0, π]`.
///
/// # Example
///
/// ```
/// use rvz_geometry::angle::angular_distance;
/// use std::f64::consts::PI;
///
/// assert!((angular_distance(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-12);
/// ```
pub fn angular_distance(a: f64, b: f64) -> f64 {
    let d = normalize_angle(a - b);
    d.min(TAU - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn already_normalized_values_pass_through() {
        for a in [0.0, 0.5, PI, 6.2] {
            assert_eq!(normalize_angle(a), a);
        }
    }

    #[test]
    fn negative_values_wrap_up() {
        assert!((normalize_angle(-0.5) - (TAU - 0.5)).abs() < 1e-15);
        assert_eq!(normalize_angle(-TAU), 0.0);
    }

    #[test]
    fn large_values_wrap_down() {
        assert!((normalize_angle(TAU + 1.0) - 1.0).abs() < 1e-15);
        assert_eq!(normalize_angle(3.0 * TAU), 0.0);
    }

    #[test]
    fn result_is_always_in_range() {
        let mut x = -100.0;
        while x < 100.0 {
            let n = normalize_angle(x);
            assert!((0.0..TAU).contains(&n), "normalize_angle({x}) = {n}");
            x += 0.37;
        }
    }

    #[test]
    fn tiny_negative_does_not_return_tau() {
        let n = normalize_angle(-1e-18);
        assert!(n < TAU);
    }

    #[test]
    fn non_finite_pass_through() {
        assert!(normalize_angle(f64::NAN).is_nan());
        assert_eq!(normalize_angle(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn angular_distance_is_symmetric_and_bounded() {
        assert!((angular_distance(0.2, TAU - 0.2) - 0.4).abs() < 1e-12);
        assert_eq!(angular_distance(1.0, 1.0), 0.0);
        assert!((angular_distance(0.0, PI) - PI).abs() < 1e-12);
        assert!((angular_distance(PI, 0.0) - PI).abs() < 1e-12);
    }
}
