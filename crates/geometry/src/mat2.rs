//! 2×2 real matrices and the QR factorization of Lemma 5.
//!
//! The paper reduces a rendezvous execution to an *equivalent search
//! trajectory* `S∘(t) = T∘·S(t)` where
//!
//! ```text
//! T∘ = I − v·Rot(φ)·Refl(χ)
//! ```
//!
//! (Lemma 4). Lemma 5 then factors `T∘ = Φ·T∘'` with `Φ` a rotation and
//! `T∘'` upper triangular, which is an ordinary QR factorization. This
//! module supplies the matrix type and a numerically careful
//! [`Mat2::qr`] implementation, tested against the paper's closed forms.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::vec2::Vec2;

/// A 2×2 matrix over `f64`, stored row-major.
///
/// ```text
/// | a  b |
/// | c  d |
/// ```
///
/// # Example
///
/// ```
/// use rvz_geometry::{Mat2, Vec2};
///
/// let m = Mat2::new(1.0, 2.0, 3.0, 4.0);
/// assert_eq!(m * Vec2::new(1.0, 1.0), Vec2::new(3.0, 7.0));
/// assert_eq!(m.det(), -2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat2 {
    /// Row 0, column 0.
    pub a: f64,
    /// Row 0, column 1.
    pub b: f64,
    /// Row 1, column 0.
    pub c: f64,
    /// Row 1, column 1.
    pub d: f64,
}

/// The result of a QR factorization `M = Q·R` of a [`Mat2`].
///
/// `q` is orthogonal with `det(q) = +1` (a pure rotation, the paper's `Φ`)
/// and `r` is upper triangular with non-negative top-left entry (the
/// paper's `T∘'`). Produced by [`Mat2::qr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QrFactors {
    /// The rotation factor `Q` (`Φ` in Lemma 5).
    pub q: Mat2,
    /// The upper-triangular factor `R` (`T∘'` in Lemma 5).
    pub r: Mat2,
}

impl Mat2 {
    /// The identity matrix.
    pub const IDENTITY: Mat2 = Mat2 {
        a: 1.0,
        b: 0.0,
        c: 0.0,
        d: 1.0,
    };

    /// The zero matrix.
    pub const ZERO: Mat2 = Mat2 {
        a: 0.0,
        b: 0.0,
        c: 0.0,
        d: 0.0,
    };

    /// Creates a matrix from row-major entries.
    #[inline]
    pub const fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        Mat2 { a, b, c, d }
    }

    /// Creates a matrix from its two columns.
    #[inline]
    pub fn from_columns(col0: Vec2, col1: Vec2) -> Self {
        Mat2::new(col0.x, col1.x, col0.y, col1.y)
    }

    /// Counter-clockwise rotation by `angle` radians.
    ///
    /// ```
    /// use rvz_geometry::{Mat2, Vec2};
    /// let m = Mat2::rotation(std::f64::consts::PI);
    /// assert!((m * Vec2::UNIT_X + Vec2::UNIT_X).norm() < 1e-15);
    /// ```
    #[inline]
    pub fn rotation(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Mat2::new(c, -s, s, c)
    }

    /// Reflection about the x-axis when `chirality = -1.0`; identity when
    /// `chirality = +1.0`. Matches the paper's `diag(1, χ)` factor.
    ///
    /// # Panics
    ///
    /// Panics if `chirality` is not exactly `+1.0` or `-1.0`, because any
    /// other value has no meaning in the model.
    #[inline]
    pub fn chirality_reflection(chirality: f64) -> Self {
        assert!(
            chirality == 1.0 || chirality == -1.0,
            "chirality must be ±1, got {chirality}"
        );
        Mat2::new(1.0, 0.0, 0.0, chirality)
    }

    /// Uniform scaling by `s`.
    #[inline]
    pub fn scaling(s: f64) -> Self {
        Mat2::new(s, 0.0, 0.0, s)
    }

    /// The first column as a vector.
    #[inline]
    pub fn col0(self) -> Vec2 {
        Vec2::new(self.a, self.c)
    }

    /// The second column as a vector.
    #[inline]
    pub fn col1(self) -> Vec2 {
        Vec2::new(self.b, self.d)
    }

    /// Determinant `ad − bc`.
    #[inline]
    pub fn det(self) -> f64 {
        self.a * self.d - self.b * self.c
    }

    /// Trace `a + d`.
    #[inline]
    pub fn trace(self) -> f64 {
        self.a + self.d
    }

    /// The transposed matrix.
    #[inline]
    pub fn transpose(self) -> Mat2 {
        Mat2::new(self.a, self.c, self.b, self.d)
    }

    /// The inverse, or `None` when the determinant is too close to zero.
    ///
    /// Singularity of the equivalent-search matrix `T∘` is *meaningful* in
    /// this workspace — it is exactly the infeasible region of Theorem 4 —
    /// so callers must handle `None` rather than rely on panics.
    pub fn inverse(self) -> Option<Mat2> {
        let det = self.det();
        if det.abs() < f64::MIN_POSITIVE.sqrt() {
            None
        } else {
            Some(Mat2::new(
                self.d / det,
                -self.b / det,
                -self.c / det,
                self.a / det,
            ))
        }
    }

    /// Frobenius norm `√(a² + b² + c² + d²)`.
    #[inline]
    pub fn frobenius_norm(self) -> f64 {
        (self.a * self.a + self.b * self.b + self.c * self.c + self.d * self.d).sqrt()
    }

    /// The operator (spectral) 2-norm: the largest singular value.
    ///
    /// Used by the simulator to bound how much a frame transform can scale
    /// speeds. Computed from the closed-form singular values of a 2×2
    /// matrix.
    pub fn operator_norm(self) -> f64 {
        // Singular values of M are sqrt of eigenvalues of MᵀM.
        let m = self.transpose() * self;
        // MᵀM is symmetric positive semidefinite with entries
        // [p q; q r]; eigenvalues (p+r)/2 ± sqrt(((p-r)/2)² + q²).
        let p = m.a;
        let q = m.b;
        let r = m.d;
        let mid = 0.5 * (p + r);
        let rad = (0.25 * (p - r) * (p - r) + q * q).sqrt();
        (mid + rad).max(0.0).sqrt()
    }

    /// Whether this matrix is orthogonal within `eps` (columns orthonormal).
    pub fn is_orthogonal(self, eps: f64) -> bool {
        let c0 = self.col0();
        let c1 = self.col1();
        (c0.norm() - 1.0).abs() <= eps && (c1.norm() - 1.0).abs() <= eps && c0.dot(c1).abs() <= eps
    }

    /// QR factorization `M = Q·R` with `Q` a *rotation* (`det Q = +1`) and
    /// `R` upper triangular with `R[0,0] ≥ 0`.
    ///
    /// This is the factorization used in Lemma 5 of the paper, where `M` is
    /// the equivalent-search matrix `T∘`, `Q = Φ` and `R = T∘'`. When the
    /// first column of `M` is (numerically) zero the rotation is taken to be
    /// the identity, which keeps the factorization well-defined for the
    /// degenerate matrices that arise in infeasible instances.
    ///
    /// ```
    /// use rvz_geometry::Mat2;
    /// let m = Mat2::new(0.5, -0.3, 0.8, 1.1);
    /// let f = m.qr();
    /// assert!(f.q.is_orthogonal(1e-12));
    /// assert!((f.q * f.r - m).frobenius_norm() < 1e-12);
    /// assert!(f.r.c.abs() < 1e-12); // upper triangular
    /// ```
    pub fn qr(self) -> QrFactors {
        let col0 = self.col0();
        let n = col0.norm();
        if n < f64::MIN_POSITIVE.sqrt() {
            // Degenerate: first column ~ 0. Q = I, R = M (R is upper
            // triangular because its first column is the ~zero column).
            return QrFactors {
                q: Mat2::IDENTITY,
                r: self,
            };
        }
        // Q's first column is col0 normalized; second column is its
        // perpendicular, making det(Q) = +1.
        let u = col0 / n;
        let q = Mat2::from_columns(u, u.perp());
        // R = Qᵀ M; clamp the (1,0) entry to exactly zero — algebraically it
        // is u.perp()·col0 = 0, numerically it is ~1 ulp of noise.
        let mut r = q.transpose() * self;
        r.c = 0.0;
        QrFactors { q, r }
    }

    /// Applies the matrix to a vector.
    #[inline]
    pub fn apply(self, v: Vec2) -> Vec2 {
        Vec2::new(self.a * v.x + self.b * v.y, self.c * v.x + self.d * v.y)
    }
}

impl Mul<Vec2> for Mat2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        self.apply(v)
    }
}

impl Mul for Mat2 {
    type Output = Mat2;
    #[inline]
    fn mul(self, m: Mat2) -> Mat2 {
        Mat2::new(
            self.a * m.a + self.b * m.c,
            self.a * m.b + self.b * m.d,
            self.c * m.a + self.d * m.c,
            self.c * m.b + self.d * m.d,
        )
    }
}

impl Mul<f64> for Mat2 {
    type Output = Mat2;
    #[inline]
    fn mul(self, s: f64) -> Mat2 {
        Mat2::new(self.a * s, self.b * s, self.c * s, self.d * s)
    }
}

impl Mul<Mat2> for f64 {
    type Output = Mat2;
    #[inline]
    fn mul(self, m: Mat2) -> Mat2 {
        m * self
    }
}

impl Add for Mat2 {
    type Output = Mat2;
    #[inline]
    fn add(self, m: Mat2) -> Mat2 {
        Mat2::new(self.a + m.a, self.b + m.b, self.c + m.c, self.d + m.d)
    }
}

impl Sub for Mat2 {
    type Output = Mat2;
    #[inline]
    fn sub(self, m: Mat2) -> Mat2 {
        Mat2::new(self.a - m.a, self.b - m.b, self.c - m.c, self.d - m.d)
    }
}

impl Neg for Mat2 {
    type Output = Mat2;
    #[inline]
    fn neg(self) -> Mat2 {
        Mat2::new(-self.a, -self.b, -self.c, -self.d)
    }
}

impl fmt::Display for Mat2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}; {} {}]", self.a, self.b, self.c, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_3};

    fn assert_mat_close(m: Mat2, n: Mat2, eps: f64) {
        assert!(
            (m - n).frobenius_norm() < eps,
            "matrices differ: {m} vs {n}"
        );
    }

    #[test]
    fn identity_and_zero() {
        let v = Vec2::new(3.0, -1.0);
        assert_eq!(Mat2::IDENTITY * v, v);
        assert_eq!(Mat2::ZERO * v, Vec2::ZERO);
        assert_eq!(Mat2::IDENTITY.det(), 1.0);
        assert_eq!(Mat2::IDENTITY.trace(), 2.0);
    }

    #[test]
    fn rotation_matrices() {
        let r = Mat2::rotation(FRAC_PI_2);
        assert!((r * Vec2::UNIT_X - Vec2::UNIT_Y).norm() < 1e-15);
        assert!((r.det() - 1.0).abs() < 1e-15);
        assert!(r.is_orthogonal(1e-15));
        // Composition of rotations adds angles.
        let r2 = Mat2::rotation(FRAC_PI_3) * Mat2::rotation(FRAC_PI_3);
        assert_mat_close(r2, Mat2::rotation(2.0 * FRAC_PI_3), 1e-14);
    }

    #[test]
    fn chirality_reflection_matrix() {
        let refl = Mat2::chirality_reflection(-1.0);
        assert_eq!(refl * Vec2::new(1.0, 2.0), Vec2::new(1.0, -2.0));
        assert_eq!(refl.det(), -1.0);
        assert_eq!(Mat2::chirality_reflection(1.0), Mat2::IDENTITY);
    }

    #[test]
    #[should_panic(expected = "chirality must be ±1")]
    fn chirality_rejects_other_values() {
        let _ = Mat2::chirality_reflection(0.5);
    }

    #[test]
    fn matrix_product_and_transpose() {
        let m = Mat2::new(1.0, 2.0, 3.0, 4.0);
        let n = Mat2::new(0.0, 1.0, -1.0, 2.0);
        assert_eq!(m * n, Mat2::new(-2.0, 5.0, -4.0, 11.0));
        assert_eq!(m.transpose(), Mat2::new(1.0, 3.0, 2.0, 4.0));
        assert_eq!((m * n).transpose(), n.transpose() * m.transpose());
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Mat2::new(2.0, 1.0, 1.0, 3.0);
        let inv = m.inverse().unwrap();
        assert_mat_close(m * inv, Mat2::IDENTITY, 1e-15);
        assert_mat_close(inv * m, Mat2::IDENTITY, 1e-15);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        // Rank-1 matrix: second row is 2× the first.
        let m = Mat2::new(1.0, 2.0, 2.0, 4.0);
        assert!(m.inverse().is_none());
        assert_eq!(m.det(), 0.0);
    }

    #[test]
    fn operator_norm_matches_known_cases() {
        // Diagonal matrix: operator norm = max |diagonal|.
        assert!((Mat2::new(3.0, 0.0, 0.0, -5.0).operator_norm() - 5.0).abs() < 1e-12);
        // Rotations are isometries.
        assert!((Mat2::rotation(1.0).operator_norm() - 1.0).abs() < 1e-12);
        // Scaling.
        assert!((Mat2::scaling(2.5).operator_norm() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn qr_reconstructs_and_is_canonical() {
        let cases = [
            Mat2::new(0.5, -0.3, 0.8, 1.1),
            Mat2::new(1.0, 0.0, 0.0, 1.0),
            Mat2::rotation(2.2),
            Mat2::new(-1.0, 4.0, 2.0, -8.0), // rank 1
            Mat2::new(1e-3, 5.0, 1e-3, -5.0),
        ];
        for m in cases {
            let f = m.qr();
            assert!(f.q.is_orthogonal(1e-12), "Q not orthogonal for {m}");
            assert!((f.q.det() - 1.0).abs() < 1e-12, "Q not a rotation for {m}");
            assert_eq!(f.r.c, 0.0, "R not upper triangular for {m}");
            assert!(f.r.a >= 0.0, "R[0,0] negative for {m}");
            assert_mat_close(f.q * f.r, m, 1e-12);
        }
    }

    #[test]
    fn qr_of_zero_first_column() {
        let m = Mat2::new(0.0, 3.0, 0.0, 4.0);
        let f = m.qr();
        assert_eq!(f.q, Mat2::IDENTITY);
        assert_eq!(f.r, m);
        assert_mat_close(f.q * f.r, m, 1e-15);
    }

    #[test]
    fn qr_matches_paper_closed_form() {
        // Lemma 5: for T∘ = I − v·Rot(φ)·diag(1, χ) with χ = +1 the upper
        // triangular factor is µ·I with µ = √(v² − 2v cos φ + 1).
        let v = 0.6;
        let phi = 1.1;
        let t = Mat2::IDENTITY - v * (Mat2::rotation(phi) * Mat2::chirality_reflection(1.0));
        let mu = (v * v - 2.0 * v * phi.cos() + 1.0).sqrt();
        let f = t.qr();
        assert_mat_close(f.r, Mat2::scaling(mu), 1e-12);

        // χ = −1: R = [µ, −2v sinφ/µ; 0, (1−v²)/µ].
        let t = Mat2::IDENTITY - v * (Mat2::rotation(phi) * Mat2::chirality_reflection(-1.0));
        let f = t.qr();
        let expected = Mat2::new(mu, -2.0 * v * phi.sin() / mu, 0.0, (1.0 - v * v) / mu);
        assert_mat_close(f.r, expected, 1e-12);
    }

    #[test]
    fn display_formats_rows() {
        assert_eq!(Mat2::new(1.0, 2.0, 3.0, 4.0).to_string(), "[1 2; 3 4]");
    }
}
