//! Axis-aligned bounding boxes — the branchless envelope currency of
//! the compiled contact engine.
//!
//! The cursor engine's swept envelopes are [`Disk`]s because schedule
//! hierarchies have closed-form *radial* bounds. The compiled engine
//! instead unions thousands of per-piece certificates through a baked
//! tree, where the operation count dominates: an [`Aabb`] union is four
//! branchless min/max instructions (a disk union needs a square root
//! and a division), and a whole envelope *pair* test costs a single
//! square root at the very end ([`Aabb::gap`]).
//!
//! The empty box (`min = +∞`, `max = −∞`) is the union identity, so
//! tree nodes need no `Option` wrapper.

use crate::disk::Disk;
use crate::vec2::Vec2;
use std::fmt;

/// A closed axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// # Example
///
/// ```
/// use rvz_geometry::{Aabb, Vec2};
///
/// let a = Aabb::point(Vec2::ZERO).union(&Aabb::point(Vec2::new(1.0, 2.0)));
/// assert!(a.contains(Vec2::new(0.5, 1.0), 0.0));
/// let b = Aabb::point(Vec2::new(4.0, 2.0));
/// assert_eq!(a.gap(&b), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Vec2,
    /// Upper-right corner.
    pub max: Vec2,
}

impl Aabb {
    /// The empty box: the identity of [`Aabb::union`], containing no
    /// points (`gap` to anything is `+∞`).
    pub const EMPTY: Aabb = Aabb {
        min: Vec2 {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Vec2 {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// The degenerate box holding a single point.
    pub fn point(p: Vec2) -> Aabb {
        Aabb { min: p, max: p }
    }

    /// The box spanning two points (in any order per axis).
    pub fn spanning(a: Vec2, b: Vec2) -> Aabb {
        Aabb {
            min: Vec2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Vec2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The tight box around a disk (`center ± radius`).
    pub fn from_disk(d: &Disk) -> Aabb {
        let r = Vec2::new(d.radius, d.radius);
        Aabb {
            min: d.center - r,
            max: d.center + r,
        }
    }

    /// `true` for the empty box.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// The smallest box containing both — four branchless min/max ops.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Vec2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Vec2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The box grown by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Aabb {
        debug_assert!(margin >= 0.0, "margin must be >= 0, got {margin}");
        let m = Vec2::new(margin, margin);
        Aabb {
            min: self.min - m,
            max: self.max + m,
        }
    }

    /// The distance between the two boxes as point sets (0 when they
    /// touch or overlap, `+∞` when either is empty) — the separation
    /// certificate of the compiled engine, one square root per call.
    #[inline]
    pub fn gap(&self, other: &Aabb) -> f64 {
        if self.is_empty() || other.is_empty() {
            return f64::INFINITY;
        }
        let dx = (other.min.x - self.max.x)
            .max(self.min.x - other.max.x)
            .max(0.0);
        let dy = (other.min.y - self.max.y)
            .max(self.min.y - other.max.y)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// `true` when `p` lies inside the box, allowing `slack` of
    /// floating-point leakage.
    pub fn contains(&self, p: Vec2, slack: f64) -> bool {
        p.x >= self.min.x - slack
            && p.x <= self.max.x + slack
            && p.y >= self.min.y - slack
            && p.y <= self.max.y + slack
    }

    /// The smallest disk containing the box (for interoperating with
    /// the [`Disk`]-based cursor envelope contract; empty boxes map to
    /// a point at the origin with radius 0 — only reachable through
    /// empty programs, which the engines never query).
    pub fn to_disk(&self) -> Disk {
        if self.is_empty() {
            return Disk::point(Vec2::ZERO);
        }
        let center = self.min.lerp(self.max, 0.5);
        Disk::new(center, center.distance(self.max))
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_union_identity() {
        let b = Aabb::spanning(Vec2::ZERO, Vec2::new(2.0, 1.0));
        assert_eq!(Aabb::EMPTY.union(&b), b);
        assert_eq!(b.union(&Aabb::EMPTY), b);
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.gap(&b), f64::INFINITY);
    }

    #[test]
    fn gap_matches_geometry() {
        let a = Aabb::spanning(Vec2::ZERO, Vec2::new(1.0, 1.0));
        // Diagonal separation: corner (1,1) to corner (4,5) -> 5.
        let b = Aabb::spanning(Vec2::new(4.0, 5.0), Vec2::new(6.0, 7.0));
        assert!((a.gap(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.gap(&b), b.gap(&a));
        // Overlap -> 0.
        let c = Aabb::spanning(Vec2::new(0.5, 0.5), Vec2::new(2.0, 2.0));
        assert_eq!(a.gap(&c), 0.0);
        // Pure-x separation.
        let d = Aabb::spanning(Vec2::new(3.0, 0.0), Vec2::new(4.0, 1.0));
        assert_eq!(a.gap(&d), 2.0);
    }

    #[test]
    fn from_disk_and_back_are_sound() {
        let disk = Disk::new(Vec2::new(1.0, -2.0), 3.0);
        let b = Aabb::from_disk(&disk);
        for i in 0..32 {
            let angle = std::f64::consts::TAU * i as f64 / 32.0;
            assert!(b.contains(disk.center + Vec2::from_polar(disk.radius, angle), 1e-12));
        }
        // The round trip contains the box (radius grows by √2 at most).
        let round = b.to_disk();
        assert!(round.contains(b.min, 1e-12) && round.contains(b.max, 1e-12));
        assert!(round.radius <= disk.radius * std::f64::consts::SQRT_2 + 1e-12);
        assert_eq!(Aabb::EMPTY.to_disk().radius, 0.0);
    }

    #[test]
    fn expanded_grows_all_sides() {
        let b = Aabb::point(Vec2::ZERO).expanded(1.0);
        assert_eq!(b.min, Vec2::new(-1.0, -1.0));
        assert_eq!(b.max, Vec2::new(1.0, 1.0));
    }

    #[test]
    fn display_is_compact() {
        assert!(Aabb::point(Vec2::ZERO).to_string().starts_with("B["));
    }
}
