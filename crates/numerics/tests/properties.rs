//! Property-based tests for the numerical routines.

use proptest::prelude::*;
use rvz_numerics::{
    bisect, dyadic, find_root, lambert_w0, pow2i, Bracket, KahanSum,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Lambert W defining identity across 60 orders of magnitude.
    #[test]
    fn lambert_identity(exp in -20.0..40.0f64, mant in 1.0..10.0f64) {
        let y = mant * 10f64.powf(exp);
        let w = lambert_w0(y);
        let back = w * w.exp();
        prop_assert!(((back - y) / y).abs() < 1e-11, "y={y}, w={w}, back={back}");
    }

    /// W is monotone increasing.
    #[test]
    fn lambert_monotone(y1 in 0.0..1e9f64, y2 in 0.0..1e9f64) {
        prop_assume!(y1 < y2);
        prop_assert!(lambert_w0(y1) <= lambert_w0(y2));
    }

    /// The Hoorfar–Hassani lower bound ln x − ln ln x ≤ W(x) for x ≥ e.
    #[test]
    fn lambert_asymptotic_is_lower_bound(x in 2.72..1e30f64) {
        let l = x.ln();
        prop_assert!(l - l.ln() <= lambert_w0(x) + 1e-9);
    }

    /// floor_log2 is exactly ⌊log₂ x⌋.
    #[test]
    fn floor_log2_definition(mant in 1.0..2.0f64, e in -300..300i64) {
        let x = mant * pow2i(e);
        let f = dyadic::floor_log2(x);
        prop_assert!(pow2i(f) <= x);
        prop_assert!(pow2i(f + 1) > x);
    }

    /// ceil_log2 is exactly ⌈log₂ x⌉.
    #[test]
    fn ceil_log2_definition(mant in 1.0..2.0f64, e in -300..300i64) {
        let x = mant * pow2i(e);
        let c = dyadic::ceil_log2(x);
        prop_assert!(pow2i(c) >= x);
        if c > -1000 {
            prop_assert!(pow2i(c - 1) < x);
        }
    }

    /// Root finders locate roots of shifted cubics within tolerance.
    #[test]
    fn root_finders_agree(root in -5.0..5.0f64, scale in 0.1..10.0f64) {
        let f = |x: f64| scale * (x - root) * ((x - root).powi(2) + 0.5);
        let bracket = Bracket::new(root - 3.0, root + 4.0);
        let b = bisect(f, bracket, 1e-12).unwrap();
        let s = find_root(f, bracket, 1e-12).unwrap();
        prop_assert!((b - root).abs() < 1e-9);
        prop_assert!((s - root).abs() < 1e-9);
    }

    /// Kahan summation of shuffled values is order-insensitive at f64
    /// precision (naive summation is not).
    #[test]
    fn kahan_is_order_insensitive(values in proptest::collection::vec(-1e12..1e12f64, 2..40)) {
        let forward: KahanSum = values.iter().copied().collect();
        let backward: KahanSum = values.iter().rev().copied().collect();
        let scale = values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!(
            (forward.value() - backward.value()).abs() <= 1e-9 * scale,
            "forward {} vs backward {}",
            forward.value(),
            backward.value()
        );
    }
}
