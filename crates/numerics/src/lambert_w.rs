//! The principal branch of the Lambert W function.
//!
//! Lemma 12 of the paper solves `z·e^z = y` for the rendezvous round via
//! `z = W(y)`, and then simplifies with the asymptotic
//! `W(x) ≈ ln x − ln ln x` (citing Hoorfar–Hassani). Both forms are
//! provided here; the exact solver is used by the bound calculators in
//! `rvz-core` and the asymptotic is used to reproduce the paper's final
//! inequality chain.

/// Evaluates the principal branch `W₀(y)` for `y ≥ 0`.
///
/// Solves `W·e^W = y` by Halley iteration from a branch-appropriate
/// initial guess; converges to machine precision in ≤ 6 iterations on the
/// whole domain used by the workspace (`0 ≤ y ≤ 1e300`).
///
/// # Panics
///
/// Panics if `y` is negative or NaN — the paper only evaluates `W` at
/// positive arguments, so a negative argument is always a caller bug.
///
/// # Example
///
/// ```
/// use rvz_numerics::lambert_w0;
///
/// // W(e) = 1 because 1·e¹ = e.
/// assert!((lambert_w0(std::f64::consts::E) - 1.0).abs() < 1e-14);
/// assert_eq!(lambert_w0(0.0), 0.0);
/// ```
pub fn lambert_w0(y: f64) -> f64 {
    assert!(y >= 0.0, "lambert_w0 requires y >= 0, got {y}");
    if y == 0.0 {
        return 0.0;
    }
    if y.is_infinite() {
        return f64::INFINITY;
    }

    // Initial guess: for small y, W(y) ≈ y·(1 − y); for large y the
    // asymptotic ln y − ln ln y; in between, ln(1 + y) is a serviceable
    // bridge (it is exact at 0 and grows logarithmically).
    let mut w = if y < 1.0 {
        y * (1.0 - y).max(0.5)
    } else if y > std::f64::consts::E {
        let l = y.ln();
        l - l.ln()
    } else {
        (1.0 + y).ln()
    };

    // Halley iteration on f(w) = w·e^w − y.
    for _ in 0..50 {
        let ew = w.exp();
        let f = w * ew - y;
        if f == 0.0 {
            break;
        }
        let w1 = w + 1.0;
        let denom = ew * w1 - (w + 2.0) * f / (2.0 * w1);
        let step = f / denom;
        w -= step;
        if step.abs() <= 1e-16 * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

/// The paper's asymptotic approximation `W(x) ≈ ln x − ln ln x`.
///
/// Valid for `x ≥ e`; this is the form used in the proof of Lemma 12 to
/// turn the W-expression for the rendezvous round into the closed bound
/// `k* < n + ⌈log(n / (1 − γ))⌉`.
///
/// # Panics
///
/// Panics when `x < e`, where `ln ln x` is non-positive and the
/// approximation is meaningless.
pub fn lambert_w0_asymptotic(x: f64) -> f64 {
    assert!(
        x >= std::f64::consts::E,
        "asymptotic W requires x >= e, got {x}"
    );
    let l = x.ln();
    l - l.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::E;

    /// The defining identity W(y)·e^{W(y)} = y, on a log-spaced grid.
    #[test]
    fn identity_holds_across_magnitudes() {
        let mut y = 1e-12;
        while y < 1e100 {
            let w = lambert_w0(y);
            let back = w * w.exp();
            let rel = ((back - y) / y).abs();
            assert!(rel < 1e-12, "identity failed at y={y}: w={w}, back={back}");
            y *= 7.3;
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(lambert_w0(0.0), 0.0);
        assert!((lambert_w0(E) - 1.0).abs() < 1e-14);
        // W(2e²) = 2.
        assert!((lambert_w0(2.0 * E * E) - 2.0).abs() < 1e-13);
        // W(1) = Ω ≈ 0.5671432904097838.
        assert!((lambert_w0(1.0) - 0.567_143_290_409_783_8).abs() < 1e-14);
    }

    #[test]
    fn monotonically_increasing() {
        let mut prev = -1.0;
        let mut y = 0.0;
        while y < 1e6 {
            let w = lambert_w0(y);
            assert!(w > prev, "W not increasing at y={y}");
            prev = w;
            y = y * 1.5 + 0.1;
        }
    }

    #[test]
    fn infinite_input() {
        assert_eq!(lambert_w0(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "requires y >= 0")]
    fn negative_input_panics() {
        let _ = lambert_w0(-0.1);
    }

    #[test]
    fn asymptotic_is_close_for_large_x() {
        // Hoorfar–Hassani: ln x − ln ln x ≤ W(x) for x ≥ e; the gap is
        // O(ln ln x / ln x).
        for &x in &[1e3, 1e6, 1e12, 1e30] {
            let exact = lambert_w0(x);
            let approx = lambert_w0_asymptotic(x);
            assert!(approx <= exact + 1e-12, "asymptotic above exact at {x}");
            let rel = (exact - approx) / exact;
            assert!(rel < 0.35, "asymptotic too loose at {x}: rel={rel}");
        }
        // And it tightens as x grows.
        let gap_small = lambert_w0(1e6) - lambert_w0_asymptotic(1e6);
        let gap_large = lambert_w0(1e30) - lambert_w0_asymptotic(1e30);
        assert!(gap_large < gap_small);
    }

    #[test]
    #[should_panic(expected = "requires x >= e")]
    fn asymptotic_rejects_small_x() {
        let _ = lambert_w0_asymptotic(1.0);
    }
}
