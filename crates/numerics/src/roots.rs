//! Root bracketing and refinement for scalar functions.
//!
//! The simulator's contact detection and several bound calculators need to
//! locate the first zero of a continuous function on an interval. A
//! bracketed bisection is guaranteed to converge; [`find_root`] layers a
//! secant acceleration on top (a simplified Brent scheme) while never
//! leaving the bracket.

use std::fmt;

/// An interval `[lo, hi]` whose endpoints straddle a root: `f(lo)` and
/// `f(hi)` have opposite signs (or one is zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Bracket {
    /// Creates a bracket.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bracket must be finite");
        assert!(lo <= hi, "bracket endpoints out of order: [{lo}, {hi}]");
        Bracket { lo, hi }
    }

    /// Interval width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Error returned when a root cannot be located.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootError {
    /// `f(lo)` and `f(hi)` have the same sign, so the bracket does not
    /// certify a root.
    NotBracketed,
    /// The function returned NaN inside the bracket.
    NotFinite,
}

impl fmt::Display for RootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RootError::NotBracketed => write!(f, "function does not change sign on the bracket"),
            RootError::NotFinite => write!(f, "function returned a non-finite value"),
        }
    }
}

impl std::error::Error for RootError {}

/// Pure bisection to absolute tolerance `tol` on the argument.
///
/// Robust but linear-rate; used as the fallback inside [`find_root`] and
/// directly where the function is cheap.
///
/// # Errors
///
/// Returns [`RootError::NotBracketed`] when the endpoint values share a
/// sign, and [`RootError::NotFinite`] if `f` produces NaN.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    bracket: Bracket,
    tol: f64,
) -> Result<f64, RootError> {
    let (mut lo, mut hi) = (bracket.lo, bracket.hi);
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo.is_nan() || fhi.is_nan() {
        return Err(RootError::NotFinite);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(RootError::NotBracketed);
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // interval at floating-point resolution
        }
        let fm = f(mid);
        if fm.is_nan() {
            return Err(RootError::NotFinite);
        }
        if fm == 0.0 {
            return Ok(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
            flo = fm;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Bracketed root finding with secant acceleration (simplified Brent).
///
/// Maintains the bisection bracket invariant at every step, so it is as
/// robust as [`bisect`] but converges superlinearly on smooth functions.
///
/// # Errors
///
/// Same conditions as [`bisect`].
///
/// # Example
///
/// ```
/// use rvz_numerics::{find_root, Bracket};
///
/// let root = find_root(|x| x * x - 2.0, Bracket::new(0.0, 2.0), 1e-14).unwrap();
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-12);
/// ```
pub fn find_root<F: FnMut(f64) -> f64>(
    mut f: F,
    bracket: Bracket,
    tol: f64,
) -> Result<f64, RootError> {
    let (mut lo, mut hi) = (bracket.lo, bracket.hi);
    let mut flo = f(lo);
    let mut fhi = f(hi);
    if flo.is_nan() || fhi.is_nan() {
        return Err(RootError::NotFinite);
    }
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(RootError::NotBracketed);
    }

    for _ in 0..200 {
        if hi - lo <= tol {
            break;
        }
        // Secant proposal from the bracket endpoints.
        let secant = lo - flo * (hi - lo) / (fhi - flo);
        let mid = 0.5 * (lo + hi);
        // Accept the secant point only if it falls safely inside the
        // bracket; otherwise bisect.
        let x = if secant > lo + 0.01 * (hi - lo) && secant < hi - 0.01 * (hi - lo) {
            secant
        } else {
            mid
        };
        if x <= lo || x >= hi {
            break; // floating-point resolution reached
        }
        let fx = f(x);
        if fx.is_nan() {
            return Err(RootError::NotFinite);
        }
        if fx == 0.0 {
            return Ok(x);
        }
        if fx.signum() == flo.signum() {
            lo = x;
            flo = fx;
        } else {
            hi = x;
            fhi = fx;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, Bracket::new(0.0, 2.0), 1e-12).unwrap();
        assert!((r - 2.0_f64.sqrt()).abs() < 1e-11);
    }

    #[test]
    fn find_root_matches_bisect_but_faster_paths_work() {
        let f = |x: f64| x.cos() - x;
        let r = find_root(f, Bracket::new(0.0, 1.0), 1e-14).unwrap();
        assert!((r - 0.739_085_133_215_160_6).abs() < 1e-12);
    }

    #[test]
    fn root_at_endpoint_is_returned_immediately() {
        assert_eq!(bisect(|x| x, Bracket::new(0.0, 1.0), 1e-12).unwrap(), 0.0);
        assert_eq!(
            find_root(|x| x - 1.0, Bracket::new(0.0, 1.0), 1e-12).unwrap(),
            1.0
        );
    }

    #[test]
    fn unbracketed_is_an_error() {
        assert_eq!(
            bisect(|x| x * x + 1.0, Bracket::new(-1.0, 1.0), 1e-12),
            Err(RootError::NotBracketed)
        );
        assert_eq!(
            find_root(|x| x * x + 1.0, Bracket::new(-1.0, 1.0), 1e-12),
            Err(RootError::NotBracketed)
        );
    }

    #[test]
    fn nan_is_detected() {
        assert_eq!(
            bisect(
                |x| if x > 0.4 { f64::NAN } else { x - 0.7 },
                Bracket::new(0.0, 1.0),
                1e-12
            ),
            Err(RootError::NotFinite)
        );
    }

    #[test]
    fn steep_and_flat_functions() {
        // Very steep root.
        let r = find_root(|x| (x - 0.3) * 1e12, Bracket::new(0.0, 1.0), 1e-14).unwrap();
        assert!((r - 0.3).abs() < 1e-12);
        // Very flat approach to the root.
        let r = find_root(|x| (x - 0.5).powi(3), Bracket::new(0.0, 1.0), 1e-12).unwrap();
        assert!((r - 0.5).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn bracket_validates_order() {
        let _ = Bracket::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn bracket_validates_finiteness() {
        let _ = Bracket::new(0.0, f64::INFINITY);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            RootError::NotBracketed.to_string(),
            "function does not change sign on the bracket"
        );
    }
}
