//! Exact powers of two and dyadic helpers.
//!
//! Every radius, granularity and phase length in the paper is a dyadic
//! rational (`δ_{j,k} = 2^{j−k}`, `ρ_{j,k} = 2^{2j−3k−1}`, …), so computing
//! them as `f64::exp2` of integer exponents keeps them **bit-exact** and
//! makes circle counts and indices integer-exact as well. These helpers
//! centralize that discipline.

/// `2^e` for an integer exponent, exact whenever representable.
///
/// # Example
///
/// ```
/// use rvz_numerics::pow2i;
/// assert_eq!(pow2i(-3), 0.125);
/// assert_eq!(pow2i(10), 1024.0);
/// ```
#[inline]
pub fn pow2i(e: i64) -> f64 {
    (e as f64).exp2()
}

/// `2^e` for a real exponent (thin wrapper over [`f64::exp2`], named for
/// symmetry with [`pow2i`]).
#[inline]
pub fn pow2(e: f64) -> f64 {
    e.exp2()
}

/// `⌊log₂ x⌋` as an integer, for `x > 0`.
///
/// Exact for all positive finite `f64` including subnormals: uses
/// bit-level exponent extraction, then corrects for the mantissa.
///
/// # Panics
///
/// Panics if `x ≤ 0` or `x` is not finite.
///
/// # Example
///
/// ```
/// use rvz_numerics::floor_log2;
/// assert_eq!(floor_log2(1.0), 0);
/// assert_eq!(floor_log2(0.9999), -1);
/// assert_eq!(floor_log2(1024.0), 10);
/// assert_eq!(floor_log2(1023.0), 9);
/// ```
pub fn floor_log2(x: f64) -> i64 {
    assert!(
        x > 0.0 && x.is_finite(),
        "floor_log2 requires finite x > 0, got {x}"
    );
    // log2 is exact enough to be within 1 of the truth; fix up by direct
    // comparison with exact powers of two.
    let mut e = x.log2().floor() as i64;
    while pow2i(e) > x {
        e -= 1;
    }
    while pow2i(e + 1) <= x {
        e += 1;
    }
    e
}

/// `⌈log₂ x⌉` as an integer, for `x > 0`.
///
/// # Panics
///
/// Panics if `x ≤ 0` or `x` is not finite.
pub fn ceil_log2(x: f64) -> i64 {
    let f = floor_log2(x);
    if pow2i(f) == x {
        f
    } else {
        f + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2i_exactness() {
        assert_eq!(pow2i(0), 1.0);
        assert_eq!(pow2i(-1), 0.5);
        assert_eq!(pow2i(52), 4_503_599_627_370_496.0);
        assert_eq!(pow2i(-1074), f64::from_bits(1)); // smallest subnormal
    }

    #[test]
    fn pow2_real_exponent() {
        assert!((pow2(0.5) - 2.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn floor_log2_on_exact_powers() {
        for e in -60..60 {
            assert_eq!(floor_log2(pow2i(e)), e, "at 2^{e}");
        }
    }

    #[test]
    fn floor_log2_just_below_and_above_powers() {
        for e in -30..30 {
            let p = pow2i(e);
            let below = p * (1.0 - 1e-12);
            let above = p * (1.0 + 1e-12);
            assert_eq!(floor_log2(below), e - 1, "below 2^{e}");
            assert_eq!(floor_log2(above), e, "above 2^{e}");
        }
    }

    #[test]
    fn floor_log2_subnormals() {
        assert_eq!(floor_log2(f64::from_bits(1)), -1074);
        assert_eq!(floor_log2(f64::MIN_POSITIVE), -1022);
    }

    #[test]
    fn ceil_log2_basics() {
        assert_eq!(ceil_log2(1.0), 0);
        assert_eq!(ceil_log2(1.1), 1);
        assert_eq!(ceil_log2(2.0), 1);
        assert_eq!(ceil_log2(3.0), 2);
        assert_eq!(ceil_log2(0.25), -2);
        assert_eq!(ceil_log2(0.3), -1);
    }

    #[test]
    #[should_panic(expected = "requires finite x > 0")]
    fn floor_log2_rejects_zero() {
        let _ = floor_log2(0.0);
    }

    #[test]
    #[should_panic(expected = "requires finite x > 0")]
    fn floor_log2_rejects_negative() {
        let _ = floor_log2(-1.0);
    }
}
