//! Kahan compensated summation.
//!
//! Closed-form cross-checks in the test suites accumulate thousands of
//! per-segment durations; naive `f64` addition would drift enough to make
//! exactness assertions flaky. [`KahanSum`] keeps the error at O(ε)
//! independent of the number of terms.

/// A running compensated sum.
///
/// # Example
///
/// ```
/// use rvz_numerics::KahanSum;
///
/// let mut s = KahanSum::new();
/// for _ in 0..1_000_000 {
///     s.add(0.1);
/// }
/// assert!((s.value() - 100_000.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Creates a sum starting from `initial`.
    pub fn with_initial(initial: f64) -> Self {
        KahanSum {
            sum: initial,
            compensation: 0.0,
        }
    }

    /// Adds a term.
    #[inline]
    pub fn add(&mut self, term: f64) {
        let y = term - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// The current compensated value of the sum.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum
    }
}

impl Extend<f64> for KahanSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for term in iter {
            self.add(term);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = KahanSum::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
    }

    #[test]
    fn beats_naive_summation() {
        let n = 10_000_000;
        let term = 0.1_f64;
        let mut naive = 0.0_f64;
        let mut kahan = KahanSum::new();
        for _ in 0..n {
            naive += term;
            kahan.add(term);
        }
        let exact = n as f64 * term;
        let kahan_err = (kahan.value() - exact).abs();
        let naive_err = (naive - exact).abs();
        assert!(kahan_err <= naive_err);
        assert!(kahan_err < 1e-6);
    }

    #[test]
    fn cancellation_heavy_series() {
        // Σ (big − big + small) should reduce to n·small.
        let mut s = KahanSum::new();
        for _ in 0..1000 {
            s.add(1e15);
            s.add(-1e15);
            s.add(1.0);
        }
        assert_eq!(s.value(), 1000.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: KahanSum = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.value(), 6.0);
        let mut t = KahanSum::with_initial(10.0);
        t.extend([1.0, 1.0]);
        assert_eq!(t.value(), 12.0);
    }
}
