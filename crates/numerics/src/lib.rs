//! # rvz-numerics
//!
//! Scalar numerical routines required by the rendezvous analysis of
//! Czyzowicz, Gąsieniec, Killick and Kranakis (PODC 2019).
//!
//! The paper's Lemma 12 bounds the rendezvous round through the **Lambert W
//! function** (`W(y)·e^{W(y)} = y`), and several bound calculators need
//! robust root bracketing and dyadic (power-of-two) arithmetic that stays
//! integer-exact in `f64`. Everything here is dependency-free and heavily
//! unit-tested, because downstream crates treat these routines as ground
//! truth when checking the paper's closed forms.
//!
//! ## Modules
//!
//! * [`lambert_w`] — the principal branch `W₀` on `[0, ∞)` via Halley
//!   iteration, plus the `ln x − ln ln x` asymptotic used by the paper.
//! * [`roots`] — bisection and Brent-style root refinement on a bracket.
//! * [`dyadic`] — exact powers of two and `log₂` helpers.
//! * [`summation`] — Kahan compensated summation for long series.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod dyadic;
pub mod lambert_w;
pub mod roots;
pub mod summation;

pub use dyadic::{floor_log2, pow2, pow2i};
pub use lambert_w::{lambert_w0, lambert_w0_asymptotic};
pub use roots::{bisect, find_root, Bracket, RootError};
pub use summation::KahanSum;
