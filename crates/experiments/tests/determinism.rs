//! Integration tests for the sweep subsystem's reproducibility
//! guarantees: seeded generation is deterministic, grid cardinality
//! matches the requested shape, and sweep artifacts are byte-identical
//! across thread counts.

use rvz_experiments::{
    latin_hypercube, run_sweep, write_csv, write_jsonl, Algorithm, SampleSpace, ScenarioGrid,
    Summary, SweepOptions,
};
use rvz_model::Chirality;

fn theorem4_grid() -> ScenarioGrid {
    ScenarioGrid::new()
        .speeds(&[0.5, 1.0])
        .clocks(&[0.6, 1.0])
        .orientations(&[0.0, 1.3])
        .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
        .distances(&[0.9])
        .visibilities(&[0.25])
}

#[test]
fn grid_cardinality_matches_requested_shape() {
    let grid = theorem4_grid();
    assert_eq!(grid.shape(), [1, 2, 2, 2, 2, 1, 1, 1]);
    assert_eq!(grid.len(), 16);
    let scenarios = grid.build();
    assert_eq!(scenarios.len(), 16);
    // Dense ids in generation order; every scenario denotes a valid
    // instance.
    for (i, s) in scenarios.iter().enumerate() {
        assert_eq!(s.id, i as u64);
        assert!(s.instance().is_ok());
    }
}

#[test]
fn fixed_seed_reproduces_the_same_sample() {
    let space = SampleSpace {
        algorithms: vec![Algorithm::WaitAndSearch, Algorithm::UniversalSearch],
        ..SampleSpace::default()
    };
    let a = latin_hypercube(&space, 128, 2024);
    let b = latin_hypercube(&space, 128, 2024);
    assert_eq!(a, b, "same (space, n, seed) must give the same sample");
    assert_ne!(
        a,
        latin_hypercube(&space, 128, 2025),
        "a different seed must perturb the sample"
    );
    // Discrete axes were actually exercised.
    assert!(a.iter().any(|s| s.algorithm == Algorithm::UniversalSearch));
    assert!(a.iter().any(|s| s.chirality == Chirality::Mirrored));
}

#[test]
fn sweep_results_are_identical_across_thread_counts() {
    let scenarios = theorem4_grid().build();
    let single = run_sweep(
        &scenarios,
        &SweepOptions {
            threads: 1,
            ..SweepOptions::default()
        },
    );
    for threads in [2, 3, 8] {
        let parallel = run_sweep(
            &scenarios,
            &SweepOptions {
                threads,
                ..SweepOptions::default()
            },
        );
        assert_eq!(single, parallel, "thread count {threads} changed results");
    }
}

#[test]
fn sweep_artifacts_are_byte_identical_across_thread_counts() {
    let scenarios = theorem4_grid().build();
    let render = |threads: usize| -> (Vec<u8>, Vec<u8>) {
        let records = run_sweep(
            &scenarios,
            &SweepOptions {
                threads,
                ..SweepOptions::default()
            },
        );
        let mut jsonl = Vec::new();
        let mut csv = Vec::new();
        write_jsonl(&mut jsonl, &records).unwrap();
        write_csv(&mut csv, &records).unwrap();
        (jsonl, csv)
    };
    let (jsonl_1, csv_1) = render(1);
    let (jsonl_4, csv_4) = render(4);
    assert_eq!(jsonl_1, jsonl_4, "JSONL artifact depends on thread count");
    assert_eq!(csv_1, csv_4, "CSV artifact depends on thread count");
    assert_eq!(
        jsonl_1.iter().filter(|&&b| b == b'\n').count(),
        scenarios.len()
    );
}

#[test]
fn summary_is_consistent_with_theorem4_on_the_grid() {
    let records = run_sweep(&theorem4_grid().build(), &SweepOptions::default());
    let summary = Summary::from_records(&records);
    assert_eq!(summary.total, 16);
    assert_eq!(
        summary.consistent, summary.total,
        "simulation disagreed with the Theorem 4 predicate"
    );
    // The grid contains both feasible and infeasible cells.
    assert!(summary.contacts > 0);
    assert!(summary.contacts < summary.total);
}
