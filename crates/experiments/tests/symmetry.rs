//! Physical soundness of the role-swap symmetry: the canonicalization
//! layer claims that a scenario and its [`rvz_experiments::role_swap`]
//! describe the *same* instance up to the joint time/distance rescale.
//! These tests check that claim against the actual trajectories and the
//! actual engine, not just the algebra.

use rvz_core::{completion_time, WaitAndSearch};
use rvz_experiments::{
    canonicalize, latin_hypercube, role_swap, Algorithm, SampleSpace, Scenario, DEFAULT_GRID,
};
use rvz_model::feasibility;
use rvz_search::UniversalSearch;
use rvz_sim::batch::simulate_rendezvous_by_ref;
use rvz_sim::{ContactOptions, SimOutcome};
use rvz_trajectory::Trajectory;

fn sample(n: usize, seed: u64) -> Vec<Scenario> {
    let space = SampleSpace {
        // Keep the instances moderate so every feasible one meets well
        // within the horizon.
        speed: (0.4, 1.8),
        time_unit: (0.4, 1.8),
        distance: (0.6, 1.4),
        visibility: 0.2,
        algorithms: vec![Algorithm::WaitAndSearch, Algorithm::UniversalSearch],
        ..SampleSpace::default()
    };
    latin_hypercube(&space, n, seed)
}

/// The inter-robot distance of a scenario's two trajectories at global
/// time `t`.
fn distance_at(s: &Scenario, t: f64) -> f64 {
    let inst = s.instance().expect("valid scenario");
    let offset = inst.offset();
    let attrs = inst.attributes();
    match s.algorithm {
        Algorithm::WaitAndSearch => {
            let partner = attrs.frame_warp(WaitAndSearch, offset);
            (WaitAndSearch.position(t) - partner.position(t)).norm()
        }
        Algorithm::UniversalSearch => {
            let partner = attrs.frame_warp(UniversalSearch, offset);
            (UniversalSearch.position(t) - partner.position(t)).norm()
        }
    }
}

/// The swapped description's distance profile is the original's, scaled:
/// `dist'(t/τ) = dist(t) / (v·τ)` for all `t`.
#[test]
fn swapped_distance_profile_is_the_rescaled_original() {
    for s in sample(24, 11) {
        let (swapped, transform) = role_swap(&s);
        let scale = transform.distance_scale;
        for i in 0..40 {
            let t = 0.35 * i as f64;
            let original = distance_at(&s, t);
            let mirrored = distance_at(&swapped, t / s.time_unit);
            assert!(
                (original - mirrored * scale).abs() <= 1e-9 * (1.0 + original),
                "profile mismatch at t = {t} for {s:?}: {original} vs {} (scaled)",
                mirrored * scale
            );
        }
    }
}

/// Running the engine on the swapped description (with the options
/// mapped into that frame) reproduces the original outcome through the
/// inverse transform.
#[test]
fn engine_outcomes_map_back_through_the_inverse_transform() {
    let horizon = completion_time(8);
    for s in sample(16, 23) {
        let opts = ContactOptions {
            tolerance: 1e-9,
            horizon,
            max_steps: 200_000,
            ..ContactOptions::default()
        };
        let (swapped, transform) = role_swap(&s);
        let swapped_opts = ContactOptions {
            tolerance: opts.tolerance / transform.distance_scale,
            horizon: opts.horizon / transform.time_scale,
            ..opts
        };
        let direct = run(&s, &opts);
        let mapped = transform.apply(run(&swapped, &swapped_opts));
        match (direct, mapped) {
            (SimOutcome::Contact { time: a, .. }, SimOutcome::Contact { time: b, .. }) => {
                assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + a),
                    "contact times diverge for {s:?}: {a} vs {b}"
                );
            }
            (SimOutcome::Contact { .. }, other) => {
                panic!("swapped run lost the contact for {s:?}: {other:?}")
            }
            (_, SimOutcome::Contact { .. }) => {
                panic!("swapped run invented a contact for {s:?}")
            }
            // Both non-contact: the disproof agrees; min-distance details
            // may differ (the engines sample different step sequences).
            _ => {}
        }
        // Feasibility is orbit-invariant, so a contact can only appear on
        // feasible scenarios either way.
        if direct.is_contact() {
            assert!(feasibility(&s.attributes()).is_feasible());
        }
    }
}

/// The full cache pipeline: simulate the canonical representative, map
/// the outcome back, compare against simulating the query directly.
#[test]
fn canonical_representative_answers_for_the_whole_orbit() {
    let opts = ContactOptions {
        tolerance: 1e-9,
        horizon: completion_time(8),
        max_steps: 200_000,
        ..ContactOptions::default()
    };
    for s in sample(16, 47) {
        let c = canonicalize(&s, DEFAULT_GRID);
        let canonical_opts = ContactOptions {
            tolerance: opts.tolerance / c.transform.distance_scale,
            horizon: opts.horizon / c.transform.time_scale,
            ..opts
        };
        let direct = run(&s, &opts);
        let mapped = c.transform.apply(run(&c.scenario, &canonical_opts));
        assert_eq!(
            direct.is_contact(),
            mapped.is_contact(),
            "classification flips through the cache for {s:?}: {direct:?} vs {mapped:?}"
        );
        if let (SimOutcome::Contact { time: a, .. }, SimOutcome::Contact { time: b, .. }) =
            (direct, mapped)
        {
            // The representative is grid-quantized (≤ 2⁻³⁰ per field), so
            // allow a correspondingly loose but still tight agreement.
            assert!(
                (a - b).abs() <= 1e-4 * (1.0 + a),
                "contact times diverge through the cache for {s:?}: {a} vs {b}"
            );
        }
    }
}

fn run(s: &Scenario, opts: &ContactOptions) -> SimOutcome {
    let inst = s.instance().expect("valid scenario");
    match s.algorithm {
        Algorithm::WaitAndSearch => simulate_rendezvous_by_ref(&WaitAndSearch, &inst, opts),
        Algorithm::UniversalSearch => simulate_rendezvous_by_ref(&UniversalSearch, &inst, opts),
    }
}
