//! Crash-safe file primitives with deterministic disk-fault injection.
//!
//! Everything the workspace persists — the serve cache snapshot, the
//! sweep checkpoint journal and its manifest — goes through the two
//! wrappers here, so every durability claim in the crash matrix
//! (ARCHITECTURE.md, "Durability and crash recovery") is exercised by
//! the same injected faults in tests and CI:
//!
//! * [`DurableFile`] — whole-file atomic replace: write to a sibling
//!   temp file, `fsync`, then atomically rename over the destination.
//!   A crash (or injected fault) at any point leaves either the old
//!   file or the new file, never a mix; a stale temp file is ignored by
//!   readers and cleaned up by the next successful commit.
//! * [`JournalFile`] — append-only journal: records are appended and
//!   periodically `fsync`ed. A crash can tear the final record; readers
//!   salvage the valid prefix (each record carries its own CRC).
//!
//! ## Fault injection
//!
//! [`DiskFaults`] mirrors the serve stack's `FaultState` discipline
//! exactly: four seeded sites ([`DiskFaultSite`]) with per-site split
//! [`SplitMix64`] decision streams, the same `rate` + `limit` grammar,
//! and zero cost when off (an `Option<Arc<DiskFaults>>` that is `None`
//! in production costs one pointer-null check per I/O operation).
//!
//! The CRC-32 (IEEE) implementation lives here too — both the snapshot
//! segment format and the checkpoint journal frame their records with
//! it.

use crate::rng::SplitMix64;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
///
/// The classic byte-at-a-time table implementation; the table is built
/// on first use and shared for the process lifetime.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// The FNV-1a 64-bit offset basis — seed value for [`fnv1a64`] chains.
pub const FNV_OFFSET_BASIS: u64 = 0xCBF2_9CE4_8422_2325;

/// One step of a chained FNV-1a 64-bit digest: folds `bytes` into
/// `hash`. Used for the content fingerprints that pin a checkpoint or
/// snapshot to the configuration that produced it.
pub fn fnv1a64(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Where a disk fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultSite {
    /// A write persists only a prefix of the buffer, then errors — the
    /// torn-record case an appended journal must salvage around.
    ShortWrite,
    /// The atomic rename of a [`DurableFile`] commit fails: the temp
    /// file is left behind and the destination keeps its old contents.
    TornRename,
    /// A read returns the file's bytes with one flipped — the case the
    /// per-record CRC exists to catch.
    ReadCorrupt,
    /// `fsync` reports failure: the caller must not assume durability
    /// for anything written since the last successful sync.
    FsyncFail,
}

const SITE_COUNT: usize = 4;

/// Per-site salt so split streams never collide across sites (same
/// construction as the serve stack's in-process fault sites).
const SITE_SALT: [u64; SITE_COUNT] = [
    0x5348_4F52_5457_5254, // "SHORTWRT"
    0x544F_524E_5245_4E4D, // "TORNRENM"
    0x5245_4144_434F_5252, // "READCORR"
    0x4653_594E_4346_4149, // "FSYNCFAI"
];

/// The seeded disk-fault plan: rates in `[0, 1]` per site, a shared
/// seed, and an optional cap on total injections per site.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiskFaultPlan {
    /// Seed for every site's decision stream.
    pub seed: u64,
    /// Rate of [`DiskFaultSite::ShortWrite`].
    pub short_write: f64,
    /// Rate of [`DiskFaultSite::TornRename`].
    pub torn_rename: f64,
    /// Rate of [`DiskFaultSite::ReadCorrupt`].
    pub read_corrupt: f64,
    /// Rate of [`DiskFaultSite::FsyncFail`].
    pub fsync_fail: f64,
    /// Maximum injections per site (`0` = unlimited).
    pub limit: u64,
}

impl DiskFaultPlan {
    /// Parses a `key=value[,key=value...]` spec, e.g.
    /// `seed=42,short_write=0.5,fsync_fail=1,limit=2`.
    ///
    /// Keys: `seed`, `short_write`, `torn_rename`, `read_corrupt`,
    /// `fsync_fail`, `limit`. Rates must lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause and key.
    pub fn parse(spec: &str) -> Result<DiskFaultPlan, String> {
        let mut plan = DiskFaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let clause = part.trim();
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault spec clause `{clause}` is not `key=value`"))?;
            let (key, value) = (key.trim(), value.trim());
            plan.apply(key, value)
                .map_err(|e| format!("in fault spec clause `{clause}`: {e}"))?;
        }
        Ok(plan)
    }

    /// Applies one parsed `key=value` pair; the seam that lets the
    /// serve stack's richer `--faults` grammar delegate its disk
    /// clauses here without re-stating the keys.
    ///
    /// # Errors
    ///
    /// Returns a message naming the key (no clause context — callers
    /// add their own).
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        let int = || -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("key `{key}` expects an integer, got `{value}`"))
        };
        let rate = || -> Result<f64, String> {
            let r: f64 = value
                .parse()
                .map_err(|_| format!("key `{key}` expects a number, got `{value}`"))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("rate for site `{key}` must be in [0, 1], got {r}"));
            }
            Ok(r)
        };
        match key {
            "seed" => self.seed = int()?,
            "short_write" => self.short_write = rate()?,
            "torn_rename" => self.torn_rename = rate()?,
            "read_corrupt" => self.read_corrupt = rate()?,
            "fsync_fail" => self.fsync_fail = rate()?,
            "limit" => self.limit = int()?,
            _ => {
                return Err(format!(
                    "unknown key `{key}` (expected seed, short_write, torn_rename, \
                     read_corrupt, fsync_fail, limit)"
                ))
            }
        }
        Ok(())
    }

    /// `true` when at least one site can fire.
    pub fn is_active(&self) -> bool {
        self.short_write > 0.0
            || self.torn_rename > 0.0
            || self.read_corrupt > 0.0
            || self.fsync_fail > 0.0
    }

    fn rate(&self, site: DiskFaultSite) -> f64 {
        match site {
            DiskFaultSite::ShortWrite => self.short_write,
            DiskFaultSite::TornRename => self.torn_rename,
            DiskFaultSite::ReadCorrupt => self.read_corrupt,
            DiskFaultSite::FsyncFail => self.fsync_fail,
        }
    }
}

/// Runtime disk-fault state: the plan plus per-site decision/injection
/// counters (shared via `Arc` between the snapshot writer, the journal
/// and readers).
pub struct DiskFaults {
    plan: DiskFaultPlan,
    decisions: [AtomicU64; SITE_COUNT],
    injected: [AtomicU64; SITE_COUNT],
}

/// The `rvz_faults_injected_total{site=…}` counter for a disk site
/// (one macro call site per label value so each handle caches
/// independently).
fn injected_metric(site: DiskFaultSite) -> &'static rvz_obs::Counter {
    use rvz_obs::counter;
    match site {
        DiskFaultSite::ShortWrite => {
            counter!("rvz_faults_injected_total", "site" => "short_write")
        }
        DiskFaultSite::TornRename => {
            counter!("rvz_faults_injected_total", "site" => "torn_rename")
        }
        DiskFaultSite::ReadCorrupt => {
            counter!("rvz_faults_injected_total", "site" => "read_corrupt")
        }
        DiskFaultSite::FsyncFail => {
            counter!("rvz_faults_injected_total", "site" => "fsync_fail")
        }
    }
}

/// Touches the four disk-site `rvz_faults_injected_total` counters so
/// a fresh `/metrics` scrape lists the family before any fault fires.
pub fn preregister_fault_metrics() {
    for site in [
        DiskFaultSite::ShortWrite,
        DiskFaultSite::TornRename,
        DiskFaultSite::ReadCorrupt,
        DiskFaultSite::FsyncFail,
    ] {
        let _ = injected_metric(site);
    }
}

impl DiskFaults {
    /// Builds the runtime state for a plan.
    pub fn new(plan: DiskFaultPlan) -> DiskFaults {
        DiskFaults {
            plan,
            decisions: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Decides (deterministically per site-visit index) whether this
    /// visit to `site` injects a fault, honoring the plan's `limit`.
    pub fn fires(&self, site: DiskFaultSite) -> bool {
        let rate = self.plan.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let n = self.decisions[site as usize].fetch_add(1, Ordering::Relaxed);
        if SplitMix64::new(self.plan.seed ^ SITE_SALT[site as usize])
            .split(n)
            .next_f64()
            >= rate
        {
            return false;
        }
        if self.plan.limit > 0 {
            // Reserve one slot under the cap; give it back on overrun.
            if self.injected[site as usize].fetch_add(1, Ordering::Relaxed) >= self.plan.limit {
                self.injected[site as usize].fetch_sub(1, Ordering::Relaxed);
                return false;
            }
        } else {
            self.injected[site as usize].fetch_add(1, Ordering::Relaxed);
        }
        injected_metric(site).inc();
        true
    }

    /// How many faults have been injected at `site`.
    pub fn injected(&self, site: DiskFaultSite) -> u64 {
        self.injected[site as usize].load(Ordering::Relaxed)
    }
}

fn injected_error(what: &str) -> io::Error {
    io::Error::other(format!("injected disk fault: {what}"))
}

/// Writes `buf`, honoring an injected [`DiskFaultSite::ShortWrite`]:
/// under the fault only the first half of the buffer lands before the
/// error surfaces — the on-disk state a real torn write leaves.
fn write_all_faulty(
    file: &mut File,
    buf: &[u8],
    faults: Option<&Arc<DiskFaults>>,
) -> io::Result<()> {
    if let Some(f) = faults {
        if f.fires(DiskFaultSite::ShortWrite) {
            file.write_all(&buf[..buf.len() / 2])?;
            return Err(injected_error("short write"));
        }
    }
    file.write_all(buf)
}

/// `fsync`s `file`, honoring an injected [`DiskFaultSite::FsyncFail`].
fn sync_faulty(file: &File, faults: Option<&Arc<DiskFaults>>) -> io::Result<()> {
    if let Some(f) = faults {
        if f.fires(DiskFaultSite::FsyncFail) {
            return Err(injected_error("fsync failure"));
        }
    }
    file.sync_all()
}

/// The sibling temp path a [`DurableFile`] stages its contents in.
fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Whole-file atomic replace: stage in a sibling temp file, `fsync`,
/// rename over the destination.
///
/// Until [`DurableFile::commit`] succeeds, the destination keeps its
/// previous contents (or stays absent); an uncommitted wrapper removes
/// its temp file on drop, and a temp file orphaned by a crash is
/// harmless — readers never look at it and the next commit replaces it.
pub struct DurableFile {
    final_path: PathBuf,
    tmp_path: PathBuf,
    file: Option<File>,
    faults: Option<Arc<DiskFaults>>,
}

impl DurableFile {
    /// Stages a new file destined for `path`.
    ///
    /// # Errors
    ///
    /// Propagates temp-file creation failure.
    pub fn create(path: &Path, faults: Option<Arc<DiskFaults>>) -> io::Result<DurableFile> {
        let tmp_path = temp_path(path);
        let file = File::create(&tmp_path)?;
        Ok(DurableFile {
            final_path: path.to_path_buf(),
            tmp_path,
            file: Some(file),
            faults,
        })
    }

    /// Appends `buf` to the staged contents.
    ///
    /// # Errors
    ///
    /// Propagates write failure (including an injected short write,
    /// which leaves a torn prefix in the temp file).
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let file = self.file.as_mut().expect("write after commit");
        write_all_faulty(file, buf, self.faults.as_ref())
    }

    /// Durably publishes the staged contents: `fsync` the temp file,
    /// atomically rename it over the destination.
    ///
    /// # Errors
    ///
    /// On any failure (including injected fsync/rename faults) the
    /// destination is untouched and the temp file is removed.
    pub fn commit(mut self) -> io::Result<()> {
        let file = self.file.take().expect("commit twice");
        let result = (|| {
            sync_faulty(&file, self.faults.as_ref())?;
            drop(file);
            if let Some(f) = &self.faults {
                if f.fires(DiskFaultSite::TornRename) {
                    return Err(injected_error("torn rename"));
                }
            }
            std::fs::rename(&self.tmp_path, &self.final_path)
        })();
        if result.is_ok() {
            // Publishing the rename itself: sync the directory so the
            // new name survives a crash (best-effort — not all
            // platforms allow opening directories).
            if let Some(dir) = self.final_path.parent() {
                if let Ok(d) = File::open(if dir.as_os_str().is_empty() {
                    Path::new(".")
                } else {
                    dir
                }) {
                    let _ = d.sync_all();
                }
            }
        }
        result
    }
}

impl Drop for DurableFile {
    fn drop(&mut self) {
        if self.file.is_some() {
            // Uncommitted (error or early drop): leave no debris. A
            // crash skips this, which is fine — readers ignore temps.
            self.file = None;
            let _ = std::fs::remove_file(&self.tmp_path);
        }
    }
}

/// Reads a whole file, honoring an injected
/// [`DiskFaultSite::ReadCorrupt`]: under the fault one deterministic
/// byte of the returned buffer is flipped (the caller's CRC framing is
/// expected to catch it).
///
/// # Errors
///
/// Propagates open/read failure.
pub fn read_file_faulty(path: &Path, faults: Option<&Arc<DiskFaults>>) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if let Some(f) = faults {
        if !buf.is_empty() && f.fires(DiskFaultSite::ReadCorrupt) {
            let n = f.injected(DiskFaultSite::ReadCorrupt);
            let pos = SplitMix64::new(f.plan.seed ^ SITE_SALT[DiskFaultSite::ReadCorrupt as usize])
                .split(n)
                .next_u64() as usize
                % buf.len();
            buf[pos] ^= 0x40;
        }
    }
    Ok(buf)
}

/// Append-only journal file with periodic durability.
///
/// Appends go straight to the file (no hidden buffering beyond the
/// OS); [`JournalFile::sync`] makes everything appended so far durable.
/// Record framing (CRC per record) is the caller's job — this type owns
/// the fault-injected transport only.
pub struct JournalFile {
    file: File,
    faults: Option<Arc<DiskFaults>>,
}

impl JournalFile {
    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates open failure.
    pub fn append_to(path: &Path, faults: Option<Arc<DiskFaults>>) -> io::Result<JournalFile> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalFile { file, faults })
    }

    /// Appends one buffer (callers frame records so a torn tail is
    /// detectable).
    ///
    /// # Errors
    ///
    /// Propagates write failure (including an injected short write —
    /// the journal then ends in a torn record until the next append).
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        write_all_faulty(&mut self.file, buf, self.faults.as_ref())
    }

    /// Makes every append so far durable.
    ///
    /// # Errors
    ///
    /// Propagates `fsync` failure (including injected): the caller must
    /// treat everything since the last successful sync as volatile.
    pub fn sync(&mut self) -> io::Result<()> {
        sync_faulty(&self.file, self.faults.as_ref())
    }

    /// The current journal length in bytes.
    ///
    /// # Errors
    ///
    /// Propagates seek failure.
    pub fn len(&mut self) -> io::Result<u64> {
        self.file.seek(io::SeekFrom::End(0))
    }

    /// `true` when the journal holds no bytes.
    ///
    /// # Errors
    ///
    /// Propagates seek failure.
    pub fn is_empty(&mut self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Truncates `path` to `len` bytes — how a resumer discards a torn
/// journal tail before appending fresh records after it.
///
/// # Errors
///
/// Propagates open/truncate failure.
pub fn truncate_file(path: &Path, len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()
}

/// Removes the stale temp sibling a crashed [`DurableFile`] commit may
/// have left next to `path` (harmless but untidy). Missing temp is not
/// an error.
pub fn remove_stale_temp(path: &Path) {
    let _ = std::fs::remove_file(temp_path(path));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rvz-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector plus edge cases.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn commit_is_atomic_and_cleans_the_temp() {
        let dir = tmp_dir("commit");
        let path = dir.join("data.bin");
        std::fs::write(&path, b"old").unwrap();
        let mut f = DurableFile::create(&path, None).unwrap();
        f.write_all(b"new contents").unwrap();
        // Before commit the destination still holds the old bytes.
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        f.commit().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        assert!(!temp_path(&path).exists(), "temp removed by the rename");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_without_commit_leaves_old_file_and_no_temp() {
        let dir = tmp_dir("drop");
        let path = dir.join("data.bin");
        std::fs::write(&path, b"old").unwrap();
        {
            let mut f = DurableFile::create(&path, None).unwrap();
            f.write_all(b"half-baked").unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        assert!(!temp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_rename_fault_keeps_the_old_file() {
        let dir = tmp_dir("torn");
        let path = dir.join("data.bin");
        std::fs::write(&path, b"old").unwrap();
        let faults = Arc::new(DiskFaults::new(DiskFaultPlan {
            seed: 7,
            torn_rename: 1.0,
            limit: 1,
            ..DiskFaultPlan::default()
        }));
        let mut f = DurableFile::create(&path, Some(Arc::clone(&faults))).unwrap();
        f.write_all(b"new").unwrap();
        let err = f.commit().unwrap_err();
        assert!(err.to_string().contains("torn rename"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        assert_eq!(faults.injected(DiskFaultSite::TornRename), 1);
        // The limit spent, the next commit goes through.
        let mut f = DurableFile::create(&path, Some(faults)).unwrap();
        f.write_all(b"new").unwrap();
        f.commit().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_tears_the_buffer_midway() {
        let dir = tmp_dir("short");
        let path = dir.join("journal.log");
        let faults = Arc::new(DiskFaults::new(DiskFaultPlan {
            seed: 1,
            short_write: 1.0,
            limit: 1,
            ..DiskFaultPlan::default()
        }));
        let mut j = JournalFile::append_to(&path, Some(faults)).unwrap();
        let err = j.write_all(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"01234", "half landed");
        // Limit spent: the next append is whole.
        j.write_all(b"AB").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"01234AB");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_corruption_flips_exactly_one_byte_deterministically() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("data.bin");
        let payload = vec![0u8; 64];
        std::fs::write(&path, &payload).unwrap();
        let plan = DiskFaultPlan {
            seed: 42,
            read_corrupt: 1.0,
            ..DiskFaultPlan::default()
        };
        let a = read_file_faulty(&path, Some(&Arc::new(DiskFaults::new(plan)))).unwrap();
        let b = read_file_faulty(&path, Some(&Arc::new(DiskFaults::new(plan)))).unwrap();
        assert_eq!(a, b, "same seed, same corruption");
        let flipped: Vec<usize> = a
            .iter()
            .zip(&payload)
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(flipped.len(), 1, "exactly one byte flipped");
        assert_ne!(crc32(&a), crc32(&payload), "CRC catches it");
        let clean = read_file_faulty(&path, None).unwrap();
        assert_eq!(clean, payload);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_failure_surfaces_and_counts() {
        let dir = tmp_dir("fsync");
        let path = dir.join("journal.log");
        let faults = Arc::new(DiskFaults::new(DiskFaultPlan {
            seed: 3,
            fsync_fail: 1.0,
            limit: 1,
            ..DiskFaultPlan::default()
        }));
        let mut j = JournalFile::append_to(&path, Some(Arc::clone(&faults))).unwrap();
        j.write_all(b"record").unwrap();
        assert!(j.sync().unwrap_err().to_string().contains("fsync"));
        assert_eq!(faults.injected(DiskFaultSite::FsyncFail), 1);
        j.sync().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_round_trips_and_names_bad_clauses() {
        let plan = DiskFaultPlan::parse(
            "seed=9, short_write=0.25, torn_rename=1, read_corrupt=0.5, fsync_fail=0.75, limit=2",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.short_write, 0.25);
        assert_eq!(plan.torn_rename, 1.0);
        assert_eq!(plan.read_corrupt, 0.5);
        assert_eq!(plan.fsync_fail, 0.75);
        assert_eq!(plan.limit, 2);
        assert!(plan.is_active());
        assert!(!DiskFaultPlan::default().is_active());
        for (spec, needle) in [
            ("bogus=1", "unknown key `bogus`"),
            (
                "short_write=2",
                "rate for site `short_write` must be in [0, 1]",
            ),
            ("short_write", "clause `short_write` is not `key=value`"),
            ("seed=x", "in fault spec clause `seed=x`"),
        ] {
            let err = DiskFaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec {spec:?} -> {err}");
        }
    }

    #[test]
    fn injected_faults_bump_the_global_site_counter() {
        // Process-global counter shared with concurrent tests: assert a
        // lower bound on the delta, not an exact value.
        let before = injected_metric(DiskFaultSite::TornRename).get();
        let faults = DiskFaults::new(DiskFaultPlan {
            seed: 7,
            torn_rename: 1.0,
            limit: 2,
            ..DiskFaultPlan::default()
        });
        assert!(faults.fires(DiskFaultSite::TornRename));
        assert!(faults.fires(DiskFaultSite::TornRename));
        assert!(!faults.fires(DiskFaultSite::TornRename), "limit spent");
        assert!(injected_metric(DiskFaultSite::TornRename).get() >= before + 2);
        assert_eq!(faults.injected(DiskFaultSite::TornRename), 2);
    }

    #[test]
    fn zero_rate_sites_never_fire() {
        let f = DiskFaults::new(DiskFaultPlan {
            seed: 5,
            short_write: 1.0,
            ..DiskFaultPlan::default()
        });
        for _ in 0..16 {
            assert!(!f.fires(DiskFaultSite::FsyncFail));
            assert!(!f.fires(DiskFaultSite::TornRename));
        }
        assert!(f.fires(DiskFaultSite::ShortWrite));
    }
}
