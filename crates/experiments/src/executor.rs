//! The parallel batch executor: fan a scenario batch out across threads.
//!
//! Each scenario is an independent pure computation (build the instance,
//! run the contact engine), so the executor is a plain work-stealing
//! loop over a shared atomic cursor: every worker pops the next
//! unclaimed scenario index, simulates it, and keeps the result in a
//! thread-local buffer tagged with the scenario id. After the scoped
//! threads join, the buffers are merged back into id order.
//!
//! Three properties follow by construction:
//!
//! * **Schedule independence** — a record depends only on its scenario,
//!   never on which worker ran it or in what order, so the merged output
//!   is *identical* for every thread count (this is tested, and it is
//!   what makes sweep artifacts diffable across machines);
//! * **Compiled fast path** — each worker lowers the common algorithm to
//!   a [`CompiledProgram`] **once** and
//!   reuses one [`EngineScratch`] across its whole batch; per scenario
//!   the partner's frame-warped program runs as a **streaming**
//!   [`LazyProgram`](rvz_trajectory::LazyProgram) whose pieces
//!   materialize only as far as the query advances, and the query runs
//!   on `rvz_sim`'s program engine. Whether the
//!   compiled path applies is itself deterministic (it depends only on
//!   the options and the scenario), so schedule independence survives.
//!   When the reference lowering cannot cover the horizon within the
//!   piece budget (deep dyadic rounds hold Θ(4ᵏ) segments), the worker
//!   falls back to the monotone-cursor path wholesale — the escape hatch
//!   and reference implementation;
//! * **Orbit dedup** (opt-in, [`run_sweep_deduped`]) — scenarios are
//!   collapsed through the exact role-swap canonicalization before
//!   running, each orbit simulates once, and twins receive the
//!   representative's record mapped back through the orbit's
//!   [`OutcomeTransform`](crate::OutcomeTransform).

use crate::canonical::DEFAULT_GRID;
use crate::scenario::{Algorithm, Scenario};
use rvz_core::WaitAndSearch;
use rvz_model::{feasibility, Feasibility};
use rvz_search::UniversalSearch;
use rvz_sim::batch::{simulate_rendezvous_by_ref, try_simulate_rendezvous_lazy};
use rvz_sim::{ContactOptions, EngineScratch, SimOutcome};
use rvz_trajectory::{Compile, CompileOptions, CompiledProgram};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tuning for [`run_sweep`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Engine options applied to every scenario.
    ///
    /// The default horizon is `PhaseSchedule::round_end(9)` — enough for
    /// every feasible scenario of moderate difficulty to meet — and the
    /// default step budget is 300 000, which bounds the time spent
    /// *disproving* contact for infeasible (twin) scenarios.
    pub contact: ContactOptions,
    /// Piece budget for the compiled fast path (`0` disables it).
    ///
    /// Each worker lowers the common algorithm once under this budget;
    /// if the lowering covers the horizon, scenarios run on the
    /// monomorphic program engine (partner lowered per scenario, scratch
    /// reused across the batch) and fall back to the cursor path only
    /// when a query outruns its partner's covered span. If even the
    /// reference cannot cover the horizon — deep schedules hold Θ(4ᵏ)
    /// segments per round — the whole batch stays on the cursor path.
    pub compile_pieces: usize,
    /// Emit a stderr progress line about once a second while the sweep
    /// runs (`rvz sweep --heartbeat`). Observation-only: the line goes
    /// to stderr, never into the artifact, and the field is excluded
    /// from the checkpoint fingerprint.
    pub heartbeat: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            contact: ContactOptions {
                tolerance: 1e-9,
                horizon: rvz_core::completion_time(9),
                max_steps: 300_000,
                ..ContactOptions::default()
            },
            compile_pieces: 32_768,
            heartbeat: false,
        }
    }
}

impl SweepOptions {
    /// The effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// One sweep result: the scenario, its Theorem 4 verdict, and the
/// simulated outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRecord {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// The Theorem 4 verdict for the scenario's attributes.
    pub feasibility: Feasibility,
    /// What the simulator observed.
    pub outcome: SimOutcome,
}

impl SweepRecord {
    /// `true` when prediction and observation agree: feasible scenarios
    /// make contact, infeasible ones do not.
    ///
    /// An exhausted step or wall-clock budget is counted as agreement
    /// for infeasible scenarios (the engine cannot *prove* non-contact
    /// in finite time) but as disagreement for feasible ones.
    pub fn consistent(&self) -> bool {
        match self.feasibility {
            Feasibility::Feasible(_) => self.outcome.is_contact(),
            Feasibility::Infeasible(_) => !self.outcome.is_contact(),
        }
    }

    /// The strict form of [`SweepRecord::consistent`] for adversarially
    /// placed infeasible scenarios: twins placed along the invariant
    /// direction must keep their distance at `≥ d` for the *whole* run,
    /// not merely avoid contact.
    ///
    /// Use this when the infeasible scenarios' bearings were chosen from
    /// [`rvz_model::InfeasibleReason::invariant_direction`] (as `rvz map`
    /// and the feasibility-map example do); under an arbitrary placement
    /// the distance of an infeasible pair may legitimately shrink.
    pub fn strictly_consistent(&self) -> bool {
        match self.feasibility {
            Feasibility::Feasible(_) => self.outcome.is_contact(),
            Feasibility::Infeasible(_) => {
                let d = self.scenario.distance;
                match self.outcome {
                    SimOutcome::Contact { .. } => false,
                    SimOutcome::Horizon { min_distance, .. }
                    | SimOutcome::StepBudget { min_distance, .. }
                    | SimOutcome::Deadline { min_distance, .. } => {
                        min_distance >= d - 1e-9 * d.max(1.0)
                    }
                }
            }
        }
    }
}

/// Per-worker state: the lazily compiled reference programs (one per
/// algorithm) and the reusable engine scratch.
struct WorkerState {
    /// `None` = not attempted yet; `Some(None)` = lowering cannot cover
    /// the horizon under the budget (cursor path for the whole batch);
    /// `Some(Some(p))` = the shared reference program.
    reference: [Option<Option<CompiledProgram>>; 2],
    compile: Option<CompileOptions>,
    scratch: EngineScratch,
}

impl WorkerState {
    fn new(opts: &SweepOptions) -> Self {
        WorkerState {
            reference: [None, None],
            compile: (opts.compile_pieces > 0).then(|| {
                CompileOptions::to_horizon(opts.contact.horizon).max_pieces(opts.compile_pieces)
            }),
            scratch: EngineScratch::new(),
        }
    }

    /// The compiled fast-path attempt; `None` hands the scenario to the
    /// cursor path. Deterministic per scenario: compile success and
    /// coverage depend only on the options.
    fn try_compiled(
        &mut self,
        scenario: &Scenario,
        instance: &rvz_model::RendezvousInstance,
        contact: &ContactOptions,
    ) -> Option<SimOutcome> {
        let copts = self.compile?;
        let slot = match scenario.algorithm {
            Algorithm::WaitAndSearch => 0,
            Algorithm::UniversalSearch => 1,
        };
        if self.reference[slot].is_none() {
            let compiled = match scenario.algorithm {
                Algorithm::WaitAndSearch => WaitAndSearch.compile(&copts),
                Algorithm::UniversalSearch => UniversalSearch.compile(&copts),
            };
            // Only keep lowerings that cover the horizon: a truncated
            // reference would pay a per-scenario partner lowering only
            // to refuse every disproof-shaped query.
            self.reference[slot] = Some(compiled.ok().filter(|p| p.covers(contact.horizon)));
        }
        let reference = self.reference[slot]
            .as_ref()
            .expect("filled above")
            .as_ref()?;
        // The partner runs as a *streaming* program: pieces materialize
        // only as far as the query advances, so a scenario that resolves
        // in the first rounds no longer pays the full-horizon partner
        // lowering that used to dominate per-scenario cost. The
        // reference stays eager — it is lowered once and amortized over
        // the whole batch, and its baked envelope tree prunes best.
        match scenario.algorithm {
            Algorithm::WaitAndSearch => try_simulate_rendezvous_lazy(
                reference,
                &WaitAndSearch,
                instance,
                contact,
                &copts,
                &mut self.scratch,
            ),
            Algorithm::UniversalSearch => try_simulate_rendezvous_lazy(
                reference,
                &UniversalSearch,
                instance,
                contact,
                &copts,
                &mut self.scratch,
            ),
        }
    }
}

/// Runs one scenario: the compiled fast path when it applies, the
/// monotone-cursor path otherwise.
///
/// Each scenario is one `"scenario"` span in the flight recorder and
/// one sample in the `rvz_sweep_scenario_us` histogram — the per-worker
/// cost profile `/metrics` and the checkpoint trace dump read.
fn run_one(scenario: &Scenario, opts: &ContactOptions, state: &mut WorkerState) -> SweepRecord {
    rvz_obs::span!("scenario");
    let started = std::time::Instant::now();
    let instance = scenario
        .instance()
        .expect("generators only produce valid scenarios");
    let outcome = state
        .try_compiled(scenario, &instance, opts)
        .unwrap_or_else(|| match scenario.algorithm {
            Algorithm::WaitAndSearch => simulate_rendezvous_by_ref(&WaitAndSearch, &instance, opts),
            Algorithm::UniversalSearch => {
                simulate_rendezvous_by_ref(&UniversalSearch, &instance, opts)
            }
        });
    rvz_obs::histogram!("rvz_sweep_scenario_us").observe(started.elapsed().as_micros() as u64);
    SweepRecord {
        scenario: *scenario,
        feasibility: feasibility(instance.attributes()),
        outcome,
    }
}

/// Stderr progress heartbeat: one line roughly per second, plus a final
/// line when the batch completes. Never touches stdout or the records.
struct Heartbeat {
    enabled: bool,
    total: usize,
    done: usize,
    started: std::time::Instant,
    last: std::time::Instant,
}

impl Heartbeat {
    fn new(total: usize, enabled: bool) -> Heartbeat {
        let now = std::time::Instant::now();
        Heartbeat {
            enabled,
            total,
            done: 0,
            started: now,
            last: now,
        }
    }

    fn tick(&mut self) {
        self.done += 1;
        if !self.enabled {
            return;
        }
        let finished = self.done == self.total;
        if !finished && self.last.elapsed() < std::time::Duration::from_secs(1) {
            return;
        }
        self.last = std::time::Instant::now();
        let secs = self.started.elapsed().as_secs_f64();
        eprintln!(
            "rvz-sweep: {}/{} scenarios ({:.1}/s, {:.1}s elapsed)",
            self.done,
            self.total,
            self.done as f64 / secs.max(1e-9),
            secs,
        );
    }
}

/// Runs every scenario and returns the records in scenario order.
///
/// Work is distributed dynamically (scenarios vary in cost by orders of
/// magnitude — a feasible near pair meets in a handful of advancement
/// steps, an infeasible twin burns its whole step budget), but the output
/// is independent of the schedule: records are merged back by scenario
/// index.
///
/// # Example
///
/// ```
/// use rvz_experiments::{run_sweep, ScenarioGrid, SweepOptions};
///
/// let scenarios = ScenarioGrid::new().speeds(&[0.5, 1.0]).build();
/// let records = run_sweep(&scenarios, &SweepOptions::default());
/// assert_eq!(records.len(), 2);
/// assert!(records.iter().all(|r| r.consistent()));
/// ```
///
/// # Panics
///
/// Panics when a worker thread panics (a scenario produced a non-finite
/// position, which the trajectory invariants exclude).
pub fn run_sweep(scenarios: &[Scenario], opts: &SweepOptions) -> Vec<SweepRecord> {
    run_sweep_with(scenarios, opts, |_, _| {})
}

/// [`run_sweep`] with a completion callback: `on_record(i, record)` runs
/// on the calling thread once for every scenario, as soon as its record
/// exists.
///
/// The callback sees records in **completion order**, which depends on
/// the schedule; only the returned vector is merged back into scenario
/// order. This is the seam the sweep checkpoint journal hangs off —
/// records are journaled the moment they complete, independent of where
/// the batch is in scenario order, and the resume path re-sorts by id.
///
/// # Panics
///
/// As for [`run_sweep`].
pub fn run_sweep_with(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    mut on_record: impl FnMut(usize, &SweepRecord),
) -> Vec<SweepRecord> {
    let threads = opts.effective_threads().min(scenarios.len()).max(1);
    let mut heartbeat = Heartbeat::new(scenarios.len(), opts.heartbeat);
    if threads == 1 {
        let mut state = WorkerState::new(opts);
        return scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let record = run_one(s, &opts.contact, &mut state);
                heartbeat.tick();
                on_record(i, &record);
                record
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut out: Vec<Option<SweepRecord>> = vec![None; scenarios.len()];
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, SweepRecord)>();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut state = WorkerState::new(opts);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(i) else {
                            return;
                        };
                        let record = run_one(scenario, &opts.contact, &mut state);
                        if tx.send((i, record)).is_err() {
                            return;
                        }
                    }
                })
            })
            .collect();
        drop(tx);
        // The receive loop ends when every worker has dropped its
        // sender; a panicked worker surfaces at the joins below.
        for (i, record) in rx {
            heartbeat.tick();
            on_record(i, &record);
            out[i] = Some(record);
        }
        for h in handles {
            h.join().expect("sweep worker panicked");
        }
    });

    out.into_iter()
        .map(|r| r.expect("every scenario index was claimed exactly once"))
        .collect()
}

/// How much an orbit-deduplicated sweep collapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupStats {
    /// Scenarios in the input batch.
    pub scenarios: usize,
    /// Distinct orbit representatives actually simulated.
    pub representatives: usize,
}

impl DedupStats {
    /// `scenarios / representatives` — `1.0` means nothing collapsed.
    pub fn ratio(&self) -> f64 {
        if self.representatives == 0 {
            1.0
        } else {
            self.scenarios as f64 / self.representatives as f64
        }
    }
}

/// [`run_sweep`] with exact-symmetry orbit deduplication: scenarios are
/// collapsed through [`crate::canonicalize`] (the role-swap gauge plus
/// power-of-two-grid quantization — the same reduction that keys the
/// `rvz serve` cache), only the orbit representatives are simulated, and
/// each twin's record is the representative's outcome mapped back
/// through the orbit's exact [`OutcomeTransform`](crate::OutcomeTransform)
/// (time × τ, distance × v·τ).
///
/// Note this is the **exact** outcome-level orbit, not the coarser
/// verdict-level [`crate::orbit_key`]: the latter quotients away the
/// placement, under which only the feasibility verdict — not the contact
/// time — is invariant, so reusing records across *that* orbit would be
/// unsound.
///
/// **Engine options apply in the canonical frame** (the same semantics
/// as the `rvz serve` cache): the representative always carries the
/// *smaller* clock of its orbit (`τ_rep = min(τ, 1/τ) ≤ 1`), so a
/// swapped twin's mapped window spans `τ·horizon ≥ horizon` — windows
/// only ever *extend*, never shrink. Consequently a deduplicated
/// record can upgrade a near-miss `Horizon` into a `Contact` whose
/// time lies past the nominal horizon (the contact is real; the plain
/// run simply stopped looking sooner), and can differ from the plain
/// [`run_sweep`] record by grid round-off (`2⁻³⁰` by default).
/// Feasibility verdicts and Theorem 4 consistency are unaffected:
/// infeasible orbits never contact at any horizon, and extra contacts
/// on feasible orbits only *increase* agreement.
///
/// # Panics
///
/// As for [`run_sweep`].
pub fn run_sweep_deduped(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    grid: f64,
) -> (Vec<SweepRecord>, DedupStats) {
    let canonicals: Vec<crate::Canonical> =
        scenarios.iter().map(|s| s.canonicalize(grid)).collect();
    let mut representatives: Vec<Scenario> = Vec::new();
    let mut index: std::collections::HashMap<crate::CacheKey, usize> =
        std::collections::HashMap::new();
    let mut slot: Vec<usize> = Vec::with_capacity(scenarios.len());
    for c in &canonicals {
        let j = *index.entry(c.key).or_insert_with(|| {
            let mut rep = c.scenario;
            rep.id = representatives.len() as u64;
            representatives.push(rep);
            representatives.len() - 1
        });
        slot.push(j);
    }
    let computed = run_sweep(&representatives, opts);
    let records = scenarios
        .iter()
        .zip(&canonicals)
        .zip(&slot)
        .map(|((s, c), &j)| SweepRecord {
            scenario: *s,
            feasibility: feasibility(&s.attributes()),
            outcome: c.transform.apply(computed[j].outcome),
        })
        .collect();
    (
        records,
        DedupStats {
            scenarios: scenarios.len(),
            representatives: representatives.len(),
        },
    )
}

/// [`run_sweep_deduped`] with the standard cache grid ([`DEFAULT_GRID`]).
pub fn run_sweep_deduped_default(
    scenarios: &[Scenario],
    opts: &SweepOptions,
) -> (Vec<SweepRecord>, DedupStats) {
    run_sweep_deduped(scenarios, opts, DEFAULT_GRID)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGrid;
    use rvz_model::Chirality;

    fn small_grid() -> Vec<Scenario> {
        ScenarioGrid::new()
            .speeds(&[0.5, 1.0])
            .clocks(&[0.6, 1.0])
            .orientations(&[0.0, 1.3])
            .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build()
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let scenarios = small_grid();
        let seq = run_sweep(
            &scenarios,
            &SweepOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let par = run_sweep(
            &scenarios,
            &SweepOptions {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn compiled_and_cursor_paths_classify_identically() {
        // A horizon the reference lowering covers within budget: the
        // compiled path engages; with compile_pieces = 0 it cannot. Both
        // runs must classify every scenario the same way.
        let scenarios = ScenarioGrid::new()
            .algorithms(&[crate::Algorithm::UniversalSearch])
            .speeds(&[0.5, 1.0])
            .clocks(&[1.0])
            .orientations(&[0.0, 1.3])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build();
        let base = SweepOptions {
            threads: 1,
            contact: ContactOptions {
                horizon: rvz_search::times::rounds_total(4),
                max_steps: 300_000,
                ..ContactOptions::default()
            },
            ..SweepOptions::default()
        };
        let compiled = run_sweep(&scenarios, &base);
        let cursor = run_sweep(
            &scenarios,
            &SweepOptions {
                compile_pieces: 0,
                ..base
            },
        );
        for (a, b) in compiled.iter().zip(&cursor) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(
                a.outcome.classification(),
                b.outcome.classification(),
                "{:?}: {} vs {}",
                a.scenario,
                a.outcome,
                b.outcome
            );
            if let (Some(ta), Some(tb)) = (a.outcome.contact_time(), b.outcome.contact_time()) {
                assert!((ta - tb).abs() <= 1e-6 * (1.0 + tb.abs()), "{ta} vs {tb}");
            }
            assert_eq!(a.consistent(), b.consistent());
        }
    }

    #[test]
    fn callback_sees_every_record_exactly_once_any_thread_count() {
        let scenarios = small_grid();
        let reference = run_sweep(
            &scenarios,
            &SweepOptions {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [1, 4] {
            let mut seen = vec![0usize; scenarios.len()];
            let records = run_sweep_with(
                &scenarios,
                &SweepOptions {
                    threads,
                    ..Default::default()
                },
                |i, r| {
                    seen[i] += 1;
                    assert_eq!(r.scenario.id, i as u64, "callback index matches record");
                },
            );
            assert!(seen.iter().all(|&c| c == 1), "threads={threads}: {seen:?}");
            assert_eq!(records, reference, "threads={threads}");
        }
    }

    #[test]
    fn records_come_back_in_scenario_order() {
        let scenarios = small_grid();
        let records = run_sweep(&scenarios, &SweepOptions::default());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.scenario.id, i as u64);
        }
    }

    #[test]
    fn predictions_match_observations_on_the_theorem4_grid() {
        let records = run_sweep(&small_grid(), &SweepOptions::default());
        for r in &records {
            assert!(
                r.consistent(),
                "mismatch: {:?} gave {}",
                r.scenario,
                r.outcome
            );
        }
    }

    #[test]
    fn strict_consistency_holds_under_adversarial_placement() {
        // Mirror twins placed along the invariant direction (φ/2 for
        // φ = 0 twins is bearing 0 — UNIT_X, which `invariant_direction`
        // returns for identical twins).
        let scenarios = ScenarioGrid::new()
            .speeds(&[1.0])
            .clocks(&[1.0])
            .orientations(&[0.0])
            .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
            .bearings(&[0.0])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build();
        for rec in run_sweep(&scenarios, &SweepOptions::default()) {
            assert!(
                rec.strictly_consistent(),
                "adversarial twin moved closer: {:?} -> {}",
                rec.scenario,
                rec.outcome
            );
        }
        // A feasible contact is strictly consistent too.
        let feasible = ScenarioGrid::new()
            .speeds(&[0.5])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build();
        for rec in run_sweep(&feasible, &SweepOptions::default()) {
            assert!(rec.strictly_consistent() && rec.consistent());
        }
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let scenarios = ScenarioGrid::new().speeds(&[0.5]).build();
        let records = run_sweep(
            &scenarios,
            &SweepOptions {
                threads: 16,
                ..Default::default()
            },
        );
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn dedup_collapses_role_swap_twins_and_maps_outcomes_back() {
        // A scenario plus its exact role-swap twin: one representative.
        let base = ScenarioGrid::new()
            .speeds(&[0.5])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build()[0];
        let (twin, _) = base.role_swap();
        let batch = vec![
            base,
            Scenario { id: 1, ..twin },
            Scenario {
                id: 2,
                speed: 0.75,
                ..base
            },
        ];
        let opts = SweepOptions {
            threads: 1,
            ..SweepOptions::default()
        };
        let (records, stats) = run_sweep_deduped_default(&batch, &opts);
        assert_eq!(stats.scenarios, 3);
        assert_eq!(stats.representatives, 2, "twins must share one orbit");
        assert!(stats.ratio() > 1.4);
        assert_eq!(records.len(), 3);
        for (r, s) in records.iter().zip(&batch) {
            assert_eq!(r.scenario, *s, "records keep the original scenarios");
            assert!(r.consistent(), "{:?} -> {}", r.scenario, r.outcome);
        }
        // The twin's contact time is the representative's mapped through
        // the exact transform: time × τ (τ = 1 here ⇒ distances × v·τ).
        let plain = run_sweep(&batch, &opts);
        for (d, p) in records.iter().zip(&plain) {
            assert_eq!(
                d.outcome.classification(),
                p.outcome.classification(),
                "{:?}",
                d.scenario
            );
            if let (Some(td), Some(tp)) = (d.outcome.contact_time(), p.outcome.contact_time()) {
                assert!(
                    (td - tp).abs() <= 1e-6 * (1.0 + tp.abs()),
                    "dedup moved a contact: {td} vs {tp}"
                );
            }
        }
    }

    #[test]
    fn dedup_windows_only_extend_never_lose_contacts() {
        // τ > 1 scenarios canonicalize to their swapped representative
        // (τ_rep = 1/τ < 1); the mapped window spans τ·horizon, so the
        // deduplicated run may *add* a contact past the nominal horizon
        // but must never lose one the plain run found — and the verdict
        // agreement must survive either way.
        let scenarios: Vec<Scenario> = [(0.7, 2.0), (1.0, 1.6), (0.9, 3.0)]
            .iter()
            .enumerate()
            .map(|(i, &(speed, clock))| Scenario {
                id: i as u64,
                speed,
                time_unit: clock,
                orientation: 0.8,
                distance: 1.5,
                visibility: 0.2,
                ..ScenarioGrid::new().build()[0]
            })
            .collect();
        let opts = SweepOptions {
            threads: 1,
            contact: rvz_sim::ContactOptions {
                horizon: rvz_search::times::rounds_total(3),
                max_steps: 200_000,
                ..rvz_sim::ContactOptions::default()
            },
            ..SweepOptions::default()
        };
        let plain = run_sweep(&scenarios, &opts);
        let (deduped, _) = run_sweep_deduped_default(&scenarios, &opts);
        for (p, d) in plain.iter().zip(&deduped) {
            assert!(
                d.outcome.is_contact() || !p.outcome.is_contact(),
                "dedup lost a contact: plain {} vs dedup {} ({:?})",
                p.outcome,
                d.outcome,
                p.scenario
            );
            assert!(d.consistent(), "{:?} -> {}", d.scenario, d.outcome);
            if let (Some(tp), Some(td)) = (p.outcome.contact_time(), d.outcome.contact_time()) {
                assert!((tp - td).abs() <= 1e-6 * (1.0 + tp), "{tp} vs {td}");
            }
        }
    }

    #[test]
    fn dedup_of_distinct_orbits_is_identity() {
        let scenarios = ScenarioGrid::new()
            .speeds(&[0.5, 0.75])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build();
        let opts = SweepOptions {
            threads: 1,
            ..SweepOptions::default()
        };
        let (records, stats) = run_sweep_deduped_default(&scenarios, &opts);
        assert_eq!(stats.representatives, 2);
        assert!((stats.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(records.len(), 2);
    }
}
