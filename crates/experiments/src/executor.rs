//! The parallel batch executor: fan a scenario batch out across threads.
//!
//! Each scenario is an independent pure computation (build the instance,
//! run the conservative-advancement engine), so the executor is a plain
//! work-stealing loop over a shared atomic cursor: every worker pops the
//! next unclaimed scenario index, simulates it, and keeps the result in a
//! thread-local buffer tagged with the scenario id. After the scoped
//! threads join, the buffers are merged back into id order.
//!
//! Two properties follow by construction:
//!
//! * **Schedule independence** — a record depends only on its scenario,
//!   never on which worker ran it or in what order, so the merged output
//!   is *identical* for every thread count (this is tested, and it is
//!   what makes sweep artifacts diffable across machines);
//! * **Allocation-free hot path** — workers pre-build one algorithm value
//!   and reuse it by reference via [`rvz_sim::batch`]; the engine itself
//!   holds no buffers, so the per-instance cost is pure arithmetic. Each
//!   scenario builds its two monotone cursors exactly once and then runs
//!   on the engine's analytic fast path (closed-form contact on straight
//!   legs and waits, amortized-O(1) position queries elsewhere) — the
//!   random-access indexing of `Path`/Algorithm 7 is never re-derived
//!   per query.

use crate::scenario::{Algorithm, Scenario};
use rvz_core::WaitAndSearch;
use rvz_model::{feasibility, Feasibility};
use rvz_search::UniversalSearch;
use rvz_sim::batch::simulate_rendezvous_by_ref;
use rvz_sim::{ContactOptions, SimOutcome};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tuning for [`run_sweep`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Engine options applied to every scenario.
    ///
    /// The default horizon is `PhaseSchedule::round_end(9)` — enough for
    /// every feasible scenario of moderate difficulty to meet — and the
    /// default step budget is 300 000, which bounds the time spent
    /// *disproving* contact for infeasible (twin) scenarios.
    pub contact: ContactOptions,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            contact: ContactOptions {
                tolerance: 1e-9,
                horizon: rvz_core::completion_time(9),
                max_steps: 300_000,
                ..ContactOptions::default()
            },
        }
    }
}

impl SweepOptions {
    /// The effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// One sweep result: the scenario, its Theorem 4 verdict, and the
/// simulated outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRecord {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// The Theorem 4 verdict for the scenario's attributes.
    pub feasibility: Feasibility,
    /// What the simulator observed.
    pub outcome: SimOutcome,
}

impl SweepRecord {
    /// `true` when prediction and observation agree: feasible scenarios
    /// make contact, infeasible ones do not.
    ///
    /// An exhausted step budget is counted as agreement for infeasible
    /// scenarios (the engine cannot *prove* non-contact in finite time)
    /// but as disagreement for feasible ones.
    pub fn consistent(&self) -> bool {
        match self.feasibility {
            Feasibility::Feasible(_) => self.outcome.is_contact(),
            Feasibility::Infeasible(_) => !self.outcome.is_contact(),
        }
    }

    /// The strict form of [`SweepRecord::consistent`] for adversarially
    /// placed infeasible scenarios: twins placed along the invariant
    /// direction must keep their distance at `≥ d` for the *whole* run,
    /// not merely avoid contact.
    ///
    /// Use this when the infeasible scenarios' bearings were chosen from
    /// [`rvz_model::InfeasibleReason::invariant_direction`] (as `rvz map`
    /// and the feasibility-map example do); under an arbitrary placement
    /// the distance of an infeasible pair may legitimately shrink.
    pub fn strictly_consistent(&self) -> bool {
        match self.feasibility {
            Feasibility::Feasible(_) => self.outcome.is_contact(),
            Feasibility::Infeasible(_) => {
                let d = self.scenario.distance;
                match self.outcome {
                    SimOutcome::Contact { .. } => false,
                    SimOutcome::Horizon { min_distance, .. }
                    | SimOutcome::StepBudget { min_distance, .. } => {
                        min_distance >= d - 1e-9 * d.max(1.0)
                    }
                }
            }
        }
    }
}

/// Runs one scenario with a caller-provided algorithm value, reused by
/// reference.
fn run_one(scenario: &Scenario, opts: &ContactOptions) -> SweepRecord {
    let instance = scenario
        .instance()
        .expect("generators only produce valid scenarios");
    let outcome = match scenario.algorithm {
        Algorithm::WaitAndSearch => simulate_rendezvous_by_ref(&WaitAndSearch, &instance, opts),
        Algorithm::UniversalSearch => simulate_rendezvous_by_ref(&UniversalSearch, &instance, opts),
    };
    SweepRecord {
        scenario: *scenario,
        feasibility: feasibility(instance.attributes()),
        outcome,
    }
}

/// Runs every scenario and returns the records in scenario order.
///
/// Work is distributed dynamically (scenarios vary in cost by orders of
/// magnitude — a feasible near pair meets in a handful of advancement
/// steps, an infeasible twin burns its whole step budget), but the output
/// is independent of the schedule: records are merged back by scenario
/// index.
///
/// # Example
///
/// ```
/// use rvz_experiments::{run_sweep, ScenarioGrid, SweepOptions};
///
/// let scenarios = ScenarioGrid::new().speeds(&[0.5, 1.0]).build();
/// let records = run_sweep(&scenarios, &SweepOptions::default());
/// assert_eq!(records.len(), 2);
/// assert!(records.iter().all(|r| r.consistent()));
/// ```
///
/// # Panics
///
/// Panics when a worker thread panics (a scenario produced a non-finite
/// position, which the trajectory invariants exclude).
pub fn run_sweep(scenarios: &[Scenario], opts: &SweepOptions) -> Vec<SweepRecord> {
    let threads = opts.effective_threads().min(scenarios.len()).max(1);
    if threads == 1 {
        return scenarios
            .iter()
            .map(|s| run_one(s, &opts.contact))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut buffers: Vec<Vec<(usize, SweepRecord)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let contact = &opts.contact;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(scenarios.len() / threads + 1);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(scenario) = scenarios.get(i) else {
                            return local;
                        };
                        local.push((i, run_one(scenario, contact)));
                    }
                })
            })
            .collect();
        for h in handles {
            buffers.push(h.join().expect("sweep worker panicked"));
        }
    });

    let mut out: Vec<Option<SweepRecord>> = vec![None; scenarios.len()];
    for (i, record) in buffers.into_iter().flatten() {
        out[i] = Some(record);
    }
    out.into_iter()
        .map(|r| r.expect("every scenario index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGrid;
    use rvz_model::Chirality;

    fn small_grid() -> Vec<Scenario> {
        ScenarioGrid::new()
            .speeds(&[0.5, 1.0])
            .clocks(&[0.6, 1.0])
            .orientations(&[0.0, 1.3])
            .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build()
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let scenarios = small_grid();
        let seq = run_sweep(
            &scenarios,
            &SweepOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let par = run_sweep(
            &scenarios,
            &SweepOptions {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn records_come_back_in_scenario_order() {
        let scenarios = small_grid();
        let records = run_sweep(&scenarios, &SweepOptions::default());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.scenario.id, i as u64);
        }
    }

    #[test]
    fn predictions_match_observations_on_the_theorem4_grid() {
        let records = run_sweep(&small_grid(), &SweepOptions::default());
        for r in &records {
            assert!(
                r.consistent(),
                "mismatch: {:?} gave {}",
                r.scenario,
                r.outcome
            );
        }
    }

    #[test]
    fn strict_consistency_holds_under_adversarial_placement() {
        // Mirror twins placed along the invariant direction (φ/2 for
        // φ = 0 twins is bearing 0 — UNIT_X, which `invariant_direction`
        // returns for identical twins).
        let scenarios = ScenarioGrid::new()
            .speeds(&[1.0])
            .clocks(&[1.0])
            .orientations(&[0.0])
            .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
            .bearings(&[0.0])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build();
        for rec in run_sweep(&scenarios, &SweepOptions::default()) {
            assert!(
                rec.strictly_consistent(),
                "adversarial twin moved closer: {:?} -> {}",
                rec.scenario,
                rec.outcome
            );
        }
        // A feasible contact is strictly consistent too.
        let feasible = ScenarioGrid::new()
            .speeds(&[0.5])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build();
        for rec in run_sweep(&feasible, &SweepOptions::default()) {
            assert!(rec.strictly_consistent() && rec.consistent());
        }
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let scenarios = ScenarioGrid::new().speeds(&[0.5]).build();
        let records = run_sweep(
            &scenarios,
            &SweepOptions {
                threads: 16,
                ..Default::default()
            },
        );
        assert_eq!(records.len(), 1);
    }
}
