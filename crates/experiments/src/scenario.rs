//! Deterministic scenario generation: grids and Latin-hypercube samples
//! over the paper's attribute space.
//!
//! A [`Scenario`] is one fully specified rendezvous experiment: the four
//! hidden attributes of robot `R'` (speed `v`, clock `τ`, compass `φ`,
//! chirality `χ`), the initial placement (distance `d` at a bearing), the
//! visibility radius `r`, and which algorithm both robots run. Two
//! generators produce scenario batches:
//!
//! * [`ScenarioGrid`] — the Cartesian product of explicit value lists per
//!   axis, for exhaustive feasibility maps (Theorem 4 is a statement over
//!   exactly such a product);
//! * [`latin_hypercube`] — a space-filling sample of a continuous
//!   [`SampleSpace`], for coverage of the attribute space at a fixed
//!   budget, seeded and reproducible.
//!
//! Scenario ids are assigned densely from 0 in generation order, so a
//! batch is fully identified by `(generator spec, seed)` and results can
//! be merged back in order regardless of execution schedule.

use crate::canonical::{Canonical, OrbitKey, OutcomeTransform};
use crate::rng::SplitMix64;
use rvz_geometry::Vec2;
use rvz_model::{Chirality, InstanceError, RendezvousInstance, RobotAttributes};
use std::fmt;

/// Which common algorithm both robots execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// The universal Algorithm 7 (`WaitAndSearch`): wait/search phases,
    /// correct for every feasible attribute combination.
    #[default]
    WaitAndSearch,
    /// The Section 2 Algorithm 4 (`UniversalSearch`): pure expanding
    /// search, correct when clocks are symmetric (Theorem 2 regime).
    UniversalSearch,
}

impl Algorithm {
    /// All supported algorithms, in presentation order.
    pub const ALL: [Algorithm; 2] = [Algorithm::WaitAndSearch, Algorithm::UniversalSearch];

    /// Parses the CLI/wire spelling: `alg7`/`wait-and-search` or
    /// `alg4`/`search`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "alg7" | "algorithm7" | "wait-and-search" => Ok(Algorithm::WaitAndSearch),
            "alg4" | "algorithm4" | "search" => Ok(Algorithm::UniversalSearch),
            other => Err(format!(
                "unknown algorithm `{other}` (expected alg7|wait-and-search|alg4|search)"
            )),
        }
    }
}

/// Parses the shared CLI/wire spelling of a chirality: `+1`/`1` or `-1`.
///
/// # Errors
///
/// Returns a message naming the offending token otherwise.
pub fn parse_chirality(s: &str) -> Result<Chirality, String> {
    match s {
        "+1" | "1" => Ok(Chirality::Consistent),
        "-1" => Ok(Chirality::Mirrored),
        other => Err(format!("chirality expects +1 or -1, got `{other}`")),
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::WaitAndSearch => write!(f, "alg7"),
            Algorithm::UniversalSearch => write!(f, "alg4"),
        }
    }
}

/// One fully specified rendezvous experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Dense index within the generating batch.
    pub id: u64,
    /// The common algorithm both robots run.
    pub algorithm: Algorithm,
    /// Speed `v` of robot `R'`.
    pub speed: f64,
    /// Clock time-unit `τ` of robot `R'`.
    pub time_unit: f64,
    /// Compass orientation `φ` of robot `R'` (radians).
    pub orientation: f64,
    /// Chirality `χ` of robot `R'`.
    pub chirality: Chirality,
    /// Initial distance `d` between the robots.
    pub distance: f64,
    /// Bearing of `R'` from `R` (radians), i.e. `d⃗ = d·(cos β, sin β)`.
    pub bearing: f64,
    /// Visibility radius `r`.
    pub visibility: f64,
}

impl Scenario {
    /// The attribute tuple of robot `R'`.
    pub fn attributes(&self) -> RobotAttributes {
        RobotAttributes::new(self.speed, self.time_unit, self.orientation, self.chirality)
    }

    /// The simulator instance this scenario denotes.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] when the parameters are degenerate
    /// (the generators never produce such scenarios, but hand-built ones
    /// can).
    pub fn instance(&self) -> Result<RendezvousInstance, InstanceError> {
        RendezvousInstance::new(
            Vec2::from_polar(self.distance, self.bearing),
            self.visibility,
            self.attributes(),
        )
    }

    /// The same physical instance described from `R'`'s frame (the exact
    /// role-swap symmetry), plus the transform mapping outcomes computed
    /// on the swapped description back into this scenario's frame.
    ///
    /// See [`crate::canonical::role_swap`].
    pub fn role_swap(&self) -> (Scenario, OutcomeTransform) {
        crate::canonical::role_swap(self)
    }

    /// Reduces the scenario to its attribute-symmetry orbit
    /// representative for result caching.
    ///
    /// See [`crate::canonical::canonicalize`]; `grid` is the cache
    /// quantization step ([`crate::canonical::DEFAULT_GRID`] by
    /// convention, `0.0` for bit-exact keys).
    pub fn canonicalize(&self, grid: f64) -> Canonical {
        crate::canonical::canonicalize(self, grid)
    }

    /// The verdict-level orbit key (full quotient by the paper's
    /// attribute symmetries; placement-free).
    ///
    /// See [`crate::canonical::orbit_key`].
    pub fn orbit_key(&self, grid: f64) -> OrbitKey {
        crate::canonical::orbit_key(self, grid)
    }
}

fn check_axis(name: &str, values: &[f64], positive: bool) {
    assert!(
        !values.is_empty(),
        "axis `{name}` must keep at least one value"
    );
    for &v in values {
        assert!(v.is_finite(), "axis `{name}` holds a non-finite value {v}");
        if positive {
            assert!(v > 0.0, "axis `{name}` requires positive values, got {v}");
        }
    }
}

/// The Cartesian-product scenario generator.
///
/// Every axis defaults to a single reference value, so an empty builder
/// yields exactly one scenario (the identical-twins instance at distance
/// 1 with `r = 0.1`). Setting an axis replaces its values.
///
/// # Example
///
/// ```
/// use rvz_experiments::ScenarioGrid;
///
/// let grid = ScenarioGrid::new()
///     .speeds(&[0.5, 1.0])
///     .clocks(&[0.6, 1.0])
///     .orientations(&[0.0, 1.3]);
/// assert_eq!(grid.len(), 8);
/// let scenarios = grid.build();
/// assert_eq!(scenarios.len(), 8);
/// assert_eq!(scenarios[3].id, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    algorithms: Vec<Algorithm>,
    speeds: Vec<f64>,
    clocks: Vec<f64>,
    orientations: Vec<f64>,
    chiralities: Vec<Chirality>,
    distances: Vec<f64>,
    bearings: Vec<f64>,
    visibilities: Vec<f64>,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        ScenarioGrid::new()
    }
}

impl ScenarioGrid {
    /// A grid with one reference value per axis.
    pub fn new() -> Self {
        ScenarioGrid {
            algorithms: vec![Algorithm::WaitAndSearch],
            speeds: vec![1.0],
            clocks: vec![1.0],
            orientations: vec![0.0],
            chiralities: vec![Chirality::Consistent],
            distances: vec![1.0],
            bearings: vec![std::f64::consts::FRAC_PI_3],
            visibilities: vec![0.1],
        }
    }

    /// Sets the algorithm axis.
    ///
    /// # Panics
    ///
    /// Panics when `values` is empty (every axis must keep at least one
    /// value; the same applies to all other setters).
    pub fn algorithms(mut self, values: &[Algorithm]) -> Self {
        assert!(
            !values.is_empty(),
            "axis `algorithms` must keep at least one value"
        );
        self.algorithms = values.to_vec();
        self
    }

    /// Sets the speed (`v`) axis; values must be positive and finite.
    pub fn speeds(mut self, values: &[f64]) -> Self {
        check_axis("speeds", values, true);
        self.speeds = values.to_vec();
        self
    }

    /// Sets the clock (`τ`) axis; values must be positive and finite.
    pub fn clocks(mut self, values: &[f64]) -> Self {
        check_axis("clocks", values, true);
        self.clocks = values.to_vec();
        self
    }

    /// Sets the compass (`φ`) axis, in radians.
    pub fn orientations(mut self, values: &[f64]) -> Self {
        check_axis("orientations", values, false);
        self.orientations = values.to_vec();
        self
    }

    /// Sets the chirality (`χ`) axis.
    pub fn chiralities(mut self, values: &[Chirality]) -> Self {
        assert!(
            !values.is_empty(),
            "axis `chiralities` must keep at least one value"
        );
        self.chiralities = values.to_vec();
        self
    }

    /// Sets the initial-distance axis; values must be positive and finite.
    pub fn distances(mut self, values: &[f64]) -> Self {
        check_axis("distances", values, true);
        self.distances = values.to_vec();
        self
    }

    /// Sets the placement-bearing axis, in radians.
    pub fn bearings(mut self, values: &[f64]) -> Self {
        check_axis("bearings", values, false);
        self.bearings = values.to_vec();
        self
    }

    /// Sets the visibility-radius axis; values must be positive and finite.
    pub fn visibilities(mut self, values: &[f64]) -> Self {
        check_axis("visibilities", values, true);
        self.visibilities = values.to_vec();
        self
    }

    /// The number of scenarios the grid denotes (the product of all axis
    /// cardinalities).
    pub fn len(&self) -> usize {
        self.shape().iter().product()
    }

    /// `true` when the grid is empty (never: every axis keeps ≥ 1 value).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-axis cardinalities, in iteration order: algorithm, speed,
    /// clock, orientation, chirality, distance, bearing, visibility.
    pub fn shape(&self) -> [usize; 8] {
        [
            self.algorithms.len(),
            self.speeds.len(),
            self.clocks.len(),
            self.orientations.len(),
            self.chiralities.len(),
            self.distances.len(),
            self.bearings.len(),
            self.visibilities.len(),
        ]
    }

    /// Materializes the grid in row-major axis order (the last axis,
    /// visibility, varies fastest), assigning dense ids from 0.
    pub fn build(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for &algorithm in &self.algorithms {
            for &speed in &self.speeds {
                for &time_unit in &self.clocks {
                    for &orientation in &self.orientations {
                        for &chirality in &self.chiralities {
                            for &distance in &self.distances {
                                for &bearing in &self.bearings {
                                    for &visibility in &self.visibilities {
                                        out.push(Scenario {
                                            id: out.len() as u64,
                                            algorithm,
                                            speed,
                                            time_unit,
                                            orientation,
                                            chirality,
                                            distance,
                                            bearing,
                                            visibility,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Continuous ranges for [`latin_hypercube`] sampling.
///
/// Each field is a closed-open interval `[lo, hi)`; a degenerate range
/// (`lo == hi`) pins the axis to a constant. Chirality and algorithm are
/// discrete and sampled uniformly from the listed choices.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSpace {
    /// Speed range for `v`.
    pub speed: (f64, f64),
    /// Clock range for `τ`.
    pub time_unit: (f64, f64),
    /// Compass range for `φ` (radians).
    pub orientation: (f64, f64),
    /// Initial-distance range for `d`.
    pub distance: (f64, f64),
    /// Placement-bearing range (radians).
    pub bearing: (f64, f64),
    /// Visibility radius `r` (constant across the sample).
    pub visibility: f64,
    /// Discrete chirality choices.
    pub chiralities: Vec<Chirality>,
    /// Discrete algorithm choices.
    pub algorithms: Vec<Algorithm>,
}

impl Default for SampleSpace {
    fn default() -> Self {
        SampleSpace {
            speed: (0.25, 2.0),
            time_unit: (0.25, 2.0),
            orientation: (0.0, std::f64::consts::TAU),
            distance: (0.5, 2.0),
            bearing: (0.0, std::f64::consts::TAU),
            visibility: 0.1,
            chiralities: vec![Chirality::Consistent, Chirality::Mirrored],
            algorithms: vec![Algorithm::WaitAndSearch],
        }
    }
}

impl SampleSpace {
    fn validate(&self) {
        for (name, (lo, hi), positive) in [
            ("speed", self.speed, true),
            ("time_unit", self.time_unit, true),
            ("orientation", self.orientation, false),
            ("distance", self.distance, true),
            ("bearing", self.bearing, false),
        ] {
            assert!(
                lo.is_finite() && hi.is_finite() && lo <= hi,
                "range `{name}` = [{lo}, {hi}) is invalid"
            );
            if positive {
                assert!(lo > 0.0, "range `{name}` must be positive, got lo = {lo}");
            }
        }
        assert!(
            self.visibility > 0.0 && self.visibility.is_finite(),
            "visibility must be positive and finite"
        );
        assert!(
            !self.chiralities.is_empty(),
            "need at least one chirality choice"
        );
        assert!(
            !self.algorithms.is_empty(),
            "need at least one algorithm choice"
        );
    }
}

/// Draws `n` scenarios by Latin-hypercube sampling of `space`, seeded.
///
/// Each continuous axis is cut into `n` equal strata; a seeded
/// permutation assigns exactly one stratum per scenario per axis, and the
/// position within the stratum is a further uniform draw. This guarantees
/// marginal coverage of every axis at any budget — a plain uniform sample
/// of size 64 can easily leave half the speed range unexplored; an LHS
/// sample cannot.
///
/// The draw depends only on `(space, n, seed)`: per-axis generators are
/// derived with [`SplitMix64::split`], so results are reproducible and
/// stable across platforms.
///
/// # Panics
///
/// Panics when `n == 0` or `space` is invalid.
pub fn latin_hypercube(space: &SampleSpace, n: usize, seed: u64) -> Vec<Scenario> {
    space.validate();
    assert!(n > 0, "sample size must be positive");
    let root = SplitMix64::new(seed);

    // One independent stream per axis: stratum permutation + jitter.
    let axis = |stream: u64, (lo, hi): (f64, f64)| -> Vec<f64> {
        let mut rng = root.split(stream);
        let mut strata: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut strata);
        let width = (hi - lo) / n as f64;
        strata
            .into_iter()
            .map(|s| lo + width * (s as f64 + rng.next_f64()))
            .collect()
    };

    let speeds = axis(1, space.speed);
    let clocks = axis(2, space.time_unit);
    let orientations = axis(3, space.orientation);
    let distances = axis(4, space.distance);
    let bearings = axis(5, space.bearing);
    let mut discrete = root.split(6);

    (0..n)
        .map(|i| Scenario {
            id: i as u64,
            algorithm: space.algorithms[discrete.next_below(space.algorithms.len())],
            speed: speeds[i],
            time_unit: clocks[i],
            orientation: orientations[i],
            chirality: space.chiralities[discrete.next_below(space.chiralities.len())],
            distance: distances[i],
            bearing: bearings[i],
            visibility: space.visibility,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_a_single_reference_scenario() {
        let grid = ScenarioGrid::new();
        assert_eq!(grid.len(), 1);
        let s = grid.build()[0];
        assert!(s.attributes().is_reference());
        assert_eq!(s.id, 0);
        assert!(s.instance().is_ok());
    }

    #[test]
    fn grid_len_matches_shape_product() {
        let grid = ScenarioGrid::new()
            .speeds(&[0.5, 0.75, 1.0])
            .clocks(&[0.6, 1.0])
            .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
            .distances(&[0.5, 1.0]);
        assert_eq!(grid.shape(), [1, 3, 2, 1, 2, 2, 1, 1]);
        assert_eq!(grid.len(), 24);
        assert_eq!(grid.build().len(), 24);
    }

    #[test]
    fn grid_ids_are_dense_and_ordered() {
        let scenarios = ScenarioGrid::new()
            .speeds(&[0.5, 1.0])
            .clocks(&[0.6, 1.0])
            .build();
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
        // Last axis varies fastest: first two scenarios differ in clock.
        assert_eq!(scenarios[0].speed, scenarios[1].speed);
        assert_ne!(scenarios[0].time_unit, scenarios[1].time_unit);
    }

    #[test]
    #[should_panic(expected = "axis `speeds` requires positive values")]
    fn grid_rejects_non_positive_speed() {
        let _ = ScenarioGrid::new().speeds(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn grid_rejects_empty_axis() {
        let _ = ScenarioGrid::new().distances(&[]);
    }

    #[test]
    fn lhs_is_deterministic_under_seed() {
        let space = SampleSpace::default();
        let a = latin_hypercube(&space, 64, 99);
        let b = latin_hypercube(&space, 64, 99);
        assert_eq!(a, b);
        let c = latin_hypercube(&space, 64, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn lhs_covers_every_stratum_of_every_axis() {
        let space = SampleSpace::default();
        let n = 32;
        let sample = latin_hypercube(&space, n, 5);
        for (lo, hi, pick) in [
            (
                space.speed.0,
                space.speed.1,
                &(|s: &Scenario| s.speed) as &dyn Fn(&Scenario) -> f64,
            ),
            (space.time_unit.0, space.time_unit.1, &|s: &Scenario| {
                s.time_unit
            }),
            (space.distance.0, space.distance.1, &|s: &Scenario| {
                s.distance
            }),
        ] {
            let width = (hi - lo) / n as f64;
            let mut seen = vec![false; n];
            for s in &sample {
                let stratum = (((pick(s) - lo) / width) as usize).min(n - 1);
                seen[stratum] = true;
            }
            assert!(seen.iter().all(|&x| x), "a stratum was left empty");
        }
    }

    #[test]
    fn lhs_scenarios_are_valid_instances() {
        for s in latin_hypercube(&SampleSpace::default(), 100, 3) {
            assert!(s.instance().is_ok(), "invalid scenario {s:?}");
        }
    }

    #[test]
    fn algorithm_parse_round_trips() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(&alg.to_string()), Ok(alg));
        }
        assert!(Algorithm::parse("dance").is_err());
    }
}
