//! Sweep checkpoint/resume: journal completed records, skip them on
//! restart, and reproduce the uninterrupted output bit-for-bit.
//!
//! The journal is an append-only text file of CRC-framed JSONL rows —
//! each line is `CRC32-hex TAB record-json NEWLINE`, where the JSON is
//! exactly the [`crate::record_to_json`] rendering the sweep artifact
//! itself uses. A crash (or an injected
//! [`DiskFaultSite::ShortWrite`](crate::durable::DiskFaultSite)) can
//! tear at most the final line; [`Checkpoint::open`] salvages the valid
//! prefix, truncates the torn tail, and hands back the finished records
//! so [`run_sweep_checkpointed`] only computes what is missing.
//!
//! A sibling manifest (`<path>.manifest`, atomic-replace via
//! [`DurableFile`]) pins the sweep **fingerprint** — a digest of the
//! scenario batch and the engine options (but *not* the thread count).
//! Resuming against a journal whose manifest names a different sweep is
//! refused outright: silently merging records from a different grid
//! would fabricate an artifact no single run could produce. Within a
//! matching sweep, every salvaged record is additionally cross-checked
//! against the scenario it claims to answer.
//!
//! Because a record depends only on its scenario (schedule
//! independence, see [`crate::executor`]), the merged output of
//! `salvaged + recomputed` is byte-identical to an uninterrupted run at
//! any thread count and any kill point — the property the CI
//! kill-and-restart smoke asserts with `cmp`.

use crate::durable::{
    crc32, fnv1a64, remove_stale_temp, truncate_file, DiskFaults, DurableFile, JournalFile,
    FNV_OFFSET_BASIS,
};
use crate::executor::{run_sweep_with, SweepOptions, SweepRecord};
use crate::json::{self, Json};
use crate::report::{record_from_json, record_to_json};
use crate::scenario::Scenario;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal format version (bumped on any framing change).
pub const CHECKPOINT_VERSION: u32 = 1;

/// Records between forced `fsync`s of the journal (each sync also
/// rewrites the manifest). A crash loses at most this many records.
const SYNC_EVERY: usize = 32;

/// Digest of the sweep identity: the full scenario batch plus the
/// engine options that shape outcomes. Thread count is deliberately
/// excluded — resume is schedule-independent.
pub fn sweep_fingerprint(scenarios: &[Scenario], opts: &SweepOptions) -> u64 {
    fn word(h: u64, x: u64) -> u64 {
        fnv1a64(&x.to_le_bytes(), h)
    }
    let mut h = FNV_OFFSET_BASIS;
    h = word(h, CHECKPOINT_VERSION as u64);
    h = word(h, opts.contact.tolerance.to_bits());
    h = word(h, opts.contact.horizon.to_bits());
    h = word(h, opts.contact.max_steps);
    h = word(h, opts.contact.prune as u64);
    h = word(h, opts.compile_pieces as u64);
    h = word(h, scenarios.len() as u64);
    for s in scenarios {
        h = fnv1a64(s.algorithm.to_string().as_bytes(), h);
        h = fnv1a64(s.chirality.to_string().as_bytes(), h);
        h = word(h, s.id);
        h = word(h, s.speed.to_bits());
        h = word(h, s.time_unit.to_bits());
        h = word(h, s.orientation.to_bits());
        h = word(h, s.distance.to_bits());
        h = word(h, s.bearing.to_bits());
        h = word(h, s.visibility.to_bits());
    }
    h
}

/// What [`Checkpoint::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeInfo {
    /// Finished records salvaged from the journal.
    pub salvaged: usize,
    /// Torn or corrupt trailing lines discarded (the valid prefix ends
    /// where the first bad frame begins).
    pub dropped: usize,
}

/// Aggregate accounting for a checkpointed sweep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointStats {
    /// Records reused from the journal instead of recomputed.
    pub resumed: usize,
    /// Records computed (and journaled) by this run.
    pub computed: usize,
    /// Torn/corrupt journal lines dropped during salvage.
    pub dropped: usize,
    /// Journal/manifest `fsync`s that failed (non-fatal: the data is
    /// re-derivable, so a failed sync only widens the crash window).
    pub sync_failures: u64,
}

fn manifest_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".manifest");
    path.with_file_name(name)
}

/// The sibling flight-recorder dump (`<path>.trace.jsonl`).
fn trace_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".trace.jsonl");
    path.with_file_name(name)
}

/// Dumps the in-memory flight recorder next to the journal, newest span
/// first — a post-mortem sample of what the workers were doing at the
/// last checkpoint. Best-effort and observation-only: the file is
/// rewritten whole at each sync, never read back, and failure to write
/// it does not count against the checkpoint.
fn dump_flight_recorder(path: &Path) {
    let events = rvz_obs::recent(rvz_obs::RING_CAPACITY);
    if events.is_empty() {
        return;
    }
    let mut text = String::new();
    for e in &events {
        text.push_str(&format!(
            "{{\"span\":\"{}\",\"trace\":\"{:016x}\",\"start_us\":{},\"dur_us\":{},\
             \"thread\":{},\"depth\":{}}}\n",
            e.name, e.trace_id, e.start_us, e.dur_us, e.thread, e.depth,
        ));
    }
    let _ = std::fs::write(trace_path(path), text);
}

/// Records salvaged from an existing journal, keyed by scenario index.
pub type SalvagedRecords = Vec<(usize, SweepRecord)>;

/// An open sweep checkpoint: the append journal plus its manifest.
pub struct Checkpoint {
    path: PathBuf,
    journal: JournalFile,
    fingerprint: u64,
    entries: usize,
    since_sync: usize,
    sync_failures: u64,
    faults: Option<Arc<DiskFaults>>,
}

impl Checkpoint {
    /// Opens (or creates) the checkpoint at `path` for the given sweep.
    ///
    /// Returns the checkpoint plus the salvaged records `(index,
    /// record)` keyed by scenario index. An existing non-empty journal
    /// requires `resume = true`; its manifest (when present) must name
    /// this exact sweep.
    ///
    /// # Errors
    ///
    /// * the journal exists but `resume` was not requested;
    /// * the manifest's version or fingerprint names a different sweep;
    /// * I/O failure opening or truncating the journal.
    pub fn open(
        path: &Path,
        scenarios: &[Scenario],
        opts: &SweepOptions,
        resume: bool,
        faults: Option<Arc<DiskFaults>>,
    ) -> Result<(Checkpoint, SalvagedRecords, ResumeInfo), String> {
        let fingerprint = sweep_fingerprint(scenarios, opts);
        let existing = std::fs::metadata(path).map_or(0, |m| m.len());
        let mut salvaged = Vec::new();
        let mut info = ResumeInfo::default();
        if existing > 0 {
            if !resume {
                return Err(format!(
                    "checkpoint `{}` already holds {existing} bytes; pass --resume to \
                     continue it or remove the file to start over",
                    path.display()
                ));
            }
            check_manifest(&manifest_path(path), fingerprint)?;
            let bytes = crate::durable::read_file_faulty(path, faults.as_ref())
                .map_err(|e| format!("cannot read checkpoint `{}`: {e}", path.display()))?;
            let (records, valid_bytes, dropped) = salvage(&bytes, scenarios);
            info.salvaged = records.len();
            info.dropped = dropped;
            salvaged = records;
            if valid_bytes < existing {
                truncate_file(path, valid_bytes).map_err(|e| {
                    format!("cannot drop torn checkpoint tail `{}`: {e}", path.display())
                })?;
            }
        }
        remove_stale_temp(&manifest_path(path));
        let journal = JournalFile::append_to(path, faults.clone())
            .map_err(|e| format!("cannot open checkpoint `{}`: {e}", path.display()))?;
        Ok((
            Checkpoint {
                path: path.to_path_buf(),
                journal,
                fingerprint,
                entries: salvaged.len(),
                since_sync: 0,
                sync_failures: 0,
                faults,
            },
            salvaged,
            info,
        ))
    }

    /// Journals one completed record. Write failures (including an
    /// injected short write, which leaves a torn line for the next open
    /// to salvage around) and sync failures are non-fatal: the record is
    /// re-derivable, so the worst case is recomputing it after a crash.
    pub fn append(&mut self, record: &SweepRecord) {
        let json = record_to_json(record).render();
        let line = format!("{:08x}\t{json}\n", crc32(json.as_bytes()));
        match self.journal.write_all(line.as_bytes()) {
            Ok(()) => {
                self.entries += 1;
                self.since_sync += 1;
                if self.since_sync >= SYNC_EVERY {
                    self.sync_and_publish();
                }
            }
            Err(_) => self.sync_failures += 1,
        }
    }

    /// Forces the journal durable and republishes the manifest; called
    /// automatically every `SYNC_EVERY` appends and at the end of the
    /// run.
    pub fn finish(&mut self) {
        self.sync_and_publish();
    }

    /// `fsync` failures observed so far (injected or real).
    pub fn sync_failures(&self) -> u64 {
        self.sync_failures
    }

    fn sync_and_publish(&mut self) {
        self.since_sync = 0;
        dump_flight_recorder(&self.path);
        if self.journal.sync().is_err() {
            self.sync_failures += 1;
            return;
        }
        let bytes = self.journal.len().unwrap_or(0);
        let manifest = Json::obj(vec![
            ("version", Json::Num(CHECKPOINT_VERSION as f64)),
            (
                "fingerprint",
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("entries", Json::Num(self.entries as f64)),
            ("bytes", Json::Num(bytes as f64)),
        ])
        .render();
        let write = || -> std::io::Result<()> {
            let mut f = DurableFile::create(&manifest_path(&self.path), self.faults.clone())?;
            f.write_all(manifest.as_bytes())?;
            f.write_all(b"\n")?;
            f.commit()
        };
        if write().is_err() {
            self.sync_failures += 1;
        }
    }
}

/// Validates the manifest against this sweep's fingerprint. A missing
/// or unreadable manifest is tolerated (the per-record scenario check
/// still guards the journal); a *well-formed manifest for a different
/// sweep* is a hard error.
fn check_manifest(path: &Path, fingerprint: u64) -> Result<(), String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(());
    };
    let Ok(value) = json::parse(text.trim()) else {
        return Ok(());
    };
    if let Some(v) = value.get("version").and_then(Json::as_u64) {
        if v != CHECKPOINT_VERSION as u64 {
            return Err(format!(
                "checkpoint manifest `{}` has version {v}, this build writes \
                 {CHECKPOINT_VERSION}; remove the checkpoint to start over",
                path.display()
            ));
        }
    }
    if let Some(f) = value.get("fingerprint").and_then(Json::as_str) {
        let want = format!("{fingerprint:016x}");
        if f != want {
            return Err(format!(
                "checkpoint manifest `{}` fingerprints a different sweep ({f} vs {want}); \
                 refusing to resume — scenarios or engine options changed",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Walks the journal's CRC-framed lines, returning the records of the
/// valid prefix, the byte length of that prefix, and how many trailing
/// frames were dropped. Parsing stops at the first bad frame: an
/// append-only journal can only be damaged at its tail (torn final
/// write) or by corruption, and anything after a bad frame has lost its
/// framing guarantee.
fn salvage(bytes: &[u8], scenarios: &[Scenario]) -> (Vec<(usize, SweepRecord)>, u64, usize) {
    let mut records: Vec<(usize, SweepRecord)> = Vec::new();
    let mut filled = vec![false; scenarios.len()];
    let mut valid_bytes = 0u64;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            break; // torn final line (no newline landed)
        };
        let line = &rest[..nl];
        let Some(record) = parse_frame(line, scenarios, &filled) else {
            break;
        };
        filled[record.0] = true;
        records.push(record);
        offset += nl + 1;
        valid_bytes = offset as u64;
    }
    let dropped = bytes[offset..].iter().filter(|&&b| b == b'\n').count()
        + usize::from(!bytes[offset..].is_empty() && bytes.last() != Some(&b'\n'));
    (records, valid_bytes, dropped)
}

/// Decodes one `crc TAB json` frame into `(scenario index, record)`.
/// `None` marks the frame bad: CRC mismatch, malformed JSON, a scenario
/// that is not `scenarios[id]`, or a duplicate index.
fn parse_frame(
    line: &[u8],
    scenarios: &[Scenario],
    filled: &[bool],
) -> Option<(usize, SweepRecord)> {
    let text = std::str::from_utf8(line).ok()?;
    let (crc_hex, json_text) = text.split_once('\t')?;
    let stored = u32::from_str_radix(crc_hex, 16).ok()?;
    if stored != crc32(json_text.as_bytes()) {
        return None;
    }
    let record = record_from_json(&json::parse(json_text).ok()?).ok()?;
    let i = usize::try_from(record.scenario.id).ok()?;
    if i >= scenarios.len() || record.scenario != scenarios[i] || filled[i] {
        return None;
    }
    Some((i, record))
}

/// [`run_sweep_with`][crate::run_sweep] through a checkpoint: salvage
/// finished records from `path`, compute only the missing scenarios
/// (journaling each as it completes), and merge back into scenario
/// order — bit-identical to an uninterrupted [`crate::run_sweep`] of
/// the same batch, at any thread count and kill point.
///
/// Scenario ids must equal their batch index (true of every generator
/// in [`crate::scenario`]).
///
/// # Errors
///
/// As for [`Checkpoint::open`].
///
/// # Panics
///
/// As for [`crate::run_sweep`].
pub fn run_sweep_checkpointed(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    path: &Path,
    resume: bool,
    faults: Option<Arc<DiskFaults>>,
) -> Result<(Vec<SweepRecord>, CheckpointStats), String> {
    let (mut checkpoint, salvaged, info) = Checkpoint::open(path, scenarios, opts, resume, faults)?;
    let mut out: Vec<Option<SweepRecord>> = vec![None; scenarios.len()];
    for &(i, record) in &salvaged {
        out[i] = Some(record);
    }
    let todo: Vec<Scenario> = scenarios
        .iter()
        .enumerate()
        .filter(|(i, _)| out[*i].is_none())
        .map(|(_, s)| *s)
        .collect();
    let computed = todo.len();
    let fresh = run_sweep_with(&todo, opts, |_, record| checkpoint.append(record));
    checkpoint.finish();
    for record in fresh {
        let i = record.scenario.id as usize;
        out[i] = Some(record);
    }
    let records = out
        .into_iter()
        .map(|r| r.expect("salvaged and computed scenarios cover the batch"))
        .collect();
    Ok((
        records,
        CheckpointStats {
            resumed: info.salvaged,
            computed,
            dropped: info.dropped,
            sync_failures: checkpoint.sync_failures(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{DiskFaultPlan, DiskFaultSite};
    use crate::executor::run_sweep;
    use crate::scenario::ScenarioGrid;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rvz-checkpoint-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch() -> Vec<Scenario> {
        ScenarioGrid::new()
            .speeds(&[0.5, 1.0])
            .clocks(&[0.6, 1.0])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build()
    }

    fn quick_opts() -> SweepOptions {
        SweepOptions {
            threads: 2,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn fresh_run_then_resume_skips_all_work_and_matches_plain() {
        let dir = tmp_dir("fresh");
        let path = dir.join("sweep.ckpt");
        let scenarios = batch();
        let opts = quick_opts();
        let plain = run_sweep(&scenarios, &opts);

        let (first, s1) = run_sweep_checkpointed(&scenarios, &opts, &path, false, None).unwrap();
        assert_eq!(first, plain);
        assert_eq!((s1.resumed, s1.computed), (0, scenarios.len()));

        // Resume over a complete journal: zero recomputation.
        let (second, s2) = run_sweep_checkpointed(&scenarios, &opts, &path, true, None).unwrap();
        assert_eq!(second, plain);
        assert_eq!((s2.resumed, s2.computed), (scenarios.len(), 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_sync_dumps_the_flight_recorder() {
        let dir = tmp_dir("flightrec");
        let path = dir.join("sweep.ckpt");
        let scenarios = batch();
        let opts = quick_opts();
        run_sweep_checkpointed(&scenarios, &opts, &path, false, None).unwrap();
        // Each scenario opened a "scenario" span, so the final sync
        // had events to dump (unless another test disabled recording,
        // which nothing in this crate does).
        let text = std::fs::read_to_string(trace_path(&path)).expect("trace dump written");
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(
                line.starts_with("{\"span\":\"") && line.ends_with('}'),
                "malformed trace line: {line}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn existing_journal_without_resume_is_refused() {
        let dir = tmp_dir("refuse");
        let path = dir.join("sweep.ckpt");
        let scenarios = batch();
        let opts = quick_opts();
        run_sweep_checkpointed(&scenarios, &opts, &path, false, None).unwrap();
        let err = run_sweep_checkpointed(&scenarios, &opts, &path, false, None).unwrap_err();
        assert!(err.contains("pass --resume"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_salvaged_and_truncated() {
        let dir = tmp_dir("torn");
        let path = dir.join("sweep.ckpt");
        let scenarios = batch();
        let opts = quick_opts();
        let plain = run_sweep(&scenarios, &opts);
        run_sweep_checkpointed(&scenarios, &opts, &path, false, None).unwrap();

        // Tear the journal mid-final-line, as SIGKILL during a write
        // would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let (records, stats) =
            run_sweep_checkpointed(&scenarios, &opts, &path, true, None).unwrap();
        assert_eq!(records, plain, "salvage + recompute = uninterrupted run");
        assert_eq!(stats.resumed, scenarios.len() - 1);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.dropped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_middle_line_drops_the_suffix_but_output_is_identical() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("sweep.ckpt");
        let scenarios = batch();
        let opts = quick_opts();
        let plain = run_sweep(&scenarios, &opts);
        run_sweep_checkpointed(&scenarios, &opts, &path, false, None).unwrap();

        // Flip one byte inside the second line's JSON: its CRC fails,
        // and everything after loses its framing guarantee.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() + 12;
        bytes[second_line] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (records, stats) =
            run_sweep_checkpointed(&scenarios, &opts, &path, true, None).unwrap();
        assert_eq!(records, plain);
        assert_eq!(stats.resumed, 1, "only the line before the corruption");
        assert_eq!(stats.computed, scenarios.len() - 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_from_a_different_sweep_refuses_resume() {
        let dir = tmp_dir("mismatch");
        let path = dir.join("sweep.ckpt");
        let scenarios = batch();
        let opts = quick_opts();
        run_sweep_checkpointed(&scenarios, &opts, &path, false, None).unwrap();

        // Same journal, different engine options: different sweep.
        let other = SweepOptions {
            contact: rvz_sim::ContactOptions {
                max_steps: 1234,
                ..opts.contact
            },
            ..opts
        };
        let err = run_sweep_checkpointed(&scenarios, &other, &path, true, None).unwrap_err();
        assert!(err.contains("different sweep"), "{err}");
        assert_ne!(
            sweep_fingerprint(&scenarios, &opts),
            sweep_fingerprint(&scenarios, &other)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_ignores_thread_count_but_not_scenarios() {
        let scenarios = batch();
        let opts = quick_opts();
        let serial = SweepOptions { threads: 1, ..opts };
        assert_eq!(
            sweep_fingerprint(&scenarios, &opts),
            sweep_fingerprint(&scenarios, &serial),
            "thread count must not pin the fingerprint"
        );
        let mut other = scenarios.clone();
        other[0].speed += 0.25;
        assert_ne!(
            sweep_fingerprint(&scenarios, &opts),
            sweep_fingerprint(&other, &opts)
        );
    }

    #[test]
    fn read_corruption_fault_degrades_to_recompute_not_failure() {
        let dir = tmp_dir("readfault");
        let path = dir.join("sweep.ckpt");
        let scenarios = batch();
        let opts = quick_opts();
        let plain = run_sweep(&scenarios, &opts);
        run_sweep_checkpointed(&scenarios, &opts, &path, false, None).unwrap();

        // A corrupted read of the journal on resume: the CRC framing
        // catches the flipped byte, the suffix is recomputed, and the
        // final output is still exact.
        let faults = Arc::new(DiskFaults::new(DiskFaultPlan {
            seed: 11,
            read_corrupt: 1.0,
            limit: 1,
            ..DiskFaultPlan::default()
        }));
        let (records, stats) =
            run_sweep_checkpointed(&scenarios, &opts, &path, true, Some(Arc::clone(&faults)))
                .unwrap();
        assert_eq!(records, plain);
        assert_eq!(faults.injected(DiskFaultSite::ReadCorrupt), 1);
        assert!(
            stats.resumed < scenarios.len(),
            "the flipped byte must have invalidated at least the frame it hit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_faults_are_counted_but_never_fatal() {
        let dir = tmp_dir("fsync");
        let path = dir.join("sweep.ckpt");
        let scenarios = batch();
        let opts = quick_opts();
        let faults = Arc::new(DiskFaults::new(DiskFaultPlan {
            seed: 3,
            fsync_fail: 1.0,
            limit: 4,
            ..DiskFaultPlan::default()
        }));
        let (records, stats) =
            run_sweep_checkpointed(&scenarios, &opts, &path, false, Some(faults)).unwrap();
        assert_eq!(records, run_sweep(&scenarios, &opts));
        assert!(stats.sync_failures > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
