//! A tiny deterministic pseudo-random generator for scenario sampling.
//!
//! The sweep subsystem must be reproducible from a single `u64` seed on
//! every platform and thread count, and the workspace is dependency-free,
//! so we carry our own generator instead of pulling in `rand`. SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014) is the standard choice for this:
//! one `u64` of state, equidistributed output, and trivially splittable —
//! [`SplitMix64::split`] derives an independent stream per sampling axis
//! so that adding an axis never perturbs the draws of the others.

/// SplitMix64: a 64-bit generator with a single word of state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are not finite or `lo > hi`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform index in `[0, n)`.
    ///
    /// Uses the widening-multiply trick (Lemire 2019) rather than modulo;
    /// the residual bias is below 2⁻⁶⁴ per draw, far under anything a
    /// scenario sweep can resolve.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below needs a non-empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// An unbiased-enough Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent generator, keyed by `stream`.
    ///
    /// Two splits of the same parent with different keys produce
    /// unrelated sequences, which keeps per-axis sampling stable when
    /// axes are added or removed.
    pub fn split(&self, stream: u64) -> SplitMix64 {
        let mut mixer = SplitMix64::new(self.state ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        SplitMix64::new(mixer.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output_for_seed_zero() {
        // Reference value from the published SplitMix64 test vectors.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_cover_interval() {
        let mut g = SplitMix64::new(9);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = g.next_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 2.05 && max > 2.95, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn next_below_is_exhaustive_and_bounded() {
        let mut g = SplitMix64::new(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[g.next_below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut g = SplitMix64::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle left order intact");
    }

    #[test]
    fn split_streams_differ() {
        let g = SplitMix64::new(100);
        let mut s1 = g.split(1);
        let mut s2 = g.split(2);
        let a: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(a, b);
        // And splitting is itself deterministic.
        let mut s1_again = g.split(1);
        assert_eq!(s1_again.next_u64(), a[0]);
    }
}
