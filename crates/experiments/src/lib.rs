//! # rvz-experiments
//!
//! Scenario sweeps at scale: deterministic generation of rendezvous
//! scenario batches and a parallel executor that maps them over the
//! simulator.
//!
//! The paper's headline results are statements over whole *families* of
//! attribute configurations — Theorem 4 characterizes feasibility over
//! the full `(v, τ, φ, χ)` space, Theorems 2–3 bound rendezvous time as
//! those parameters vary. This crate turns the single-instance simulator
//! of [`rvz_sim`] into a mapper over such families:
//!
//! * [`ScenarioGrid`] / [`latin_hypercube`] — deterministic scenario
//!   generation (Cartesian grids and seeded Latin-hypercube samples over
//!   attributes × placement × algorithm);
//! * [`run_sweep`] — a scoped-thread batch executor whose output is
//!   byte-identical for every thread count;
//! * [`write_jsonl`] / [`write_csv`] / [`Summary`] — deterministic
//!   structured sinks and aggregate percentile summaries;
//! * [`canonicalize`] / [`orbit_key`] — symmetry canonicalization: the
//!   role-swap gauge and the full attribute quotient that key the
//!   `rvz serve` result cache (see [`canonical`]);
//! * [`run_sweep_checkpointed`] / [`Checkpoint`] — crash-safe sweep
//!   resume: completed records are journaled as CRC-framed JSONL and a
//!   restarted sweep recomputes only what is missing, reproducing the
//!   uninterrupted artifact bit-for-bit (see [`checkpoint`]);
//! * [`durable`] — the atomic-replace / append-journal file primitives
//!   with seeded disk-fault injection shared by the checkpoint and the
//!   `rvz serve` cache snapshot;
//! * [`json`] — the dependency-free JSON value model shared by the
//!   sinks and the serving layer's wire format.
//!
//! Every future workload axis (failure injection, drift ablations,
//! multi-robot swarms) is meant to plug in here as one more scenario
//! field rather than one more bespoke binary.
//!
//! ## Example: a Theorem 4 feasibility sweep
//!
//! ```
//! use rvz_experiments::{run_sweep, ScenarioGrid, Summary, SweepOptions};
//! use rvz_model::Chirality;
//!
//! let scenarios = ScenarioGrid::new()
//!     .speeds(&[0.5, 1.0])
//!     .clocks(&[0.6, 1.0])
//!     .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
//!     .distances(&[0.9])
//!     .visibilities(&[0.25])
//!     .build();
//! let records = run_sweep(&scenarios, &SweepOptions::default());
//! let summary = Summary::from_records(&records);
//! // Simulation agrees with the Theorem 4 predicate on every cell.
//! assert_eq!(summary.consistent, summary.total);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod canonical;
pub mod checkpoint;
pub mod durable;
pub mod executor;
pub mod json;
pub mod report;
pub mod rng;
pub mod scenario;

pub use canonical::{
    canonicalize, orbit_key, role_swap, snap_grid, CacheKey, Canonical, OrbitKey, OutcomeTransform,
    DEFAULT_GRID,
};
pub use checkpoint::{
    run_sweep_checkpointed, sweep_fingerprint, Checkpoint, CheckpointStats, ResumeInfo,
    CHECKPOINT_VERSION,
};
pub use durable::{
    crc32, read_file_faulty, DiskFaultPlan, DiskFaultSite, DiskFaults, DurableFile, JournalFile,
};
pub use executor::{
    run_sweep, run_sweep_deduped, run_sweep_deduped_default, run_sweep_with, DedupStats,
    SweepOptions, SweepRecord,
};
pub use json::Json;
pub use report::{
    breaker_token, outcome_token, percentile, record_from_json, record_to_json, scenario_from_json,
    write_csv, write_jsonl, Summary, CSV_HEADER,
};
pub use rng::SplitMix64;
pub use scenario::{
    latin_hypercube, parse_chirality, Algorithm, SampleSpace, Scenario, ScenarioGrid,
};
