//! # rvz-experiments
//!
//! Scenario sweeps at scale: deterministic generation of rendezvous
//! scenario batches and a parallel executor that maps them over the
//! simulator.
//!
//! The paper's headline results are statements over whole *families* of
//! attribute configurations — Theorem 4 characterizes feasibility over
//! the full `(v, τ, φ, χ)` space, Theorems 2–3 bound rendezvous time as
//! those parameters vary. This crate turns the single-instance simulator
//! of [`rvz_sim`] into a mapper over such families:
//!
//! * [`ScenarioGrid`] / [`latin_hypercube`] — deterministic scenario
//!   generation (Cartesian grids and seeded Latin-hypercube samples over
//!   attributes × placement × algorithm);
//! * [`run_sweep`] — a scoped-thread batch executor whose output is
//!   byte-identical for every thread count;
//! * [`write_jsonl`] / [`write_csv`] / [`Summary`] — deterministic
//!   structured sinks and aggregate percentile summaries;
//! * [`canonicalize`] / [`orbit_key`] — symmetry canonicalization: the
//!   role-swap gauge and the full attribute quotient that key the
//!   `rvz serve` result cache (see [`canonical`]);
//! * [`json`] — the dependency-free JSON value model shared by the
//!   sinks and the serving layer's wire format.
//!
//! Every future workload axis (failure injection, drift ablations,
//! multi-robot swarms) is meant to plug in here as one more scenario
//! field rather than one more bespoke binary.
//!
//! ## Example: a Theorem 4 feasibility sweep
//!
//! ```
//! use rvz_experiments::{run_sweep, ScenarioGrid, Summary, SweepOptions};
//! use rvz_model::Chirality;
//!
//! let scenarios = ScenarioGrid::new()
//!     .speeds(&[0.5, 1.0])
//!     .clocks(&[0.6, 1.0])
//!     .chiralities(&[Chirality::Consistent, Chirality::Mirrored])
//!     .distances(&[0.9])
//!     .visibilities(&[0.25])
//!     .build();
//! let records = run_sweep(&scenarios, &SweepOptions::default());
//! let summary = Summary::from_records(&records);
//! // Simulation agrees with the Theorem 4 predicate on every cell.
//! assert_eq!(summary.consistent, summary.total);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod canonical;
pub mod executor;
pub mod json;
pub mod report;
pub mod rng;
pub mod scenario;

pub use canonical::{
    canonicalize, orbit_key, role_swap, snap_grid, CacheKey, Canonical, OrbitKey, OutcomeTransform,
    DEFAULT_GRID,
};
pub use executor::{
    run_sweep, run_sweep_deduped, run_sweep_deduped_default, DedupStats, SweepOptions, SweepRecord,
};
pub use json::Json;
pub use report::{
    breaker_token, outcome_token, percentile, record_from_json, record_to_json, scenario_from_json,
    write_csv, write_jsonl, Summary, CSV_HEADER,
};
pub use rng::SplitMix64;
pub use scenario::{
    latin_hypercube, parse_chirality, Algorithm, SampleSpace, Scenario, ScenarioGrid,
};
