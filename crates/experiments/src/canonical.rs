//! Symmetry canonicalization: quotient a [`Scenario`] by the paper's
//! attribute symmetries so that equivalent queries share one cache entry.
//!
//! The paper's premise is that instances differing only in the *unknown*
//! attributes are related by exact symmetries of the rendezvous problem.
//! This module exploits two layers of that structure:
//!
//! ## The exact layer: role-swap gauge (simulation outcomes)
//!
//! A scenario describes the instance from the reference robot `R`'s
//! frame: `R'` has speed `v`, clock `τ`, compass `φ`, chirality `χ` and
//! sits at distance `d`, bearing `β`. The *same physical instance*
//! described from `R'`'s frame is the scenario
//!
//! ```text
//! v → 1/v   τ → 1/τ   χ → χ   d → d/(v·τ)   r → r/(v·τ)
//! φ → −φ (χ = +1)  |  φ → φ (χ = −1)
//! β → β − φ + π (χ = +1)  |  β → φ − β + π (χ = −1)
//! ```
//!
//! because `R`'s frame map seen from `R'` is the inverse `L⁻¹` of `R'`'s
//! frame map `L = vτ·Rot(φ)·Refl(χ)`, and the offset `−D` lands at
//! `L⁻¹(−D)`. Both descriptions denote identical motion, so the
//! simulated distance profiles coincide up to the joint speed/clock/
//! distance rescale: an outcome computed on the swapped scenario maps
//! back **exactly** through time `× τ` and distance `× v·τ`
//! ([`OutcomeTransform`]). [`canonicalize`] picks the lexicographically
//! smaller of the two descriptions as the orbit representative, so a
//! query stream containing both descriptions of a family resolves to one
//! cache entry.
//!
//! ## The verdict layer: the full attribute quotient (feasibility)
//!
//! The Theorem 4 verdict is invariant under a much larger group — it
//! ignores the placement entirely (bearing rotation to a fixed frame and
//! rescaling of `d` to 1), is symmetric under chirality reflection
//! (`φ → −φ` with both robots reflected), and under the reciprocal
//! rescale `v → 1/v`, `τ → 1/τ` *independently* per axis (each predicate
//! `τ ≠ 1`, `v ≠ 1`, `φ ≠ 0` is reciprocal/reflection invariant).
//! [`orbit_key`] quotients all of that out, collapsing the whole
//! attribute space onto a tiny set of verdict classes.
//!
//! ## Quantization
//!
//! Both keys snap their continuous fields to a configurable grid whose
//! step is rounded to a **power of two** ([`snap_grid`]), so that
//! quantization is exact arithmetic: dyadic attribute values (`0.5`,
//! `1.0`, `1.5`, …) are preserved bit-for-bit — in particular the
//! symmetry boundaries `τ = 1`, `v = 1`, `φ = 0` stay exact — while the
//! ulp-level noise of computing a swap's reciprocals collapses into the
//! same bucket. The canonical *representative* (the scenario actually
//! simulated on a cache miss) is the de-quantized bucket value, a pure
//! function of the query, so cached and freshly computed answers are
//! identical. A grid `≤ 0` disables quantization (bit-exact keys).

use crate::scenario::{Algorithm, Scenario};
use rvz_geometry::normalize_angle;
use rvz_model::Chirality;
use rvz_sim::SimOutcome;
use std::f64::consts::PI;

/// The default cache grid: `2⁻³⁰ ≈ 9.3e-10`.
///
/// Fine enough that distinct generator-produced scenarios never collide,
/// coarse enough to absorb the reciprocal round-off of the role swap.
pub const DEFAULT_GRID: f64 = 9.313225746154785e-10; // 2^-30, exact

/// Rounds a requested grid step to the nearest power of two.
///
/// Power-of-two steps make [`quantize`] exact (scaling by `2ᵏ` never
/// rounds), which is what keeps `τ = 1` / `v = 1` / `φ = 0` — the
/// symmetry boundaries of Theorem 4 — fixed points of quantization.
/// Non-positive or non-finite inputs disable quantization (return `0`).
pub fn snap_grid(grid: f64) -> f64 {
    if !grid.is_finite() || grid <= 0.0 {
        return 0.0;
    }
    (grid.log2().round()).exp2()
}

/// Snaps `x` to the nearest multiple of `grid` (`grid ≤ 0`: identity).
/// Negative zero is normalized to `+0.0` either way.
pub fn quantize(x: f64, grid: f64) -> f64 {
    if grid > 0.0 {
        (x / grid).round() * grid + 0.0
    } else {
        x + 0.0
    }
}

/// The exact map from outcomes computed on a canonical representative
/// back to the query's frame.
///
/// Times scale by [`OutcomeTransform::time_scale`], distances by
/// [`OutcomeTransform::distance_scale`]; step counts are frame-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeTransform {
    /// Multiplier from canonical-frame times to query-frame times.
    pub time_scale: f64,
    /// Multiplier from canonical-frame distances to query-frame distances.
    pub distance_scale: f64,
}

impl OutcomeTransform {
    /// The identity transform (query is its own representative).
    pub const IDENTITY: OutcomeTransform = OutcomeTransform {
        time_scale: 1.0,
        distance_scale: 1.0,
    };

    /// `true` when both scales are exactly 1.
    pub fn is_identity(&self) -> bool {
        self.time_scale == 1.0 && self.distance_scale == 1.0
    }

    /// Maps an outcome from the canonical frame into the query frame.
    pub fn apply(&self, outcome: SimOutcome) -> SimOutcome {
        let (ts, ds) = (self.time_scale, self.distance_scale);
        match outcome {
            SimOutcome::Contact {
                time,
                distance,
                steps,
            } => SimOutcome::Contact {
                time: time * ts,
                distance: distance * ds,
                steps,
            },
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => SimOutcome::Horizon {
                min_distance: min_distance * ds,
                min_distance_time: min_distance_time * ts,
                steps,
            },
            SimOutcome::StepBudget {
                time,
                min_distance,
                steps,
            } => SimOutcome::StepBudget {
                time: time * ts,
                min_distance: min_distance * ds,
                steps,
            },
            SimOutcome::Deadline {
                time,
                min_distance,
                steps,
            } => SimOutcome::Deadline {
                time: time * ts,
                min_distance: min_distance * ds,
                steps,
            },
        }
    }
}

/// The hashable identity of a canonical representative — the result
/// cache's key. Two scenarios get equal keys exactly when they share a
/// canonical representative (same symmetry orbit, same grid bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The common algorithm (part of the orbit: both robots run it).
    pub algorithm: Algorithm,
    /// Chirality of the representative.
    pub chirality: Chirality,
    /// Bit patterns of the representative's continuous fields, in order:
    /// speed, time-unit, orientation, distance, bearing, visibility.
    pub bits: [u64; 6],
}

impl CacheKey {
    fn of(s: &Scenario) -> CacheKey {
        CacheKey {
            algorithm: s.algorithm,
            chirality: s.chirality,
            bits: [
                s.speed.to_bits(),
                s.time_unit.to_bits(),
                s.orientation.to_bits(),
                s.distance.to_bits(),
                s.bearing.to_bits(),
                s.visibility.to_bits(),
            ],
        }
    }

    /// A deterministic 64-bit mix of the key (SplitMix64 finalizer per
    /// field), used for shard selection independent of the process's
    /// hash-map seeding.
    pub fn mix(&self) -> u64 {
        let mut h: u64 = match self.algorithm {
            Algorithm::WaitAndSearch => 0x9e37,
            Algorithm::UniversalSearch => 0x79b9,
        };
        h ^= match self.chirality {
            Chirality::Consistent => 0x1,
            Chirality::Mirrored => 0x2,
        };
        for &b in &self.bits {
            h = splitmix(h ^ b);
        }
        h
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A scenario reduced to its symmetry-orbit representative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Canonical {
    /// The representative actually simulated on a cache miss (id 0; the
    /// de-quantized grid-bucket value, a pure function of the query).
    pub scenario: Scenario,
    /// Whether the representative is the role-swapped description.
    pub swapped: bool,
    /// Maps representative-frame outcomes back to the query frame.
    pub transform: OutcomeTransform,
    /// The cache key identifying the representative.
    pub key: CacheKey,
}

/// The role-swapped description of the same physical instance, plus the
/// transform mapping swapped-frame outcomes back to the input frame.
///
/// The swap is a mathematical involution (swapping twice returns the
/// original up to floating-point round-off in the reciprocals).
pub fn role_swap(s: &Scenario) -> (Scenario, OutcomeTransform) {
    let scale = s.speed * s.time_unit;
    let (orientation, bearing) = match s.chirality {
        Chirality::Consistent => (
            normalize_angle(-s.orientation),
            normalize_angle(s.bearing - s.orientation + PI),
        ),
        Chirality::Mirrored => (
            s.orientation,
            normalize_angle(s.orientation - s.bearing + PI),
        ),
    };
    let swapped = Scenario {
        id: s.id,
        algorithm: s.algorithm,
        speed: 1.0 / s.speed,
        time_unit: 1.0 / s.time_unit,
        orientation,
        chirality: s.chirality,
        distance: s.distance / scale,
        bearing,
        visibility: s.visibility / scale,
    };
    (
        swapped,
        OutcomeTransform {
            time_scale: s.time_unit,
            distance_scale: scale,
        },
    )
}

/// Normalizes gauge freedoms that do not even change the description:
/// angles into `[0, 2π)`, `−0.0 → +0.0`, id dropped.
fn normalize(s: &Scenario) -> Scenario {
    Scenario {
        id: 0,
        algorithm: s.algorithm,
        speed: s.speed + 0.0,
        time_unit: s.time_unit + 0.0,
        orientation: normalize_angle(s.orientation) + 0.0,
        chirality: s.chirality,
        distance: s.distance + 0.0,
        bearing: normalize_angle(s.bearing) + 0.0,
        visibility: s.visibility + 0.0,
    }
}

/// Quantizes every continuous field onto the (power-of-two) grid.
/// Angles are re-normalized afterwards (a value just below `2π` may
/// round up to the seam).
fn quantize_scenario(s: &Scenario, grid: f64) -> Scenario {
    Scenario {
        id: 0,
        algorithm: s.algorithm,
        speed: quantize(s.speed, grid),
        time_unit: quantize(s.time_unit, grid),
        orientation: normalize_angle(quantize(s.orientation, grid)),
        chirality: s.chirality,
        distance: quantize(s.distance, grid),
        bearing: normalize_angle(quantize(s.bearing, grid)),
        visibility: quantize(s.visibility, grid),
    }
}

/// Lexicographic order over the quantized description, used to pick the
/// orbit representative deterministically.
fn order_key(s: &Scenario) -> [u64; 7] {
    // `total_cmp` order == order of the sign-adjusted bit patterns; all
    // fields here are non-negative finite, so raw bits order correctly.
    [
        s.time_unit.to_bits(),
        s.speed.to_bits(),
        s.orientation.to_bits(),
        match s.chirality {
            Chirality::Consistent => 0,
            Chirality::Mirrored => 1,
        },
        s.distance.to_bits(),
        s.bearing.to_bits(),
        s.visibility.to_bits(),
    ]
}

/// Reduces a scenario to its canonical symmetry-orbit representative.
///
/// `grid` is snapped via [`snap_grid`]; pass `0.0` for bit-exact keys.
/// The candidates (the scenario and its [`role_swap`]) are compared
/// *after* quantization, so the ulp-level round-off of reconstructing
/// one description from the other cannot split an orbit across buckets.
///
/// # Example
///
/// ```
/// use rvz_experiments::{canonicalize, ScenarioGrid, DEFAULT_GRID};
///
/// let s = ScenarioGrid::new().speeds(&[0.5]).clocks(&[2.0]).build()[0];
/// let (twin, _) = rvz_experiments::role_swap(&s);
/// let a = canonicalize(&s, DEFAULT_GRID);
/// let b = canonicalize(&twin, DEFAULT_GRID);
/// assert_eq!(a.key, b.key, "orbit mates share one cache entry");
/// assert_ne!(a.swapped, b.swapped);
/// ```
pub fn canonicalize(s: &Scenario, grid: f64) -> Canonical {
    let grid = snap_grid(grid);
    let direct = normalize(s);
    let (swap_raw, swap_transform) = role_swap(&direct);
    let swapped = normalize(&swap_raw);
    let direct_q = quantize_scenario(&direct, grid);
    let swapped_q = quantize_scenario(&swapped, grid);
    if order_key(&swapped_q) < order_key(&direct_q) {
        Canonical {
            scenario: swapped_q,
            swapped: true,
            transform: swap_transform,
            key: CacheKey::of(&swapped_q),
        }
    } else {
        Canonical {
            scenario: direct_q,
            swapped: false,
            transform: OutcomeTransform::IDENTITY,
            key: CacheKey::of(&direct_q),
        }
    }
}

/// The verdict-level orbit key: the full quotient by the paper's
/// attribute symmetries, under which the Theorem 4 feasibility verdict
/// (and the breaker/reason *kind*) is exactly invariant.
///
/// Placement (`d`, `β`, `r`) and the algorithm are dropped entirely
/// (the verdict is placement- and algorithm-free — equivalently, every
/// bearing rotates to a fixed frame and every distance rescales to 1);
/// clock and speed are folded by the reciprocal rescale `x ↦ min(x, 1/x)`;
/// orientation is folded by chirality reflection `φ ↦ min(φ, 2π − φ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrbitKey {
    /// `min(τ, 1/τ)` bits, quantized.
    pub time_unit: u64,
    /// `min(v, 1/v)` bits, quantized.
    pub speed: u64,
    /// `min(φ, 2π − φ)` bits, quantized.
    pub orientation: u64,
    /// Relative chirality (invariant under every symmetry above).
    pub chirality: Chirality,
}

/// Computes the verdict-level [`OrbitKey`] for a scenario's attributes.
pub fn orbit_key(s: &Scenario, grid: f64) -> OrbitKey {
    let grid = snap_grid(grid);
    let fold = |x: f64| quantize(x.min(1.0 / x), grid).to_bits();
    let phi = normalize_angle(s.orientation);
    let phi_folded = phi.min(normalize_angle(-phi));
    OrbitKey {
        time_unit: fold(s.time_unit),
        speed: fold(s.speed),
        orientation: quantize(phi_folded, grid).to_bits(),
        chirality: s.chirality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{latin_hypercube, SampleSpace};
    use rvz_model::feasibility;

    fn sample() -> Vec<Scenario> {
        let space = SampleSpace {
            algorithms: vec![Algorithm::WaitAndSearch, Algorithm::UniversalSearch],
            ..SampleSpace::default()
        };
        latin_hypercube(&space, 64, 2024)
    }

    #[test]
    fn snap_grid_rounds_to_powers_of_two() {
        assert_eq!(snap_grid(1e-9), 2f64.powi(-30));
        assert_eq!(snap_grid(0.125), 0.125);
        assert_eq!(snap_grid(0.1), 0.125);
        assert_eq!(snap_grid(0.0), 0.0);
        assert_eq!(snap_grid(-1.0), 0.0);
        assert_eq!(snap_grid(f64::NAN), 0.0);
        assert_eq!(DEFAULT_GRID, 2f64.powi(-30));
    }

    #[test]
    fn quantize_preserves_dyadic_values_exactly() {
        let g = DEFAULT_GRID;
        for x in [0.0, 0.5, 0.75, 1.0, 1.5, 2.0, 0.1015625] {
            assert_eq!(quantize(x, g).to_bits(), x.to_bits(), "x = {x}");
        }
        assert_eq!(quantize(-0.0, g).to_bits(), 0.0f64.to_bits());
        assert_eq!(quantize(-0.0, 0.0).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn quantize_absorbs_ulp_noise() {
        let g = DEFAULT_GRID;
        let x = 0.3f64;
        let noisy = f64::from_bits(x.to_bits() + 1); // one ulp of swap round-off
        assert_ne!(x.to_bits(), noisy.to_bits(), "test needs real noise");
        assert_eq!(quantize(x, g).to_bits(), quantize(noisy, g).to_bits());
    }

    #[test]
    fn role_swap_is_a_mathematical_involution() {
        for s in sample() {
            let (swapped, t) = role_swap(&s);
            let (back, t2) = role_swap(&swapped);
            assert!((back.speed - s.speed).abs() <= 1e-12 * s.speed);
            assert!((back.time_unit - s.time_unit).abs() <= 1e-12 * s.time_unit);
            assert!((back.distance - s.distance).abs() <= 1e-9 * s.distance);
            assert!((back.visibility - s.visibility).abs() <= 1e-9 * s.visibility);
            let wrap = |a: f64| a.min(std::f64::consts::TAU - a);
            assert!(wrap(normalize_angle(back.orientation - s.orientation)) < 1e-9);
            assert!(wrap(normalize_angle(back.bearing - s.bearing)) < 1e-9);
            assert_eq!(back.chirality, s.chirality);
            // The two transforms compose to the identity.
            assert!((t.time_scale * t2.time_scale - 1.0).abs() < 1e-12);
            assert!((t.distance_scale * t2.distance_scale - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn orbit_mates_share_a_cache_key() {
        for s in sample() {
            let (twin, _) = role_swap(&s);
            let a = canonicalize(&s, DEFAULT_GRID);
            let b = canonicalize(&twin, DEFAULT_GRID);
            assert_eq!(a.key, b.key, "orbit split for {s:?}");
            assert_eq!(a.scenario, b.scenario, "representatives differ");
            assert_eq!(a.swapped, !b.swapped);
        }
    }

    #[test]
    fn canonicalize_is_idempotent() {
        for s in sample() {
            let c = canonicalize(&s, DEFAULT_GRID);
            let again = canonicalize(&c.scenario, DEFAULT_GRID);
            assert_eq!(again.key, c.key);
            assert!(
                !again.swapped,
                "a representative re-canonicalizes to itself"
            );
            assert!(again.transform.is_identity());
        }
    }

    #[test]
    fn self_symmetric_scenarios_keep_the_identity_transform() {
        // Exact twins: the swap maps the scenario onto itself (up to the
        // bearing flip), and the unswapped side must win ties.
        let s = Scenario {
            id: 7,
            algorithm: Algorithm::WaitAndSearch,
            speed: 1.0,
            time_unit: 1.0,
            orientation: 0.0,
            chirality: Chirality::Consistent,
            distance: 1.0,
            bearing: 0.0,
            visibility: 0.25,
        };
        let c = canonicalize(&s, DEFAULT_GRID);
        assert_eq!(c.scenario.speed, 1.0);
        assert_eq!(c.scenario.time_unit, 1.0);
        assert!(c.transform.is_identity());
        assert_eq!(c.scenario.id, 0, "the cache key ignores the batch id");
    }

    #[test]
    fn symmetry_boundaries_survive_quantization() {
        // τ = 1, v = 1, φ = 0 are the Theorem 4 boundaries; the
        // power-of-two grid must keep them exact.
        let s = Scenario {
            id: 0,
            algorithm: Algorithm::WaitAndSearch,
            speed: 1.0,
            time_unit: 1.0,
            orientation: 0.0,
            chirality: Chirality::Mirrored,
            distance: 0.9,
            bearing: 0.3,
            visibility: 0.1,
        };
        let c = canonicalize(&s, DEFAULT_GRID);
        assert_eq!(c.scenario.speed.to_bits(), 1.0f64.to_bits());
        assert_eq!(c.scenario.time_unit.to_bits(), 1.0f64.to_bits());
        assert_eq!(c.scenario.orientation.to_bits(), 0.0f64.to_bits());
        assert!(!feasibility(&c.scenario.attributes()).is_feasible());
    }

    #[test]
    fn grid_zero_gives_bit_exact_keys() {
        let mut s = sample()[0];
        let a = canonicalize(&s, 0.0);
        s.speed = f64::from_bits(s.speed.to_bits() + 1);
        let b = canonicalize(&s, 0.0);
        assert_ne!(a.key, b.key, "bit-exact mode must distinguish ulps");
    }

    #[test]
    fn verdict_is_invariant_over_the_full_orbit() {
        for s in sample() {
            let base = feasibility(&s.attributes());
            let key = orbit_key(&s, DEFAULT_GRID);

            // Role swap.
            let (twin, _) = role_swap(&s);
            assert_eq!(orbit_key(&twin, DEFAULT_GRID), key, "swap split {s:?}");
            assert_eq!(
                feasibility(&twin.attributes()).is_feasible(),
                base.is_feasible()
            );

            // Chirality reflection: both robots reflected, φ → −φ.
            let reflected = Scenario {
                orientation: normalize_angle(-s.orientation),
                bearing: normalize_angle(-s.bearing),
                ..s
            };
            assert_eq!(
                orbit_key(&reflected, DEFAULT_GRID),
                key,
                "reflection split {s:?}"
            );
            assert_eq!(
                feasibility(&reflected.attributes()).is_feasible(),
                base.is_feasible()
            );

            // Placement changes never move the verdict orbit.
            let moved = Scenario {
                distance: s.distance * 3.0,
                bearing: normalize_angle(s.bearing + 1.0),
                visibility: s.visibility * 0.5,
                ..s
            };
            assert_eq!(orbit_key(&moved, DEFAULT_GRID), key);

            // Per-axis reciprocal rescale (verdict-level only).
            let clock_flipped = Scenario {
                time_unit: 1.0 / s.time_unit,
                ..s
            };
            assert_eq!(orbit_key(&clock_flipped, DEFAULT_GRID), key);
            assert_eq!(
                feasibility(&clock_flipped.attributes()).is_feasible(),
                base.is_feasible()
            );
        }
    }

    #[test]
    fn transform_applies_to_every_outcome_variant() {
        let t = OutcomeTransform {
            time_scale: 2.0,
            distance_scale: 0.5,
        };
        assert_eq!(
            t.apply(SimOutcome::Contact {
                time: 3.0,
                distance: 0.2,
                steps: 7
            }),
            SimOutcome::Contact {
                time: 6.0,
                distance: 0.1,
                steps: 7
            }
        );
        assert_eq!(
            t.apply(SimOutcome::Horizon {
                min_distance: 1.0,
                min_distance_time: 4.0,
                steps: 9
            }),
            SimOutcome::Horizon {
                min_distance: 0.5,
                min_distance_time: 8.0,
                steps: 9
            }
        );
        assert_eq!(
            t.apply(SimOutcome::StepBudget {
                time: 10.0,
                min_distance: 2.0,
                steps: 11
            }),
            SimOutcome::StepBudget {
                time: 20.0,
                min_distance: 1.0,
                steps: 11
            }
        );
        assert!(OutcomeTransform::IDENTITY.is_identity());
        assert!(!t.is_identity());
    }

    #[test]
    fn cache_key_mix_is_deterministic_and_spread() {
        let scenarios = sample();
        let mixes: Vec<u64> = scenarios
            .iter()
            .map(|s| canonicalize(s, DEFAULT_GRID).key.mix())
            .collect();
        let mixes2: Vec<u64> = scenarios
            .iter()
            .map(|s| canonicalize(s, DEFAULT_GRID).key.mix())
            .collect();
        assert_eq!(mixes, mixes2);
        let distinct: std::collections::HashSet<u64> = mixes.iter().copied().collect();
        assert!(distinct.len() > scenarios.len() / 2, "mix collides heavily");
    }
}
