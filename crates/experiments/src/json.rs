//! A minimal, dependency-free JSON value model with a parser and a
//! deterministic writer — the wire format shared by the sweep sinks
//! ([`crate::report::write_jsonl`]) and the `rvz serve` query service.
//!
//! The writer mirrors the sinks' conventions exactly: object fields keep
//! insertion order, floats use Rust's shortest-round-trip `Display`
//! formatting (the same bits always produce the same text, integral
//! values render without a decimal point), and no whitespace is emitted.
//! The parser accepts the full JSON grammar (nested values, escapes,
//! scientific notation), so everything the sinks emit — and everything a
//! remote client may send — round-trips through [`parse`] and
//! [`Json::render`] without an external crate.
//!
//! ```
//! use rvz_experiments::json::{parse, Json};
//!
//! let v = parse(r#"{"id":3,"time":0.5,"tags":["a","b"],"ok":true}"#).unwrap();
//! assert_eq!(v.get("id").and_then(Json::as_f64), Some(3.0));
//! assert_eq!(v.get("tags").and_then(Json::as_array).map(|a| a.len()), Some(2));
//! // Rendering is canonical: field order and float text are preserved.
//! assert_eq!(v.render(), r#"{"id":3,"time":0.5,"tags":["a","b"],"ok":true}"#);
//! ```

use std::fmt;

/// A parsed JSON value.
///
/// Objects are ordered field lists rather than maps: the sweep sinks and
/// the server's responses are *deterministic byte streams*, so field
/// order is part of the contract. Lookup by key is linear, which is fine
/// for the small records exchanged here.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Field lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    ///
    /// Numbers use shortest-round-trip formatting; a non-finite number
    /// (which no producer in this workspace emits) renders as `null`, the
    /// standard lossy convention.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum nesting depth accepted by [`parse`] (a stack-overflow guard
/// for adversarial remote inputs).
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document (one value plus optional surrounding
/// whitespace).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending byte; trailing
/// non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it through.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| {
                        self.err("invalid UTF-8 sequence") // unreachable for &str input
                    })?);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "0.30000000000000004"] {
            let v = parse(text).unwrap();
            assert_eq!(v.render(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn shortest_round_trip_floats_preserve_bits() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let rendered = Json::Num(x).render();
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "bits of {x}");
        }
    }

    #[test]
    fn integral_floats_render_without_decimal_point() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-17.0).render(), "-17");
    }

    #[test]
    fn scientific_notation_is_accepted() {
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-2.5E-2").unwrap().as_f64(), Some(-0.025));
        assert_eq!(parse("1.5e+2").unwrap().as_f64(), Some(150.0));
    }

    #[test]
    fn objects_preserve_field_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.render(), r#"{"z":1,"a":2,"m":3}"#);
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nested_values_parse() {
        let v = parse(r#" { "a" : [ 1 , { "b" : [ ] } , "s" ] , "c" : null } "#).unwrap();
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].as_str(), Some("s"));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nbreak \"quoted\" back\\slash \t tab \u{8} \u{c} émoji 🦀";
        let rendered = Json::Str(original.to_string()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(original));
        // Escape forms are also parsed.
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83e\udd80\/""#).unwrap().as_str(),
            Some("Aé🦀/")
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        let rendered = Json::Str("\u{01}".to_string()).render();
        assert_eq!(rendered, r#""\u0001""#);
        assert_eq!(parse(&rendered).unwrap().as_str(), Some("\u{01}"));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "\"\\q\"",
            "\"\\ud800\"",
            "nan",
            "--1",
            "{1:2}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_accepts_only_non_negative_integers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("\"3\"").unwrap().as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn obj_builder_keeps_order() {
        let v = Json::obj(vec![("b", Json::Num(1.0)), ("a", Json::Bool(true))]);
        assert_eq!(v.render(), r#"{"b":1,"a":true}"#);
    }
}
