//! Structured sweep output: JSON-lines, CSV, and aggregate summaries.
//!
//! Sweep artifacts are meant to be diffed, archived and post-processed,
//! so the writers here are fully deterministic: field order is fixed,
//! floats are rendered with Rust's shortest-round-trip formatting (the
//! same bits always produce the same text), and no timestamps or
//! wall-clock measurements appear in the records. Two byte-identical
//! sweep files therefore certify two identical result sets — the
//! 1-thread-vs-N-thread determinism test relies on exactly this.

use crate::executor::SweepRecord;
use crate::json::Json;
use crate::scenario::{parse_chirality, Algorithm, Scenario};
use rvz_model::{feasibility, Feasibility};
use rvz_sim::SimOutcome;
use std::io::{self, Write};

/// The fixed token naming the exploited symmetry breaker (or `none`).
pub fn breaker_token(feasibility: &Feasibility) -> &'static str {
    match feasibility {
        Feasibility::Feasible(b) => match b {
            rvz_model::SymmetryBreaker::AsymmetricClocks => "clocks",
            rvz_model::SymmetryBreaker::DifferentSpeeds => "speeds",
            rvz_model::SymmetryBreaker::OrientationOffset => "orientation",
        },
        Feasibility::Infeasible(_) => "none",
    }
}

/// The fixed token naming the outcome variant.
pub fn outcome_token(outcome: &SimOutcome) -> &'static str {
    match outcome {
        SimOutcome::Contact { .. } => "contact",
        SimOutcome::Horizon { .. } => "horizon",
        SimOutcome::StepBudget { .. } => "step_budget",
        SimOutcome::Deadline { .. } => "deadline",
    }
}

/// The flat field view of a record shared by both writers.
struct Row<'a> {
    record: &'a SweepRecord,
}

impl Row<'_> {
    fn outcome_kind(&self) -> &'static str {
        outcome_token(&self.record.outcome)
    }

    /// `(time, distance, steps)` normalized across outcome variants:
    /// contact time / contact distance / steps for a contact, the
    /// min-distance observation otherwise.
    fn observables(&self) -> (f64, f64, u64) {
        match self.record.outcome {
            SimOutcome::Contact {
                time,
                distance,
                steps,
            } => (time, distance, steps),
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => (min_distance_time, min_distance, steps),
            SimOutcome::StepBudget {
                time,
                min_distance,
                steps,
            }
            | SimOutcome::Deadline {
                time,
                min_distance,
                steps,
            } => (time, min_distance, steps),
        }
    }

    fn breaker(&self) -> &'static str {
        breaker_token(&self.record.feasibility)
    }
}

/// The CSV header row matching [`write_csv`].
pub const CSV_HEADER: &str = "id,algorithm,speed,time_unit,orientation,chirality,distance,bearing,visibility,feasible,breaker,outcome,time,observed_distance,steps";

/// Writes one record per line as CSV (no quoting needed: every field is
/// numeric or a fixed token).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(w: &mut W, records: &[SweepRecord]) -> io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for record in records {
        let row = Row { record };
        let s = &record.scenario;
        let (time, distance, steps) = row.observables();
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            s.id,
            s.algorithm,
            s.speed,
            s.time_unit,
            s.orientation,
            s.chirality,
            s.distance,
            s.bearing,
            s.visibility,
            record.feasibility.is_feasible(),
            row.breaker(),
            row.outcome_kind(),
            time,
            distance,
            steps,
        )?;
    }
    Ok(())
}

/// Writes one record per line as a JSON object (JSON-lines).
///
/// Each line is the rendering of [`record_to_json`], so the sink and the
/// serving layer's decoder share one schema by construction: anything
/// this writer emits is accepted verbatim by [`record_from_json`].
/// Every value is a number, boolean or fixed token; floats use
/// shortest-round-trip formatting, so integral values render without a
/// decimal point (`1` rather than `1.0`), which is still a valid JSON
/// number.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_jsonl<W: Write>(w: &mut W, records: &[SweepRecord]) -> io::Result<()> {
    for record in records {
        writeln!(w, "{}", record_to_json(record).render())?;
    }
    Ok(())
}

/// The JSON-object form of one sweep record (the JSONL row and the
/// `rvz serve` response-record schema).
///
/// Field order is fixed; see [`write_jsonl`] for the formatting
/// guarantees.
pub fn record_to_json(record: &SweepRecord) -> Json {
    let row = Row { record };
    let s = &record.scenario;
    let (time, distance, steps) = row.observables();
    Json::obj(vec![
        ("id", Json::Num(s.id as f64)),
        ("algorithm", Json::Str(s.algorithm.to_string())),
        ("speed", Json::Num(s.speed)),
        ("time_unit", Json::Num(s.time_unit)),
        ("orientation", Json::Num(s.orientation)),
        ("chirality", Json::Str(s.chirality.to_string())),
        ("distance", Json::Num(s.distance)),
        ("bearing", Json::Num(s.bearing)),
        ("visibility", Json::Num(s.visibility)),
        ("feasible", Json::Bool(record.feasibility.is_feasible())),
        ("breaker", Json::Str(row.breaker().to_string())),
        ("outcome", Json::Str(row.outcome_kind().to_string())),
        ("time", Json::Num(time)),
        ("observed_distance", Json::Num(distance)),
        ("steps", Json::Num(steps as f64)),
    ])
}

fn field_f64(value: &Json, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

/// Parses the scenario fields of a [`record_to_json`]-shaped object.
///
/// Unlike [`Scenario::attributes`]'s panicking constructors, every field
/// is *validated* here — remote or file input cannot crash the caller.
/// Missing fields fall back to the reference scenario (the
/// [`crate::ScenarioGrid::new`] singleton), so a minimal query like
/// `{"speed":0.5}` denotes a full scenario.
///
/// # Errors
///
/// Returns a description of the first mistyped or out-of-domain field.
pub fn scenario_from_json(value: &Json) -> Result<Scenario, String> {
    if value.as_object().is_none() {
        return Err("scenario must be a JSON object".into());
    }
    let defaults = crate::ScenarioGrid::new().build()[0];
    let opt_f64 = |key: &str, default: f64| -> Result<f64, String> {
        match value.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| format!("field `{key}` expects a number")),
        }
    };
    let positive = |key: &str, x: f64| -> Result<f64, String> {
        if x > 0.0 && x.is_finite() {
            Ok(x)
        } else {
            Err(format!("field `{key}` must be positive and finite"))
        }
    };
    let finite = |key: &str, x: f64| -> Result<f64, String> {
        if x.is_finite() {
            Ok(x)
        } else {
            Err(format!("field `{key}` must be finite"))
        }
    };
    let scenario = Scenario {
        id: match value.get("id") {
            None => defaults.id,
            Some(v) => v
                .as_u64()
                .ok_or("field `id` expects a non-negative integer")?,
        },
        algorithm: match value.get("algorithm") {
            None => defaults.algorithm,
            Some(v) => Algorithm::parse(v.as_str().ok_or("field `algorithm` expects a string")?)?,
        },
        speed: positive("speed", opt_f64("speed", defaults.speed)?)?,
        time_unit: positive("time_unit", opt_f64("time_unit", defaults.time_unit)?)?,
        orientation: finite("orientation", opt_f64("orientation", defaults.orientation)?)?,
        chirality: match value.get("chirality") {
            None => defaults.chirality,
            Some(v) => parse_chirality(v.as_str().ok_or("field `chirality` expects a string")?)?,
        },
        distance: positive("distance", opt_f64("distance", defaults.distance)?)?,
        bearing: finite("bearing", opt_f64("bearing", defaults.bearing)?)?,
        visibility: positive("visibility", opt_f64("visibility", defaults.visibility)?)?,
    };
    // Belt and suspenders: the per-field checks above already imply a
    // valid instance, but future instance-level constraints should
    // surface as parse errors rather than worker panics.
    if let Err(e) = scenario.instance() {
        return Err(format!("scenario is degenerate: {e}"));
    }
    Ok(scenario)
}

fn field_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// Parses one record from its [`record_to_json`] / [`write_jsonl`] form.
///
/// The flat row carries the scenario, the observables and the verdict
/// tokens; the structured [`Feasibility`] payload is reconstructed by
/// re-deciding Theorem 4 on the parsed attributes and cross-checked
/// against the row's `feasible`/`breaker` fields, so a tampered or
/// mismatched row is rejected rather than silently re-labelled.
///
/// # Errors
///
/// Returns a description of the first missing, mistyped or inconsistent
/// field.
pub fn record_from_json(value: &Json) -> Result<SweepRecord, String> {
    let scenario = scenario_from_json(value)?;
    let verdict = feasibility(&scenario.attributes());
    let feasible = value
        .get("feasible")
        .and_then(Json::as_bool)
        .ok_or("missing or non-boolean field `feasible`")?;
    if feasible != verdict.is_feasible() || field_str(value, "breaker")? != breaker_token(&verdict)
    {
        return Err(format!(
            "feasible/breaker fields disagree with the Theorem 4 verdict {verdict}"
        ));
    }
    let time = field_f64(value, "time")?;
    let observed = field_f64(value, "observed_distance")?;
    let steps = value
        .get("steps")
        .and_then(Json::as_u64)
        .ok_or("missing or non-integer field `steps`")?;
    let outcome = match field_str(value, "outcome")? {
        "contact" => SimOutcome::Contact {
            time,
            distance: observed,
            steps,
        },
        "horizon" => SimOutcome::Horizon {
            min_distance: observed,
            min_distance_time: time,
            steps,
        },
        "step_budget" => SimOutcome::StepBudget {
            time,
            min_distance: observed,
            steps,
        },
        "deadline" => SimOutcome::Deadline {
            time,
            min_distance: observed,
            steps,
        },
        other => return Err(format!("unknown outcome kind `{other}`")),
    };
    Ok(SweepRecord {
        scenario,
        feasibility: verdict,
        outcome,
    })
}

/// Aggregate statistics over a sweep, comparable across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total records.
    pub total: usize,
    /// Records whose simulation made contact.
    pub contacts: usize,
    /// Records that reached the horizon without contact.
    pub horizons: usize,
    /// Records that exhausted the step budget.
    pub step_budgets: usize,
    /// Records whose wall-clock deadline expired mid-query.
    pub deadlines: usize,
    /// Records where the Theorem 4 verdict and the simulation agree.
    pub consistent: usize,
    /// Contact-time percentiles `[p50, p90, p99, max]`, when any contact
    /// occurred.
    pub contact_time_percentiles: Option<[f64; 4]>,
}

/// The nearest-rank percentile of an ascending-sorted sample.
///
/// Returns `None` for an empty sample or a NaN `p` (an empty slice used
/// to panic here through `clamp` with `min > max`); `p` is clamped into
/// `[0, 100]` otherwise. Shared by the sweep [`Summary`] and the
/// `rvz loadtest` latency report.
///
/// # Example
///
/// ```
/// use rvz_experiments::percentile;
///
/// assert_eq!(percentile(&[], 50.0), None);
/// assert_eq!(percentile(&[3.0], 99.0), Some(3.0));
/// assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0), Some(2.0));
/// ```
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() || p.is_nan() {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

impl Summary {
    /// Aggregates a record batch.
    pub fn from_records(records: &[SweepRecord]) -> Self {
        let mut contacts = 0;
        let mut horizons = 0;
        let mut step_budgets = 0;
        let mut deadlines = 0;
        let mut consistent = 0;
        let mut times = Vec::new();
        for r in records {
            match r.outcome {
                SimOutcome::Contact { time, .. } => {
                    contacts += 1;
                    times.push(time);
                }
                SimOutcome::Horizon { .. } => horizons += 1,
                SimOutcome::StepBudget { .. } => step_budgets += 1,
                SimOutcome::Deadline { .. } => deadlines += 1,
            }
            if r.consistent() {
                consistent += 1;
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("contact times are finite"));
        let contact_time_percentiles = match (
            percentile(&times, 50.0),
            percentile(&times, 90.0),
            percentile(&times, 99.0),
            times.last(),
        ) {
            (Some(p50), Some(p90), Some(p99), Some(&max)) => Some([p50, p90, p99, max]),
            _ => None,
        };
        Summary {
            total: records.len(),
            contacts,
            horizons,
            step_budgets,
            deadlines,
            consistent,
            contact_time_percentiles,
        }
    }

    /// A human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenarios: {}  contact: {}  horizon: {}  step-budget: {}  deadline: {}\n",
            self.total, self.contacts, self.horizons, self.step_budgets, self.deadlines
        ));
        out.push_str(&format!(
            "theorem-4 consistency: {}/{}\n",
            self.consistent, self.total
        ));
        if let Some([p50, p90, p99, max]) = self.contact_time_percentiles {
            out.push_str(&format!(
                "contact time: p50={p50:.4}  p90={p90:.4}  p99={p99:.4}  max={max:.4}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_sweep, SweepOptions};
    use crate::scenario::ScenarioGrid;

    fn records() -> Vec<SweepRecord> {
        let scenarios = ScenarioGrid::new()
            .speeds(&[0.5, 1.0])
            .clocks(&[0.6, 1.0])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build();
        run_sweep(&scenarios, &SweepOptions::default())
    }

    #[test]
    fn csv_has_header_plus_one_line_per_record() {
        let records = records();
        let mut buf = Vec::new();
        write_csv(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), records.len() + 1);
        assert_eq!(lines[0], CSV_HEADER);
        let columns = CSV_HEADER.split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "bad row: {line}");
        }
    }

    #[test]
    fn jsonl_lines_are_minimally_wellformed() {
        let records = records();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), records.len());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"outcome\":\""));
            // No illegal JSON tokens can appear: the engine only reports
            // finite observables.
            assert!(!line.contains("NaN") && !line.contains("inf"));
        }
    }

    #[test]
    fn summary_counts_add_up() {
        let records = records();
        let summary = Summary::from_records(&records);
        assert_eq!(summary.total, records.len());
        assert_eq!(
            summary.contacts + summary.horizons + summary.step_budgets,
            summary.total
        );
        assert_eq!(summary.consistent, summary.total);
        let [p50, p90, p99, max] = summary.contact_time_percentiles.unwrap();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        assert!(summary.render().contains("theorem-4 consistency"));
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), Some(2.0));
        assert_eq!(percentile(&xs, 90.0), Some(4.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
    }

    #[test]
    fn percentile_survives_degenerate_inputs() {
        // Empty: used to panic via `rank.clamp(1, 0)`.
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[], 0.0), None);
        // Singleton: every percentile is the one sample.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], p), Some(7.5));
        }
        // Two elements: nearest-rank splits at the median.
        let xs = [1.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.1), Some(2.0));
        assert_eq!(percentile(&xs, 100.0), Some(2.0));
        // Out-of-range and NaN percentiles are clamped / rejected.
        assert_eq!(percentile(&xs, -10.0), Some(1.0));
        assert_eq!(percentile(&xs, 250.0), Some(2.0));
        assert_eq!(percentile(&xs, f64::NAN), None);
    }

    #[test]
    fn records_round_trip_through_json() {
        for record in records() {
            let json = record_to_json(&record);
            let line = json.render();
            let parsed = crate::json::parse(&line).unwrap();
            let back = record_from_json(&parsed).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn record_from_json_rejects_inconsistent_rows() {
        let record = records().remove(0);
        let line = record_to_json(&record).render();
        // Flip the feasible flag: the row no longer matches Theorem 4.
        let tampered = if line.contains("\"feasible\":true") {
            line.replace("\"feasible\":true", "\"feasible\":false")
        } else {
            line.replace("\"feasible\":false", "\"feasible\":true")
        };
        let parsed = crate::json::parse(&tampered).unwrap();
        assert!(record_from_json(&parsed).unwrap_err().contains("Theorem 4"));
    }

    #[test]
    fn scenario_from_json_validates_domains() {
        use crate::json::parse;
        let minimal = parse(r#"{"speed":0.5}"#).unwrap();
        let s = scenario_from_json(&minimal).unwrap();
        assert_eq!(s.speed, 0.5);
        assert_eq!(s.time_unit, 1.0, "missing fields take reference values");

        for (bad, needle) in [
            (r#"{"speed":-1}"#, "positive"),
            (r#"{"speed":0}"#, "positive"),
            (r#"{"time_unit":1e999}"#, "positive and finite"),
            (r#"{"orientation":"north"}"#, "expects a number"),
            (r#"{"chirality":"left"}"#, "+1 or -1"),
            (r#"{"algorithm":"dance"}"#, "unknown algorithm"),
            (r#"{"visibility":0}"#, "positive"),
            (r#"[1,2]"#, "must be a JSON object"),
        ] {
            let value = parse(bad).unwrap();
            let err = scenario_from_json(&value).unwrap_err();
            assert!(err.contains(needle), "`{bad}` gave `{err}`");
        }
    }
}
