//! Structured sweep output: JSON-lines, CSV, and aggregate summaries.
//!
//! Sweep artifacts are meant to be diffed, archived and post-processed,
//! so the writers here are fully deterministic: field order is fixed,
//! floats are rendered with Rust's shortest-round-trip formatting (the
//! same bits always produce the same text), and no timestamps or
//! wall-clock measurements appear in the records. Two byte-identical
//! sweep files therefore certify two identical result sets — the
//! 1-thread-vs-N-thread determinism test relies on exactly this.

use crate::executor::SweepRecord;
use rvz_model::Feasibility;
use rvz_sim::SimOutcome;
use std::io::{self, Write};

/// The flat field view of a record shared by both writers.
struct Row<'a> {
    record: &'a SweepRecord,
}

impl Row<'_> {
    fn outcome_kind(&self) -> &'static str {
        match self.record.outcome {
            SimOutcome::Contact { .. } => "contact",
            SimOutcome::Horizon { .. } => "horizon",
            SimOutcome::StepBudget { .. } => "step_budget",
        }
    }

    /// `(time, distance, steps)` normalized across outcome variants:
    /// contact time / contact distance / steps for a contact, the
    /// min-distance observation otherwise.
    fn observables(&self) -> (f64, f64, u64) {
        match self.record.outcome {
            SimOutcome::Contact {
                time,
                distance,
                steps,
            } => (time, distance, steps),
            SimOutcome::Horizon {
                min_distance,
                min_distance_time,
                steps,
            } => (min_distance_time, min_distance, steps),
            SimOutcome::StepBudget {
                time,
                min_distance,
                steps,
            } => (time, min_distance, steps),
        }
    }

    fn breaker(&self) -> &'static str {
        match self.record.feasibility {
            Feasibility::Feasible(b) => match b {
                rvz_model::SymmetryBreaker::AsymmetricClocks => "clocks",
                rvz_model::SymmetryBreaker::DifferentSpeeds => "speeds",
                rvz_model::SymmetryBreaker::OrientationOffset => "orientation",
            },
            Feasibility::Infeasible(_) => "none",
        }
    }
}

/// The CSV header row matching [`write_csv`].
pub const CSV_HEADER: &str = "id,algorithm,speed,time_unit,orientation,chirality,distance,bearing,visibility,feasible,breaker,outcome,time,observed_distance,steps";

/// Writes one record per line as CSV (no quoting needed: every field is
/// numeric or a fixed token).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(w: &mut W, records: &[SweepRecord]) -> io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for record in records {
        let row = Row { record };
        let s = &record.scenario;
        let (time, distance, steps) = row.observables();
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            s.id,
            s.algorithm,
            s.speed,
            s.time_unit,
            s.orientation,
            s.chirality,
            s.distance,
            s.bearing,
            s.visibility,
            record.feasibility.is_feasible(),
            row.breaker(),
            row.outcome_kind(),
            time,
            distance,
            steps,
        )?;
    }
    Ok(())
}

/// Writes one record per line as a JSON object (JSON-lines).
///
/// Every value is a number, boolean or fixed token, so the hand-rolled
/// serializer below emits valid JSON without an external crate. Floats
/// use shortest-round-trip formatting; integral values therefore render
/// without a decimal point (`1` rather than `1.0`), which is still a
/// valid JSON number.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_jsonl<W: Write>(w: &mut W, records: &[SweepRecord]) -> io::Result<()> {
    for record in records {
        let row = Row { record };
        let s = &record.scenario;
        let (time, distance, steps) = row.observables();
        writeln!(
            w,
            concat!(
                "{{\"id\":{},\"algorithm\":\"{}\",\"speed\":{},\"time_unit\":{},",
                "\"orientation\":{},\"chirality\":\"{}\",\"distance\":{},\"bearing\":{},",
                "\"visibility\":{},\"feasible\":{},\"breaker\":\"{}\",\"outcome\":\"{}\",",
                "\"time\":{},\"observed_distance\":{},\"steps\":{}}}"
            ),
            s.id,
            s.algorithm,
            s.speed,
            s.time_unit,
            s.orientation,
            s.chirality,
            s.distance,
            s.bearing,
            s.visibility,
            record.feasibility.is_feasible(),
            row.breaker(),
            row.outcome_kind(),
            time,
            distance,
            steps,
        )?;
    }
    Ok(())
}

/// Aggregate statistics over a sweep, comparable across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Total records.
    pub total: usize,
    /// Records whose simulation made contact.
    pub contacts: usize,
    /// Records that reached the horizon without contact.
    pub horizons: usize,
    /// Records that exhausted the step budget.
    pub step_budgets: usize,
    /// Records where the Theorem 4 verdict and the simulation agree.
    pub consistent: usize,
    /// Contact-time percentiles `[p50, p90, p99, max]`, when any contact
    /// occurred.
    pub contact_time_percentiles: Option<[f64; 4]>,
}

/// The nearest-rank percentile of a sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl Summary {
    /// Aggregates a record batch.
    pub fn from_records(records: &[SweepRecord]) -> Self {
        let mut contacts = 0;
        let mut horizons = 0;
        let mut step_budgets = 0;
        let mut consistent = 0;
        let mut times = Vec::new();
        for r in records {
            match r.outcome {
                SimOutcome::Contact { time, .. } => {
                    contacts += 1;
                    times.push(time);
                }
                SimOutcome::Horizon { .. } => horizons += 1,
                SimOutcome::StepBudget { .. } => step_budgets += 1,
            }
            if r.consistent() {
                consistent += 1;
            }
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("contact times are finite"));
        let contact_time_percentiles = if times.is_empty() {
            None
        } else {
            Some([
                percentile(&times, 50.0),
                percentile(&times, 90.0),
                percentile(&times, 99.0),
                *times.last().expect("non-empty"),
            ])
        };
        Summary {
            total: records.len(),
            contacts,
            horizons,
            step_budgets,
            consistent,
            contact_time_percentiles,
        }
    }

    /// A human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenarios: {}  contact: {}  horizon: {}  step-budget: {}\n",
            self.total, self.contacts, self.horizons, self.step_budgets
        ));
        out.push_str(&format!(
            "theorem-4 consistency: {}/{}\n",
            self.consistent, self.total
        ));
        if let Some([p50, p90, p99, max]) = self.contact_time_percentiles {
            out.push_str(&format!(
                "contact time: p50={p50:.4}  p90={p90:.4}  p99={p99:.4}  max={max:.4}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_sweep, SweepOptions};
    use crate::scenario::ScenarioGrid;

    fn records() -> Vec<SweepRecord> {
        let scenarios = ScenarioGrid::new()
            .speeds(&[0.5, 1.0])
            .clocks(&[0.6, 1.0])
            .distances(&[0.9])
            .visibilities(&[0.25])
            .build();
        run_sweep(&scenarios, &SweepOptions::default())
    }

    #[test]
    fn csv_has_header_plus_one_line_per_record() {
        let records = records();
        let mut buf = Vec::new();
        write_csv(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), records.len() + 1);
        assert_eq!(lines[0], CSV_HEADER);
        let columns = CSV_HEADER.split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "bad row: {line}");
        }
    }

    #[test]
    fn jsonl_lines_are_minimally_wellformed() {
        let records = records();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), records.len());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"outcome\":\""));
            // No illegal JSON tokens can appear: the engine only reports
            // finite observables.
            assert!(!line.contains("NaN") && !line.contains("inf"));
        }
    }

    #[test]
    fn summary_counts_add_up() {
        let records = records();
        let summary = Summary::from_records(&records);
        assert_eq!(summary.total, records.len());
        assert_eq!(
            summary.contacts + summary.horizons + summary.step_budgets,
            summary.total
        );
        assert_eq!(summary.consistent, summary.total);
        let [p50, p90, p99, max] = summary.contact_time_percentiles.unwrap();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        assert!(summary.render().contains("theorem-4 consistency"));
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 90.0), 4.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
    }
}
