//! Analytic ablation models for the dyadic granularity schedule.
//!
//! Design decision ◆4 (`DESIGN.md`): the paper sets the sub-round
//! granularity `ρ_{j,k} = δ²_{j,k}/2^{k+1}`, coarse on outer annuli and
//! fine on inner ones, so a round costs only `3(π+1)(k+1)·2^{k+1}` time
//! while still guaranteeing discovery once `2^{k+1} ≥ d²/r`. These
//! models compute — in closed form, no simulation — the *guaranteed*
//! search time of schedule variants, letting the E12 bench show the
//! asymptotic gap.

use rvz_search::{coverage, times};

/// The guaranteed-performance summary of a search schedule on `(d, r)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuaranteedSearch {
    /// First round whose sweep provably reaches any target at distance `d`.
    pub round: u32,
    /// Total time to complete all rounds through that one.
    pub time: f64,
}

/// A doubling-round search schedule whose per-round cost and discovery
/// guarantee have closed forms.
///
/// This trait is deliberately *analytic*: implementations answer "by
/// what round is discovery guaranteed, and how much time has elapsed by
/// then", which is the quantity Theorem 1 bounds.
pub trait SearchScheduleModel {
    /// Short display name for benches and tables.
    fn name(&self) -> &'static str;

    /// Duration of round `k` under this schedule.
    fn round_time(&self, k: u32) -> f64;

    /// First round that guarantees discovery for `(d, r)`, if any round
    /// up to `max_round` does.
    fn guaranteed_round(&self, d: f64, r: f64, max_round: u32) -> Option<u32>;

    /// Guaranteed search time: the sum of round times through the
    /// guaranteed round.
    fn guaranteed_search(&self, d: f64, r: f64, max_round: u32) -> Option<GuaranteedSearch> {
        let round = self.guaranteed_round(d, r, max_round)?;
        let time = (1..=round).map(|k| self.round_time(k)).sum();
        Some(GuaranteedSearch { round, time })
    }
}

/// The paper's schedule (Algorithm 3/4), delegating to the exact
/// implementations in `rvz-search`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PaperSchedule;

impl SearchScheduleModel for PaperSchedule {
    fn name(&self) -> &'static str {
        "paper (ρ = δ²/2^{k+1})"
    }

    fn round_time(&self, k: u32) -> f64 {
        times::round_duration(k)
    }

    fn guaranteed_round(&self, d: f64, r: f64, max_round: u32) -> Option<u32> {
        coverage::guaranteed_discovery_round(d, r).filter(|&k| k <= max_round)
    }
}

/// Ablation: round `k` sweeps the disk of radius `2^k` with a *uniform*
/// granularity `ρ = 2^{−k}` (circles every `2^{1−k}` from `2^{−k}` out to
/// `2^k`).
///
/// Discovery is guaranteed once `2^{−k} ≤ r` and `2^k ≥ d`, i.e. at
/// round `max(⌈log 1/r⌉, ⌈log d⌉)` — but the round time is
/// `Θ(2^{3k})` instead of the paper's `Θ(k·2^k)`, because outer annuli
/// are swept needlessly finely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UniformGranularity;

impl UniformGranularity {
    /// Number of circles in round `k`: radii `2^{−k}, 2^{−k}+2ρ, …, 2^k`
    /// with `ρ = 2^{−k}`.
    fn circle_count(k: u32) -> u64 {
        // (2^k − 2^{−k}) / 2^{1−k} + 1 = (2^{2k} − 1)/2 + 1.
        (((1_u128 << (2 * k)) - 1) / 2 + 1) as u64
    }
}

impl SearchScheduleModel for UniformGranularity {
    fn name(&self) -> &'static str {
        "uniform (ρ = 2^{-k})"
    }

    fn round_time(&self, k: u32) -> f64 {
        assert!(
            (1..=times::MAX_ROUND).contains(&k),
            "round {k} out of range"
        );
        // Σᵢ 2(π+1)·δᵢ over circles δᵢ = 2^{−k} + 2i·2^{−k}: arithmetic
        // series with n = circle_count terms, first 2^{−k}, last 2^k.
        let n = Self::circle_count(k) as f64;
        let first = (-(k as f64)).exp2();
        let last = (k as f64).exp2();
        2.0 * times::PI_PLUS_1 * n * 0.5 * (first + last)
    }

    fn guaranteed_round(&self, d: f64, r: f64, max_round: u32) -> Option<u32> {
        assert!(d > 0.0 && r > 0.0, "d and r must be positive");
        if d <= r {
            return Some(1);
        }
        (1..=max_round.min(times::MAX_ROUND)).find(|&k| {
            let rho = (-(k as f64)).exp2();
            let reach = (k as f64).exp2();
            rho <= r && reach >= d
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_delegates_to_exact_schedule() {
        let m = PaperSchedule;
        assert_eq!(m.round_time(3), times::round_duration(3));
        let g = m.guaranteed_search(0.9, 1e-3, 31).unwrap();
        assert_eq!(
            Some(g.round),
            coverage::guaranteed_discovery_round(0.9, 1e-3)
        );
        assert!((g.time - times::rounds_total(g.round)).abs() < 1e-9);
    }

    #[test]
    fn uniform_circle_count_small_cases() {
        // k = 1: radii 1/2, 3/2, ... up to 2: circles at 1/2, 3/2 — wait,
        // spacing 2ρ = 1: 1/2, 3/2 then cap 2 ⇒ count = (4−1)/2 + 1 = 2.
        assert_eq!(UniformGranularity::circle_count(1), 2);
        // k = 2: (16−1)/2 + 1 = 8.
        assert_eq!(UniformGranularity::circle_count(2), 8);
    }

    #[test]
    fn uniform_round_time_grows_cubically() {
        let m = UniformGranularity;
        // Θ(2^{3k}): ratio between consecutive rounds tends to 8.
        let ratio = m.round_time(10) / m.round_time(9);
        assert!((ratio - 8.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn paper_round_time_grows_like_k_2k() {
        let m = PaperSchedule;
        let ratio = m.round_time(10) / m.round_time(9);
        // (k+1)2^{k+1} growth: ratio ≈ 2·(11/10).
        assert!((ratio - 2.2).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn uniform_guarantee_rounds() {
        let m = UniformGranularity;
        // d = 0.9, r = 2^{-5}: needs ρ ≤ r (k ≥ 5) and 2^k ≥ 0.9 (k ≥ 0).
        assert_eq!(m.guaranteed_round(0.9, 0.03125, 31), Some(5));
        // Visible at start.
        assert_eq!(m.guaranteed_round(0.5, 1.0, 31), Some(1));
        // Out of budget.
        assert_eq!(m.guaranteed_round(0.9, 1e-12, 10), None);
    }

    #[test]
    fn ablation_gap_widens_with_difficulty() {
        let paper = PaperSchedule;
        let uniform = UniformGranularity;
        let mut last_ratio = 0.0;
        for rexp in [-4, -6, -8, -10] {
            let r = (rexp as f64).exp2();
            let p = paper.guaranteed_search(1.0, r, 31).unwrap();
            let u = uniform.guaranteed_search(1.0, r, 31).unwrap();
            let ratio = u.time / p.time;
            assert!(
                ratio > last_ratio,
                "gap should widen: r=2^{rexp}: {ratio} vs {last_ratio}"
            );
            last_ratio = ratio;
        }
        // The final gap is substantial.
        assert!(last_ratio > 50.0, "final ratio {last_ratio}");
    }
}
