//! # rvz-baselines
//!
//! Comparators and ablations for the paper's search schedule.
//!
//! The paper's Algorithm 4 pays a `Θ(log(d²/r))` overhead for knowing
//! *nothing*. Two kinds of baselines quantify that price:
//!
//! * [`ArchimedeanSpiral`] — the **omniscient** searcher: it knows the
//!   visibility radius `r` and lays a spiral of pitch `2r`, achieving
//!   `≈ π·d²/(2r)` search time. This is the information-rich lower
//!   envelope the universal algorithm is measured against (experiment
//!   E11).
//! * [`schedules`] — **ablations** of the dyadic granularity choice
//!   `ρ_{j,k} = δ²_{j,k}/2^{k+1}` (design decision ◆4 in `DESIGN.md`):
//!   replacing the per-annulus granularity ladder with a uniform
//!   granularity per round blows the round time up from `Θ(k·2^k)` to
//!   `Θ(2^{3k})`, demonstrating why the paper's schedule is shaped the
//!   way it is (experiment E12).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod schedules;
pub mod spiral;

pub use schedules::{GuaranteedSearch, PaperSchedule, SearchScheduleModel, UniformGranularity};
pub use spiral::ArchimedeanSpiral;
