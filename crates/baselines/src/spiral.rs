//! The omniscient Archimedean-spiral searcher.
//!
//! A searcher that *knows* the visibility radius `r` can sweep the plane
//! with an Archimedean spiral of pitch `2r`: successive windings are `2r`
//! apart, so every point within the swept disk comes within `r` of the
//! robot. Reaching a target at distance `d` costs approximately the arc
//! length of the spiral out to radius `d + r`,
//! `≈ π·d²/pitch = π·d²/(2r)` — the `Θ(d²/r)` yardstick without the
//! universal algorithm's `log` factor.

use rvz_geometry::Vec2;
use rvz_trajectory::monotone::{Cursor, MonotoneGuard, MonotoneTrajectory, Motion, Probe};
use rvz_trajectory::Trajectory;

/// A unit-speed Archimedean spiral `radius(θ) = (pitch/2π)·θ` starting at
/// the origin.
///
/// Implements [`Trajectory`] by inverting the arc-length function with a
/// Newton iteration (converges to machine precision in a handful of
/// steps; see `position`).
///
/// # Example
///
/// ```
/// use rvz_baselines::ArchimedeanSpiral;
/// use rvz_trajectory::Trajectory;
///
/// let s = ArchimedeanSpiral::with_pitch(0.5);
/// assert_eq!(s.position(0.0), rvz_geometry::Vec2::ZERO);
/// // Unit speed: after time t the robot has travelled arc length t.
/// let p = s.position(10.0);
/// assert!(p.norm() > 0.5); // well away from the origin by then
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchimedeanSpiral {
    /// Radial growth per radian, `b = pitch / 2π`.
    b: f64,
}

impl ArchimedeanSpiral {
    /// Spiral with the given distance between successive windings.
    ///
    /// # Panics
    ///
    /// Panics unless `pitch > 0` and finite.
    pub fn with_pitch(pitch: f64) -> Self {
        assert!(
            pitch > 0.0 && pitch.is_finite(),
            "pitch must be positive and finite, got {pitch}"
        );
        ArchimedeanSpiral {
            b: pitch / std::f64::consts::TAU,
        }
    }

    /// The spiral an informed searcher with visibility `r` would use:
    /// pitch `2r`.
    ///
    /// # Panics
    ///
    /// Panics unless `visibility > 0` and finite.
    pub fn for_visibility(visibility: f64) -> Self {
        ArchimedeanSpiral::with_pitch(2.0 * visibility)
    }

    /// Distance between successive windings.
    pub fn pitch(&self) -> f64 {
        self.b * std::f64::consts::TAU
    }

    /// Arc length from the origin to parameter angle `θ`:
    /// `s(θ) = (b/2)(θ√(1+θ²) + asinh θ)`.
    pub fn arc_length(&self, theta: f64) -> f64 {
        0.5 * self.b * (theta * (1.0 + theta * theta).sqrt() + theta.asinh())
    }

    /// The parameter angle after arc length `s`, by Newton iteration on
    /// the exact [`ArchimedeanSpiral::arc_length`].
    pub fn theta_at(&self, s: f64) -> f64 {
        debug_assert!(s >= 0.0 && !s.is_nan(), "arc length must be >= 0, got {s}");
        if s == 0.0 {
            return 0.0;
        }
        // For large θ, s ≈ bθ²/2 ⇒ θ ≈ √(2s/b); exact at 0. Newton with
        // s'(θ) = b√(1+θ²) then polishes quadratically.
        self.theta_at_from(s, (2.0 * s / self.b).sqrt())
    }

    /// [`ArchimedeanSpiral::theta_at`] seeded with an explicit initial
    /// guess — the spiral cursor passes its previously found angle, which
    /// cuts the Newton iteration to one or two steps for nearby queries.
    pub fn theta_at_from(&self, s: f64, guess: f64) -> f64 {
        let mut theta = guess;
        for _ in 0..60 {
            let f = self.arc_length(theta) - s;
            let df = self.b * (1.0 + theta * theta).sqrt();
            let step = f / df;
            theta -= step;
            if step.abs() <= 1e-15 * (1.0 + theta.abs()) {
                break;
            }
        }
        theta.max(0.0)
    }

    /// Estimated time to find a target at distance `d`:
    /// the arc length out to radius `d` (`≈ π·d²/pitch` for `d ≫ pitch`).
    pub fn search_time_estimate(&self, d: f64) -> f64 {
        self.arc_length(d / self.b)
    }
}

impl Trajectory for ArchimedeanSpiral {
    fn position(&self, t: f64) -> Vec2 {
        debug_assert!(t >= 0.0 && !t.is_nan(), "position requires t >= 0, got {t}");
        let theta = self.theta_at(t);
        Vec2::from_polar(self.b * theta, theta)
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }
}

/// The [`MonotoneTrajectory`] cursor of the spiral: warm-starts each
/// Newton inversion from the previously found angle.
///
/// The arc-length function is strictly increasing, so for non-decreasing
/// queries the previous angle is always at or below the new root — a
/// near-perfect initial guess that typically converges in one or two
/// iterations instead of the cold start's handful.
#[derive(Debug, Clone)]
pub struct SpiralCursor<'a> {
    spiral: &'a ArchimedeanSpiral,
    theta: f64,
    guard: MonotoneGuard,
}

impl Cursor for SpiralCursor<'_> {
    fn probe(&mut self, t: f64) -> Probe {
        self.guard.check(t);
        self.theta = if t == 0.0 {
            0.0
        } else {
            self.spiral.theta_at_from(t, self.theta.max(1e-12))
        };
        Probe {
            position: Vec2::from_polar(self.spiral.b * self.theta, self.theta),
            piece_end: f64::INFINITY,
            motion: Motion::Curved,
        }
    }

    fn speed_bound(&self) -> f64 {
        1.0
    }
}

impl MonotoneTrajectory for ArchimedeanSpiral {
    type Cursor<'a> = SpiralCursor<'a>;

    fn cursor(&self) -> SpiralCursor<'_> {
        SpiralCursor {
            spiral: self,
            theta: 0.0,
            guard: MonotoneGuard::default(),
        }
    }
}

/// The spiral is transcendental — its cursor reports a single
/// [`Motion::Curved`] piece — but it lowers to *certified* affine
/// chords when
/// [`CompileOptions::approx_tolerance`](rvz_trajectory::CompileOptions::approx_tolerance)
/// is set, via the closed-form curvature bound below. Without a
/// tolerance, [`compile`](rvz_trajectory::Compile::compile) still fails
/// with [`CompileError::Curved`](rvz_trajectory::CompileError::Curved)
/// and the spiral keeps running on the generic cursor path, so it
/// remains the workspace's canonical exercise of both the compiled
/// stack's escape hatch and its certified-approximation path.
impl rvz_trajectory::Compile for ArchimedeanSpiral {
    /// Closed-form chord-error bound.
    ///
    /// For a unit-speed curve, `‖γ″‖` equals the curvature, and the
    /// Archimedean spiral's curvature at parameter angle `θ` is
    /// `κ(θ) = (θ² + 2) / (b·(1 + θ²)^{3/2})`, which is strictly
    /// decreasing in `θ`. Over an arc-time span `[t0, t1]` the largest
    /// curvature is therefore at `t0`, and the standard chord bound
    /// gives `max-deviation ≤ κ(θ(t0))·(t1 − t0)²/8`. A 1/16 safety
    /// margin absorbs the Newton inversion's rounding in `θ(t0)`.
    fn chord_error_bound(&self, t0: f64, t1: f64) -> Option<f64> {
        let dt = t1 - t0;
        if !t1.is_finite() || dt.is_nan() || dt <= 0.0 || t0 < 0.0 {
            return None;
        }
        let theta = self.theta_at(t0);
        let kappa = (theta * theta + 2.0) / (self.b * (1.0 + theta * theta).powf(1.5));
        Some(kappa * dt * dt * 0.125 * 1.0625)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvz_geometry::assert_approx_eq;

    #[test]
    fn starts_at_origin() {
        let s = ArchimedeanSpiral::with_pitch(1.0);
        assert_eq!(s.position(0.0), Vec2::ZERO);
    }

    #[test]
    fn windings_are_pitch_apart() {
        let s = ArchimedeanSpiral::with_pitch(0.8);
        // At θ and θ + 2π the radius grows by exactly the pitch.
        let theta = 7.0;
        let r1 = s.b * theta;
        let r2 = s.b * (theta + std::f64::consts::TAU);
        assert_approx_eq!(r2 - r1, 0.8);
    }

    #[test]
    fn arc_length_inversion_roundtrips() {
        let s = ArchimedeanSpiral::with_pitch(0.3);
        for theta in [0.0, 0.1, 1.0, 10.0, 200.0] {
            let len = s.arc_length(theta);
            let back = s.theta_at(len);
            assert!((back - theta).abs() < 1e-9 * (1.0 + theta), "θ={theta}");
        }
    }

    #[test]
    fn unit_speed() {
        let s = ArchimedeanSpiral::with_pitch(0.5);
        let h = 1e-6;
        for t in [0.5, 3.0, 40.0, 500.0] {
            let v = s.position(t + h).distance(s.position(t)) / h;
            assert!((v - 1.0).abs() < 1e-4, "speed {v} at t={t}");
        }
    }

    #[test]
    fn for_visibility_sets_pitch_2r() {
        let s = ArchimedeanSpiral::for_visibility(0.25);
        assert_approx_eq!(s.pitch(), 0.5);
    }

    #[test]
    fn estimate_scales_quadratically() {
        let s = ArchimedeanSpiral::for_visibility(0.01);
        let t1 = s.search_time_estimate(1.0);
        let t2 = s.search_time_estimate(2.0);
        let ratio = t2 / t1;
        assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
        // And matches π·d²/pitch asymptotically.
        let expected = std::f64::consts::PI * 4.0 / 0.02;
        assert!((t2 - expected).abs() / expected < 0.02);
    }

    #[test]
    fn spiral_finds_targets_with_informed_pitch() {
        use rvz_sim::{first_contact, ContactOptions, Stationary};
        let r = 0.05;
        let s = ArchimedeanSpiral::for_visibility(r);
        for target in [
            Vec2::new(0.7, 0.2),
            Vec2::new(-0.4, -0.9),
            Vec2::new(0.0, 1.3),
        ] {
            let out = first_contact(
                &s,
                &Stationary::new(target),
                r,
                &ContactOptions::with_horizon(1e5),
            );
            let t = out
                .contact_time()
                .unwrap_or_else(|| panic!("missed {target}"));
            // Found no later than the arc length out to radius d + r, and
            // not absurdly early.
            let est = s.search_time_estimate(target.norm() + r);
            assert!(
                t <= est * 1.05 + 1.0,
                "target {target}: {t} vs estimate {est}"
            );
        }
    }

    #[test]
    fn cursor_matches_random_access() {
        use rvz_trajectory::monotone::{Cursor as _, MonotoneTrajectory as _};
        let s = ArchimedeanSpiral::with_pitch(0.4);
        let mut c = s.cursor();
        for i in 0..=2000 {
            let t = 500.0 * i as f64 / 2000.0;
            let p = c.probe(t);
            assert!(
                p.position.distance(s.position(t)) < 1e-9 * (1.0 + t),
                "mismatch at t={t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = ArchimedeanSpiral::with_pitch(0.0);
    }

    #[test]
    fn lowering_without_tolerance_still_refuses() {
        use rvz_trajectory::{Compile as _, CompileError, CompileOptions};
        let s = ArchimedeanSpiral::with_pitch(0.5);
        let err = s.compile(&CompileOptions::to_horizon(10.0)).unwrap_err();
        assert!(matches!(err, CompileError::Curved { .. }), "{err}");
    }

    #[test]
    fn certified_chords_stay_within_tolerance() {
        use rvz_trajectory::{Compile as _, CompileOptions};
        let s = ArchimedeanSpiral::for_visibility(0.05);
        let eps = 1e-4;
        let horizon = 50.0;
        let program = s
            .compile(
                &CompileOptions::to_horizon(horizon)
                    .approx_tolerance(eps)
                    .max_pieces(1 << 20),
            )
            .unwrap();
        assert!(program.approx_eps() > 0.0 && program.approx_eps() <= eps);
        let mut idx = 0;
        for i in 0..=5000 {
            let t = horizon * i as f64 / 5000.0;
            let err = program
                .probe_from(&mut idx, t)
                .position
                .distance(s.position(t));
            assert!(err <= eps, "chord error {err} > ε={eps} at t={t}");
        }
    }

    #[test]
    fn curvature_bound_is_sound_on_dense_samples() {
        use rvz_trajectory::Compile as _;
        let s = ArchimedeanSpiral::with_pitch(0.4);
        // For a variety of spans, the true deviation from the chord must
        // stay under the claimed bound.
        for (t0, dt) in [(0.0, 0.05), (0.3, 0.2), (2.0, 0.5), (40.0, 1.0)] {
            let t1 = t0 + dt;
            let bound = s.chord_error_bound(t0, t1).unwrap();
            let p0 = s.position(t0);
            let v = (s.position(t1) - p0) / dt;
            let mut worst = 0.0_f64;
            for i in 0..=200 {
                let t = t0 + dt * i as f64 / 200.0;
                worst = worst.max(s.position(t).distance(p0 + v * (t - t0)));
            }
            assert!(
                worst <= bound,
                "span [{t0}, {t1}]: deviation {worst} exceeds bound {bound}"
            );
        }
    }
}
